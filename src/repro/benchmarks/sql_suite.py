"""The 28-task SQL benchmark suite (Figure 18 of the paper).

The paper's second comparison runs Morpheus and SQLSynthesizer on the 28
benchmarks from the SQLSynthesizer evaluation [Zhang & Sun 2013] -- tasks
that are expressible as flat SQL queries (selection, projection, joins,
grouping and aggregation).  Those exact benchmarks are not redistributable,
so this suite recreates 28 SQL-expressible tasks of the same flavour over
small relational tables.  Every task is solvable both by the SQL baseline and
by Morpheus (restricted to its SQL-relevant component subset).
"""

from __future__ import annotations

from functools import lru_cache

from ..components import dplyr
from ..dataframe.table import Table
from .suite import BenchmarkSuite

_EMPLOYEES = Table(
    ["emp", "dept", "salary", "years"],
    [["kim", "eng", 120, 5], ["lee", "eng", 100, 3], ["pat", "sales", 90, 7],
     ["ana", "sales", 95, 2], ["joe", "hr", 70, 10]],
)
_DEPARTMENTS = Table(
    ["dept", "floor"],
    [["eng", 3], ["sales", 1], ["hr", 2]],
)
_ORDERS = Table(
    ["order_id", "customer", "total", "status"],
    [[1, "acme", 250, "paid"], [2, "bolt", 80, "open"], [3, "acme", 120, "paid"],
     [4, "core", 300, "open"], [5, "bolt", 40, "paid"]],
)
_CUSTOMERS = Table(
    ["customer", "country"],
    [["acme", "us"], ["bolt", "de"], ["core", "us"]],
)
_COURSES = Table(
    ["course", "credits", "level"],
    [["cs101", 4, "intro"], ["cs301", 3, "advanced"], ["ee210", 3, "intro"], ["ma401", 4, "advanced"]],
)
_ENROLLMENT = Table(
    ["student", "course", "grade"],
    [["ann", "cs101", 92], ["bob", "cs101", 71], ["ann", "cs301", 88],
     ["eve", "ee210", 95], ["bob", "ee210", 64], ["eve", "cs301", 79]],
)


@lru_cache(maxsize=1)
def sql_benchmark_suite() -> BenchmarkSuite:
    """Build (and cache) the 28-task SQL-expressible suite."""
    suite = BenchmarkSuite("sql-queries")
    suite.category_descriptions["SQL"] = "Tasks expressible as flat SQL queries"
    add = suite.add

    # --- selection / projection over a single table ----------------------
    add("sql_select_emp_salary", "SQL", "Project employee and salary.",
        [_EMPLOYEES], lambda t: dplyr.select(t[0], ["emp", "salary"]), ["select"])
    add("sql_filter_high_salary", "SQL", "Employees earning more than 95.",
        [_EMPLOYEES], lambda t: dplyr.filter_rows(t[0], lambda r: r["salary"] > 95), ["filter"])
    add("sql_filter_engineering", "SQL", "Rows of the engineering department.",
        [_EMPLOYEES], lambda t: dplyr.filter_rows(t[0], lambda r: r["dept"] == "eng"), ["filter"])
    add("sql_filter_project", "SQL", "Names of employees with at least 5 years of tenure.",
        [_EMPLOYEES],
        lambda t: dplyr.select(dplyr.filter_rows(t[0], lambda r: r["years"] >= 5), ["emp", "years"]),
        ["filter", "select"])
    add("sql_select_orders_totals", "SQL", "Project order id and total.",
        [_ORDERS], lambda t: dplyr.select(t[0], ["order_id", "total"]), ["select"])
    add("sql_filter_paid_orders", "SQL", "Paid orders only.",
        [_ORDERS], lambda t: dplyr.filter_rows(t[0], lambda r: r["status"] == "paid"), ["filter"])
    add("sql_filter_large_paid", "SQL", "Paid orders above 100.",
        [_ORDERS],
        lambda t: dplyr.filter_rows(
            dplyr.filter_rows(t[0], lambda r: r["status"] == "paid"), lambda r: r["total"] > 100
        ),
        ["filter", "filter"])
    add("sql_intro_courses", "SQL", "Intro-level courses with their credits.",
        [_COURSES],
        lambda t: dplyr.select(dplyr.filter_rows(t[0], lambda r: r["level"] == "intro"), ["course", "credits"]),
        ["filter", "select"])

    # --- aggregation over a single table ---------------------------------
    add("sql_count_per_dept", "SQL", "Number of employees per department.",
        [_EMPLOYEES],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["dept"]), "n", "n"),
        ["group_by", "summarise"])
    add("sql_avg_salary_per_dept", "SQL", "Average salary per department.",
        [_EMPLOYEES],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["dept"]), "avg_salary", "mean", "salary"),
        ["group_by", "summarise"])
    add("sql_max_salary_per_dept", "SQL", "Highest salary per department.",
        [_EMPLOYEES],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["dept"]), "top", "max", "salary"),
        ["group_by", "summarise"])
    add("sql_total_per_customer", "SQL", "Total order value per customer.",
        [_ORDERS],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["customer"]), "spend", "sum", "total"),
        ["group_by", "summarise"])
    add("sql_orders_per_status", "SQL", "Number of orders per status.",
        [_ORDERS],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["status"]), "n", "n"),
        ["group_by", "summarise"])
    add("sql_paid_total_per_customer", "SQL", "Total of paid orders per customer.",
        [_ORDERS],
        lambda t: dplyr.summarise(
            dplyr.group_by(dplyr.filter_rows(t[0], lambda r: r["status"] == "paid"), ["customer"]),
            "paid_total", "sum", "total"),
        ["filter", "group_by", "summarise"])
    add("sql_min_grade_per_course", "SQL", "Lowest grade per course.",
        [_ENROLLMENT],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["course"]), "lowest", "min", "grade"),
        ["group_by", "summarise"])
    add("sql_avg_grade_per_student", "SQL", "Average grade per student.",
        [_ENROLLMENT],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["student"]), "avg", "mean", "grade"),
        ["group_by", "summarise"])
    add("sql_courses_per_student", "SQL", "Number of courses each student is enrolled in.",
        [_ENROLLMENT],
        lambda t: dplyr.summarise(dplyr.group_by(t[0], ["student"]), "n", "n"),
        ["group_by", "summarise"])
    add("sql_good_grades_count", "SQL", "Per student, the number of grades of 80 or more.",
        [_ENROLLMENT],
        lambda t: dplyr.summarise(
            dplyr.group_by(dplyr.filter_rows(t[0], lambda r: r["grade"] >= 80), ["student"]), "n", "n"),
        ["filter", "group_by", "summarise"])

    # --- joins ------------------------------------------------------------
    add("sql_join_emp_floor", "SQL", "Employees with the floor of their department.",
        [_EMPLOYEES, _DEPARTMENTS],
        lambda t: dplyr.inner_join(t[0], t[1]), ["inner_join"])
    add("sql_join_project_floor", "SQL", "Employee name and floor only.",
        [_EMPLOYEES, _DEPARTMENTS],
        lambda t: dplyr.select(dplyr.inner_join(t[0], t[1]), ["emp", "floor"]),
        ["inner_join", "select"])
    add("sql_join_third_floor", "SQL", "Employees sitting on the third floor.",
        [_EMPLOYEES, _DEPARTMENTS],
        lambda t: dplyr.filter_rows(dplyr.inner_join(t[0], t[1]), lambda r: r["floor"] == 3),
        ["inner_join", "filter"])
    add("sql_orders_with_country", "SQL", "Orders annotated with the customer's country.",
        [_ORDERS, _CUSTOMERS],
        lambda t: dplyr.inner_join(t[0], t[1]), ["inner_join"])
    add("sql_us_orders", "SQL", "Orders placed by US customers.",
        [_ORDERS, _CUSTOMERS],
        lambda t: dplyr.filter_rows(dplyr.inner_join(t[0], t[1]), lambda r: r["country"] == "us"),
        ["inner_join", "filter"])
    add("sql_spend_per_country", "SQL", "Total order value per customer country.",
        [_ORDERS, _CUSTOMERS],
        lambda t: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(t[0], t[1]), ["country"]), "spend", "sum", "total"),
        ["inner_join", "group_by", "summarise"])
    add("sql_orders_per_country", "SQL", "Number of orders per customer country.",
        [_ORDERS, _CUSTOMERS],
        lambda t: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(t[0], t[1]), ["country"]), "n", "n"),
        ["inner_join", "group_by", "summarise"])
    add("sql_enrollment_credits", "SQL", "Enrollments annotated with course credits.",
        [_ENROLLMENT, _COURSES],
        lambda t: dplyr.inner_join(t[0], t[1]), ["inner_join"])
    add("sql_advanced_grades", "SQL", "Grades obtained in advanced courses.",
        [_ENROLLMENT, _COURSES],
        lambda t: dplyr.select(
            dplyr.filter_rows(dplyr.inner_join(t[0], t[1]), lambda r: r["level"] == "advanced"),
            ["student", "course", "grade"]),
        ["inner_join", "filter", "select"])
    add("sql_avg_grade_per_level", "SQL", "Average grade per course level.",
        [_ENROLLMENT, _COURSES],
        lambda t: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(t[0], t[1]), ["level"]), "avg", "mean", "grade"),
        ["inner_join", "group_by", "summarise"])

    assert len(suite) == 28, f"expected 28 SQL benchmarks, got {len(suite)}"
    return suite
