"""Differential test: columnar executors vs the row-major reference.

Random programs (sequences of verbs with randomly drawn arguments, valid and
invalid alike) run over random tables through both the columnar executors in
``repro.components.dplyr`` / ``repro.components.tidyr`` and the retained
row-major reference implementation in ``repro.components.reference``.  The
two must agree on everything observable: cell contents, column names, column
types, grouping metadata -- or raise the same error class with the same
message.  Any divergence prints the seed and the failing step.
"""

import random

import pytest

from repro.components import dplyr, reference, tidyr
from repro.components.errors import ComponentError
from repro.core.arguments import Constant, Predicate
from repro.dataframe import Table
from repro.dataframe.backend import install_backend, numpy_available
from repro.dataframe.errors import DataFrameError

#: Both execution backends; the whole differential suite runs once per
#: backend, so the vectorised kernels are held to the same cell-for-cell,
#: error-for-error standard as the pure-python reference.
BACKENDS = [
    "python",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not numpy_available(), reason="numpy not installed (repro[fast])"
        ),
    ),
]


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Install the parametrised backend for the test, restoring after."""
    previous = install_backend(request.param)
    try:
        yield request.param
    finally:
        install_backend(previous)

#: Columnar implementation of every verb, aligned with REFERENCE_VERBS.
COLUMNAR_VERBS = {
    "select": dplyr.select,
    "filter": dplyr.filter_rows,
    "group_by": dplyr.group_by,
    "summarise": dplyr.summarise,
    "mutate": dplyr.mutate,
    "inner_join": dplyr.inner_join,
    "arrange": dplyr.arrange,
    "gather": tidyr.gather,
    "spread": tidyr.spread,
    "separate": tidyr.separate,
    "unite": tidyr.unite,
}

COMPARABLE_ERRORS = (ComponentError, DataFrameError, ZeroDivisionError)


def random_table(rng: random.Random) -> Table:
    """A random table: 2-5 columns of num/str cells, maybe grouped.

    Mostly small (0-7 rows), but one draw in four straddles or exceeds the
    numpy backend's vectorisation threshold (``MIN_VECTOR_ROWS`` = 32) so
    the differential run on that backend exercises the vectorised kernels,
    not just their small-table delegation.
    """
    n_cols = rng.randint(2, 5)
    roll = rng.random()
    if roll < 0.75:
        n_rows = rng.randint(0, 7)
    elif roll < 0.9:
        n_rows = rng.randint(30, 36)
    else:
        n_rows = rng.randint(60, 90)
    columns = [f"c{i}" for i in range(n_cols)]
    vectors = []
    for _ in range(n_cols):
        kind = rng.choice(["num", "str", "splitable"])
        vector = []
        for _ in range(n_rows):
            if rng.random() < 0.1:
                vector.append(None)
            elif kind == "num":
                vector.append(rng.choice([rng.randint(-5, 9), rng.random() * 10]))
            elif kind == "splitable":
                vector.append(f"{rng.choice('abc')}_{rng.randint(0, 3)}")
            else:
                vector.append(rng.choice(["x", "y", "z", "x_1", "long word"]))
        vectors.append(vector)
    table = Table(columns, list(zip(*vectors)) if vectors else [])
    if n_rows and rng.random() < 0.4:
        group_count = rng.randint(1, min(2, n_cols))
        table = table.with_grouping(rng.sample(columns, group_count))
    return table


def random_call(rng: random.Random, table: Table):
    """Draw a verb and plausible (sometimes invalid) arguments for *table*."""
    verb = rng.choice(list(COLUMNAR_VERBS))
    columns = list(table.columns)
    any_column = lambda: rng.choice(columns) if columns else "missing"  # noqa: E731

    def some_columns(k_min=1):
        k = rng.randint(k_min, max(k_min, len(columns)))
        return rng.sample(columns, min(k, len(columns)))

    if verb == "select":
        return verb, (some_columns(),)
    if verb == "filter":
        column = any_column()
        constant = rng.choice([0, 1, "x", 2.5, None])
        op = rng.choice(["==", "!=", "<", ">", "<=", ">="])
        if rng.random() < 0.5:
            # Structured predicate: the shape the synthesizer produces and
            # the vectorised fast path recognises (None constants and the
            # ordered operators exercise the missing-value error paths).
            return verb, (Predicate(column, op, Constant(constant)),)

        def predicate(row, column=column, op=op, constant=constant):
            from repro.components.values import COMPARISON_OPERATORS

            return COMPARISON_OPERATORS[op](row[column], constant)

        return verb, (predicate,)
    if verb == "group_by":
        return verb, (some_columns(),)
    if verb == "summarise":
        aggregator = rng.choice(["n", "sum", "mean", "min", "max", "n_distinct"])
        target = None if aggregator == "n" else any_column()
        return verb, ("agg_out", aggregator, target)
    if verb == "mutate":

        def expression(row, group, column=any_column()):
            values = group.column_values(column)
            total = sum(v for v in values if isinstance(v, (int, float))) or 1
            cell = row[column]
            return (cell if isinstance(cell, (int, float)) and cell is not None else 0) / total

        return verb, ("mut_out", expression)
    if verb == "inner_join":
        return verb, ()  # second table supplied by the driver
    if verb == "arrange":
        return verb, (some_columns(),)
    if verb == "gather":
        return verb, ("gkey", "gvalue", some_columns(k_min=2))
    if verb == "spread":
        return verb, (any_column(), any_column())
    if verb == "separate":
        return verb, (any_column(), ["sep_left", "sep_right"])
    if verb == "unite":
        return verb, ("united_out", some_columns(k_min=2))
    raise AssertionError(verb)


def apply_verb(impl, verb, table, args, other):
    if verb == "inner_join":
        return impl[verb](table, other)
    return impl[verb](table, *args)


def assert_tables_identical(columnar: Table, legacy: Table, context: str):
    assert columnar.columns == legacy.columns, context
    assert columnar.col_types == legacy.col_types, context
    assert columnar.group_cols == legacy.group_cols, context
    assert columnar.n_rows == legacy.n_rows, context
    assert columnar.rows == legacy.rows, context


@pytest.mark.parametrize("seed", range(40))
def test_columnar_and_reference_executors_agree(seed, backend):
    rng = random.Random(seed)
    for iteration in range(25):
        table = random_table(rng)
        other = random_table(rng)
        steps = rng.randint(1, 3)
        columnar_table, legacy_table = table, table
        for step in range(steps):
            verb, args = random_call(rng, columnar_table)
            context = f"seed={seed} iteration={iteration} step={step} verb={verb} args={args!r}"
            columnar_error = legacy_error = None
            try:
                columnar_result = apply_verb(COLUMNAR_VERBS, verb, columnar_table, args, other)
            except COMPARABLE_ERRORS as error:
                columnar_error = error
            try:
                legacy_result = apply_verb(reference.REFERENCE_VERBS, verb, legacy_table, args, other)
            except COMPARABLE_ERRORS as error:
                legacy_error = error

            if columnar_error is not None or legacy_error is not None:
                assert columnar_error is not None and legacy_error is not None, context
                assert type(columnar_error) is type(legacy_error), context
                assert str(columnar_error) == str(legacy_error), context
                break
            assert_tables_identical(columnar_result, legacy_result, context)
            columnar_table, legacy_table = columnar_result, legacy_result


def test_reference_covers_every_component():
    assert set(reference.REFERENCE_VERBS) == set(COLUMNAR_VERBS)
