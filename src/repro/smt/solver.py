"""The public SMT solver facade (lazy DPLL(T) over LIA).

:class:`Solver` mimics the small slice of the z3 API the paper's deduction
engine needs: assert formulas (with push/pop scopes), ask for satisfiability,
read back a model, solve under named assumptions, and extract an unsat core.

Two solving strategies are used for plain :meth:`Solver.check`:

* If the asserted formula is a pure conjunction of atoms (the common case for
  hypothesis specifications over a single input table), the LIA theory solver
  is called directly.
* Otherwise the boolean structure is Tseitin-encoded, the SAT engine
  enumerates boolean models, and each model's theory literals are checked by
  the LIA solver; theory conflicts are returned to the SAT engine as blocking
  clauses (lazy SMT).

:meth:`Solver.check_assumptions` additionally maintains a *persistent
incremental session*: one CNF database shared across calls (Tseitin variables
are reused through the structural memo of :class:`repro.smt.cnf.CNF`), one
SAT engine that keeps its learned clauses, and per-call assumption literals.
On UNSAT, :meth:`Solver.unsat_core` names the assumptions the refutation
used, and :meth:`Solver.minimize_core` shrinks that set by deletion.  The
deduction engine mines these cores into blocking lemmas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..engine.cache import CacheStats, LRUCache
from .cnf import CNF, tseitin
from .lia import TheoryResult, check_conjunction
from .sat import SatSolver
from .terms import And, Atom, BoolVal, Formula, Or, conjoin, formula_atoms

#: Upper bound on theory-refinement rounds of the lazy loop; reaching it is
#: treated as SAT (sound for a deduction engine that prunes only on UNSAT).
MAX_THEORY_ROUNDS = 200

#: Default bound of the process-wide formula -> verdict cache.
FORMULA_CACHE_SIZE = 16384

#: Clause-count bound of one incremental session.  A session that outgrows it
#: is rebuilt from the active assertions on the next ``check_assumptions``
#: call -- the propositional engine scans the whole clause database during
#: propagation, so an ever-growing database would make every later query pay
#: for every formula ever assumed.  The bound is a clause count (not a time
#: budget) so session recycling is deterministic.
SESSION_CLAUSE_LIMIT = 4096

#: Process-wide memo of ``check`` verdicts.  Formulas are immutable and
#: hashable, and satisfiability is a pure function of the formula, so results
#: can be shared across Solver instances (and across synthesis runs -- the
#: deduction engine asks near-identical queries for structurally similar
#: hypotheses on every benchmark).  Each entry is a ``(result, model)`` pair.
_formula_cache: "LRUCache[Formula, Tuple[CheckResult, Optional[Dict[str, int]]]]" = None  # set below


def formula_cache_stats() -> CacheStats:
    """Hit/miss counters of the process-wide formula cache."""
    return _formula_cache.stats


def clear_formula_cache() -> None:
    """Drop all cached verdicts and reset the counters (mainly for tests)."""
    _formula_cache.clear()
    _formula_cache.stats.clear()


def configure_formula_cache(maxsize: Optional[int]) -> None:
    """Resize the formula cache (``0`` disables it, ``None`` unbounds it)."""
    global _formula_cache
    _formula_cache = LRUCache(maxsize=maxsize)


def new_formula_cache() -> "LRUCache":
    """A fresh formula cache sized like the currently installed one.

    Mirroring the installed cache's bound (rather than the default) keeps
    eviction behaviour -- and therefore the per-run cache counters --
    identical between per-task isolated caches and a process-wide cache a
    caller resized via :func:`configure_formula_cache`.
    """
    return LRUCache(maxsize=_formula_cache.maxsize)


def formula_cache_lookup(
    formula: Formula,
) -> Optional[Tuple["CheckResult", Optional[Dict[str, int]]]]:
    """Probe the process-wide verdict cache, counting a hit or a miss.

    Exposed for callers that decide cache misses through their own machinery
    (the deduction engine's residual sessions) but must keep the cache's
    accounting identical to routing the query through :meth:`Solver.check`.
    """
    return _formula_cache.get(formula)


def formula_cache_store(
    formula: Formula, result: "CheckResult", model: Optional[Dict[str, int]] = None
) -> None:
    """Record an externally decided verdict in the process-wide cache."""
    _formula_cache.put(formula, (result, dict(model) if model is not None else None))


def install_formula_cache(cache: "LRUCache") -> "LRUCache":
    """Swap the process-wide formula cache, returning the previous one.

    Used by :class:`repro.engine.context.TaskContext` to give each
    interleaved search kernel its own cache: a kernel's steps then see
    exactly the cache state a dedicated process would have seen, which keeps
    the per-run cache counters byte-identical between whole-task and
    interleaved scheduling.
    """
    global _formula_cache
    previous = _formula_cache
    _formula_cache = cache
    return previous


configure_formula_cache(FORMULA_CACHE_SIZE)


class CheckResult(enum.Enum):
    """Result of :meth:`Solver.check`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class IncrementalStats:
    """Counters describing one solver's incremental-session activity."""

    #: ``check_assumptions`` calls answered by the session.
    checks: int = 0
    #: SAT-engine invocations (one per theory-refinement round).
    sat_solves: int = 0
    #: Top-level formulas encoded into the persistent CNF for the first time.
    formulas_encoded: int = 0
    #: Top-level formulas whose encoding was reused from an earlier call.
    formulas_reused: int = 0
    #: Theory conflicts turned into persistent blocking clauses.
    theory_conflicts: int = 0
    #: Case-split decisions made by the structured fast path (including the
    #: deletion probes of its built-in core minimization).
    theory_core_checks: int = 0
    #: Times the session hit :data:`SESSION_CLAUSE_LIMIT` and was rebuilt.
    recycles: int = 0

    def merge(self, other: "IncrementalStats") -> None:
        """Accumulate another stats object into this one."""
        self.checks += other.checks
        self.sat_solves += other.sat_solves
        self.formulas_encoded += other.formulas_encoded
        self.formulas_reused += other.formulas_reused
        self.theory_conflicts += other.theory_conflicts
        self.theory_core_checks += other.theory_core_checks
        self.recycles += other.recycles

    def snapshot(self) -> "IncrementalStats":
        """An independent copy (for computing per-call deltas)."""
        return IncrementalStats(
            self.checks,
            self.sat_solves,
            self.formulas_encoded,
            self.formulas_reused,
            self.theory_conflicts,
            self.theory_core_checks,
            self.recycles,
        )


class _Session:
    """Persistent incremental state behind :meth:`Solver.check_assumptions`."""

    __slots__ = ("cnf", "sat", "_fed", "_roots", "_atom_vars", "_flat")

    def __init__(self) -> None:
        self.cnf = CNF()
        self.sat = SatSolver(0, [])
        #: Watermark into ``cnf.clauses`` of what the SAT engine has seen.
        self._fed = 0
        #: Top-level formula -> root literal (the assumption literal).
        self._roots: Dict[Formula, int] = {}
        #: Top-level formula -> propositional variables of its theory atoms.
        self._atom_vars: Dict[Formula, Tuple[int, ...]] = {}
        #: Top-level formula -> (atoms, clauses) clausal flattening, or None
        #: when the formula has irreducible boolean structure.
        self._flat: Dict[Formula, Optional[tuple]] = {}

    def flatten(self, formula: Formula):
        """Cached clausal flattening; returns ``(parts_or_None, was_cached)``.

        No counters are touched here: the caller attributes encode/reuse to
        whichever strategy actually serves the query (the lazy path counts
        through :meth:`literal_for` instead).
        """
        if formula in self._flat:
            return self._flat[formula], True
        result = _as_clausal_conjunction(formula)
        self._flat[formula] = result
        return result, False

    def literal_for(self, formula: Formula, stats: IncrementalStats) -> int:
        """The (cached) root literal standing for *formula*."""
        literal = self._roots.get(formula)
        if literal is not None:
            stats.formulas_reused += 1
            return literal
        literal = self.cnf.encode(formula)
        self._roots[formula] = literal
        stats.formulas_encoded += 1
        return literal

    def atom_vars_for(self, formula: Formula) -> Tuple[int, ...]:
        """Propositional variables of the theory atoms of *formula*.

        Must be called after :meth:`literal_for` so the atoms are encoded.
        """
        cached = self._atom_vars.get(formula)
        if cached is None:
            cached = tuple(
                self.cnf.var_of_atom[atom] for atom in formula_atoms(formula)
            )
            self._atom_vars[formula] = cached
        return cached

    def feed_clauses(self) -> None:
        """Hand any newly encoded clauses to the persistent SAT engine."""
        for clause in self.cnf.clauses[self._fed:]:
            self.sat.add_clause(clause)
        self._fed = len(self.cnf.clauses)


#: Assumptions accepted by ``check_assumptions``: a name->formula mapping or
#: an iterable of (name, formula) pairs.  Names must be hashable.
NamedAssumptions = Union[Mapping[object, Formula], Iterable[Tuple[object, Formula]]]

#: Sentinel: the fast path's case split would exceed its clause budget.
_TOO_MANY_CLAUSES = object()


class Solver:
    """An incremental SMT solver for quantifier-free LIA."""

    def __init__(self) -> None:
        self._scopes: List[List[Formula]] = [[]]
        self._model: Optional[Dict[str, int]] = None
        self._session: Optional[_Session] = None
        self._core: Tuple[object, ...] = ()
        self._core_minimal = False
        self._last_assumptions: Dict[object, Formula] = {}
        self.incremental_stats = IncrementalStats()

    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas in the current scope."""
        self._scopes[-1].extend(formulas)

    def assertions(self) -> Tuple[Formula, ...]:
        """The formulas asserted so far (all scopes, outermost first)."""
        return tuple(formula for scope in self._scopes for formula in scope)

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    def push(self) -> None:
        """Open a new assertion scope."""
        self._scopes.append([])

    def pop(self) -> None:
        """Discard the most recent scope and every assertion made in it.

        The incremental session keeps the popped formulas' clauses in its
        database (guarded by their root literals, which are simply no longer
        assumed), so re-asserting the same formulas later costs nothing.
        """
        if len(self._scopes) == 1:
            raise IndexError("cannot pop the outermost assertion scope")
        self._scopes.pop()
        self._model = None

    def num_scopes(self) -> int:
        """How many scopes are currently open (0 = only the outermost)."""
        return len(self._scopes) - 1

    def reset(self) -> None:
        """Remove all assertions, scopes, and the incremental session."""
        self._scopes = [[]]
        self._model = None
        self._session = None
        self._core = ()
        self._core_minimal = False
        self._last_assumptions = {}

    def model(self) -> Optional[Dict[str, int]]:
        """The model found by the last successful check."""
        return self._model

    # ------------------------------------------------------------------
    def check(self) -> CheckResult:
        """Decide satisfiability of the conjunction of all assertions.

        Verdicts are memoised in the process-wide formula cache: two solver
        instances asserting the same (structurally equal) formula share one
        underlying satisfiability check.
        """
        self._model = None
        formula = conjoin(self.assertions())
        if isinstance(formula, BoolVal):
            return CheckResult.SAT if formula.value else CheckResult.UNSAT

        cached = _formula_cache.get(formula)
        if cached is not None:
            result, model = cached
            self._model = dict(model) if model is not None else None
            return result
        result = self._check_uncached(formula)
        model = dict(self._model) if self._model is not None else None
        _formula_cache.put(formula, (result, model))
        return result

    def _check_uncached(self, formula: Formula) -> CheckResult:
        flat = _as_conjunction_of_atoms(formula)
        if flat is not None:
            result = check_conjunction(flat)
            return self._finish(result)

        clausal = _as_clausal_conjunction(formula)
        if clausal is not None:
            atoms, clauses = clausal
            result = _check_clausal(atoms, clauses)
            if result is None:
                return CheckResult.UNSAT
            return self._finish(result)
        return self._solve_lazy(formula)

    # ------------------------------------------------------------------
    # Solving under assumptions (the incremental session)
    # ------------------------------------------------------------------
    def check_assumptions(
        self, assumptions: NamedAssumptions = (), known_unsat: bool = False
    ) -> CheckResult:
        """Decide the active assertions conjoined with named *assumptions*.

        The assertions of every open scope stay asserted; each assumption is
        attached only for this call.  The session (clausal flattenings, the
        clause database with its learned clauses and theory lemmas, atom
        variables) persists across calls, so consecutive queries that share
        structure pay only for their differences.

        Two strategies are used, mirroring :meth:`check`:

        * When every active formula flattens to atoms plus a few small
          disjunctions (the shape of every deduction query), a direct case
          split decides the conjunction, and on UNSAT the core is computed by
          deletion over the named groups -- yielding an already-minimal core.
        * Otherwise the formulas are Tseitin-encoded into the persistent
          database, their root literals become SAT-engine assumptions, and on
          UNSAT the engine's final conflict set names the core.

        On UNSAT, :meth:`unsat_core` returns the names involved.

        ``known_unsat=True`` is an optimization hint from a caller that has
        already established unsatisfiability of exactly this conjunction by
        other means (the deduction engine replays queries its monolithic
        check just refuted): the fast path skips the confirming solve and
        goes straight to core extraction.  A wrong hint yields a wrong UNSAT
        verdict -- the hint shifts the proof obligation to the caller.
        """
        named: Dict[object, Formula] = dict(assumptions)
        self._model = None
        self._core = ()
        self._core_minimal = False
        self._last_assumptions = named
        stats = self.incremental_stats
        stats.checks += 1

        session = self._session
        # The recycle bound must see every clause the SAT engine scans during
        # propagation: the encoded CNF *plus* what was added directly to the
        # engine (learned clauses, theory blocking clauses) -- on lazy-path
        # workloads the latter dominate while the CNF barely grows.
        if session is not None and (
            len(session.cnf.clauses) > SESSION_CLAUSE_LIMIT
            or len(session.sat.clauses) > SESSION_CLAUSE_LIMIT
        ):
            session = None
            stats.recycles += 1
        if session is None:
            session = self._session = _Session()

        base = self.assertions()
        clausal = self._check_assumptions_clausal(
            session, base, named, stats, known_unsat
        )
        if clausal is not None:
            return clausal
        return self._check_assumptions_lazy(session, base, named, stats)

    def _check_assumptions_clausal(
        self,
        session: _Session,
        base: Tuple[Formula, ...],
        named: Dict[object, Formula],
        stats: IncrementalStats,
        known_unsat: bool = False,
    ) -> Optional[CheckResult]:
        """The structured fast path; ``None`` when the shape does not fit."""
        flattened = [
            (formula, *session.flatten(formula))
            for formula in (*base, *named.values())
        ]
        if any(part is None for _, part, _ in flattened):
            return None
        for _, _, was_cached in flattened:
            if was_cached:
                stats.formulas_reused += 1
            else:
                stats.formulas_encoded += 1
        parts_of = {formula: part for formula, part, _ in flattened}
        base_parts = [parts_of[formula] for formula in base]
        named_parts = {name: parts_of[formula] for name, formula in named.items()}

        def decide(active_names, exact: bool) -> Optional[TheoryResult]:
            atoms: List[Atom] = []
            clauses: List[list] = []
            for part in base_parts:
                atoms.extend(part[0])
                clauses.extend(part[1])
            for name in active_names:
                part = named_parts[name]
                atoms.extend(part[0])
                clauses.extend(part[1])
            if len(clauses) > MAX_CASE_SPLIT_CLAUSES:
                return _TOO_MANY_CLAUSES
            return _check_clausal(atoms, clauses, exact)

        if not known_unsat:
            result = decide(named, exact=True)
            if result is _TOO_MANY_CLAUSES:
                return None
            stats.theory_core_checks += 1
            if result is not None:
                self._model = result.model
                return CheckResult.SAT
        # With known_unsat the confirming solve is skipped: the caller has
        # proven this exact conjunction unsatisfiable already.  Deletion
        # probes that overflow the clause budget keep their member (the loop
        # below treats anything but a definite UNSAT as "necessary"), so the
        # worst case is an unminimized -- but still sound -- core.

        # Deletion-based core over the named groups: drop one at a time and
        # keep the drops that preserve unsatisfiability.  The survivors form
        # a core where every member is individually necessary (up to the
        # probes' propagation-only theory mode: dropping a group leaves an
        # underconstrained system, and running exact simplex on every probe
        # would cost more than the lemma can ever save -- a conservative SAT
        # answer just keeps one more member in the core).
        core = list(named)
        for name in list(core):
            trial = [n for n in core if n != name]
            verdict = decide(trial, exact=False)
            stats.theory_core_checks += 1
            if verdict is None:
                core = trial
        self._core = tuple(core)
        self._core_minimal = True
        return CheckResult.UNSAT

    def _check_assumptions_lazy(
        self,
        session: _Session,
        base: Tuple[Formula, ...],
        named: Dict[object, Formula],
        stats: IncrementalStats,
    ) -> CheckResult:
        """The general path: persistent SAT engine + assumption literals."""
        literal_names: Dict[int, List[object]] = {}
        assumption_literals: List[int] = []
        for formula in base:
            assumption_literals.append(session.literal_for(formula, stats))
        for name, formula in named.items():
            literal = session.literal_for(formula, stats)
            assumption_literals.append(literal)
            literal_names.setdefault(literal, []).append(name)
        # Dedupe while preserving order; a repeated literal would only open
        # empty decision levels in the SAT engine.
        assumption_literals = list(dict.fromkeys(assumption_literals))

        # Theory reasoning is restricted to the atoms of the *active*
        # formulas: the database also holds atoms of formulas from earlier
        # calls, whose boolean values are unconstrained don't-cares here.
        relevant_vars: set = set()
        for formula in base:
            relevant_vars.update(session.atom_vars_for(formula))
        for formula in named.values():
            relevant_vars.update(session.atom_vars_for(formula))
        ordered_vars = sorted(relevant_vars)

        session.feed_clauses()
        for _ in range(MAX_THEORY_ROUNDS):
            stats.sat_solves += 1
            assignment = session.sat.solve(assumption_literals)
            if assignment is None:
                conflict = set(session.sat.core)
                self._core = tuple(
                    name
                    for literal, names in literal_names.items()
                    if literal in conflict
                    for name in names
                )
                return CheckResult.UNSAT
            atoms, disequalities, blocking = _theory_literals(
                session.cnf, assignment, ordered_vars
            )
            result = _case_split(atoms, disequalities)
            if result.satisfiable:
                self._model = result.model
                return CheckResult.SAT
            stats.theory_conflicts += 1
            if not blocking:
                # No relevant atom was assigned yet the theory refused the
                # (empty) conjunction -- cannot happen, but fail safe.
                self._core = tuple(
                    name for names in literal_names.values() for name in names
                )
                return CheckResult.UNSAT
            # Theory conflict: the blocking clause is theory-valid, so it can
            # stay in the persistent database and help every later query.
            session.sat.add_clause(blocking)
        return CheckResult.UNKNOWN

    def unsat_core(self) -> Tuple[object, ...]:
        """Assumption names in the final conflict of the last UNSAT check.

        Only names passed to :meth:`check_assumptions` appear; base
        assertions participate in the refutation but are never reported
        (they are unconditionally present anyway).
        """
        return self._core

    def minimize_core(self) -> Tuple[object, ...]:
        """Deletion-minimize the unsat core of the last UNSAT check.

        Re-solves with one core member dropped at a time; a member whose
        removal keeps the query UNSAT is discarded (together with anything
        else the shrunken refutation no longer needs).  On return,
        :meth:`unsat_core` yields a core where dropping any single member
        makes the query satisfiable (modulo the theory solver's conservative
        SAT answers).  The last-check model/core state is left describing the
        minimized core.
        """
        if self._core_minimal:
            # The fast path's deletion loop already minimized the core.
            return self._core
        named = dict(self._last_assumptions)
        core = [name for name in named if name in set(self._core)]
        for name in list(core):
            if name not in core:
                continue  # already dropped by an earlier, smaller refutation
            trial = {n: named[n] for n in core if n != name}
            if self.check_assumptions(trial) is CheckResult.UNSAT:
                survivors = set(self._core)
                core = [n for n in core if n != name and n in survivors]
        self._core = tuple(core)
        self._core_minimal = True
        self._last_assumptions = named
        # A SAT deletion probe may have left its model behind; the overall
        # query is UNSAT, so the last-check state must not offer one.
        self._model = None
        return self._core

    # ------------------------------------------------------------------
    def _finish(self, result: TheoryResult) -> CheckResult:
        if not result.satisfiable:
            return CheckResult.UNSAT
        self._model = result.model
        return CheckResult.SAT

    def _solve_lazy(self, formula: Formula) -> CheckResult:
        cnf = tseitin(formula)
        sat = SatSolver(cnf.num_vars, cnf.clauses)
        theory_vars = sorted(cnf.atom_of_var)
        for _ in range(MAX_THEORY_ROUNDS):
            assignment = sat.solve()
            if assignment is None:
                return CheckResult.UNSAT
            atoms, disequalities, blocking = _theory_literals(
                cnf, assignment, theory_vars
            )
            result = _case_split(atoms, disequalities)
            if result.satisfiable:
                return self._finish(result)
            # Theory conflict: block this boolean assignment (restricted to the
            # theory variables) and ask the SAT engine for another one.
            if not blocking:
                return CheckResult.UNSAT
            sat.add_clause(blocking)
        return CheckResult.UNKNOWN


def _theory_literals(cnf: CNF, assignment: Dict[int, bool], theory_vars):
    """Split a boolean model into theory atoms, disequalities and a blocker.

    Positive atoms are collected directly; a false ``<=`` atom contributes
    its (single) negation; a false equality is a disequality handled by case
    splitting.  The blocking clause covers exactly the theory variables that
    were read, so adding it excludes only this theory-refuted assignment.
    """
    atoms: List[Atom] = []
    disequalities: List[Atom] = []
    blocking: List[int] = []
    for variable in theory_vars:
        value = assignment.get(variable)
        if value is None:
            continue
        atom = cnf.atom_of_var[variable]
        blocking.append(-variable if value else variable)
        if value:
            atoms.append(atom)
        elif atom.op == "<=":
            atoms.extend(atom.negated_atoms())
        else:
            disequalities.append(atom)
    return atoms, disequalities, blocking


def _case_split(atoms: List[Atom], disequalities: List[Atom]) -> TheoryResult:
    if not disequalities:
        return check_conjunction(atoms)
    head, *rest = disequalities
    for branch in head.negated_atoms():
        result = _case_split(atoms + [branch], rest)
        if result.satisfiable:
            return result
    return TheoryResult(satisfiable=False)


#: Maximum number of atomic disjunctions handled by the case-split fast path.
MAX_CASE_SPLIT_CLAUSES = 8


def _as_clausal_conjunction(formula: Formula):
    """Recognise ``And(Atom | Or(Atom...), ...)`` formulas.

    The deduction queries of the synthesizer have exactly this shape: a large
    conjunction of atoms plus a handful of small disjunctions (the
    ``Min``/``Max`` bounds of ``inner_join`` and the input-binding constraint
    :math:`\\varphi_{in}` when there are several input tables).  For those, a
    direct case split over the disjunctions is far cheaper than the full
    Tseitin/SAT pipeline.  Returns ``(atoms, clauses)`` or ``None``.
    """
    atoms: List[Atom] = []
    clauses: List[List[List[Atom]]] = []

    def clause_branches(node: Formula) -> Optional[List[List[Atom]]]:
        """Each branch of a disjunction as a conjunction of atoms."""
        branches: List[List[Atom]] = []
        for operand in node.operands:
            if isinstance(operand, Atom):
                branches.append([operand])
            elif isinstance(operand, And):
                flat = _as_conjunction_of_atoms(operand)
                if flat is None:
                    return None
                branches.append(flat)
            elif isinstance(operand, BoolVal):
                if operand.value:
                    branches.append([])
            else:
                return None
        return branches

    def walk(node: Formula) -> bool:
        if isinstance(node, Atom):
            atoms.append(node)
            return True
        if isinstance(node, BoolVal):
            return node.value
        if isinstance(node, And):
            return all(walk(operand) for operand in node.operands)
        if isinstance(node, Or):
            branches = clause_branches(node)
            if branches is None:
                return False
            clauses.append(branches)
            return True
        return False

    if walk(formula) and len(clauses) <= MAX_CASE_SPLIT_CLAUSES:
        return atoms, clauses
    return None


def _check_clausal(atoms: List[Atom], clauses, exact: bool = True) -> Optional[TheoryResult]:
    """Case split over the clauses; return a SAT result or ``None`` for UNSAT."""
    if not clauses:
        result = check_conjunction(atoms, exact)
        return result if result.satisfiable else None
    head, *rest = clauses
    for branch in head:
        result = _check_clausal(atoms + branch, rest, exact)
        if result is not None:
            return result
    return None


def _as_conjunction_of_atoms(formula: Formula) -> Optional[List[Atom]]:
    """Flatten *formula* into a list of atoms, or ``None`` if it has boolean structure."""
    atoms: List[Atom] = []

    def walk(node: Formula) -> bool:
        if isinstance(node, Atom):
            atoms.append(node)
            return True
        if isinstance(node, BoolVal):
            return node.value
        if isinstance(node, And):
            return all(walk(operand) for operand in node.operands)
        return False

    if walk(formula):
        return atoms
    return None


def is_satisfiable(formulas: Iterable[Formula]) -> bool:
    """Convenience wrapper: SAT/UNKNOWN count as satisfiable (sound pruning)."""
    solver = Solver()
    solver.add(*formulas)
    return solver.check() is not CheckResult.UNSAT
