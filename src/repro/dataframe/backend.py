"""Pluggable array-execution backends for the columnar verb kernels.

The dplyr/tidyr verbs (:mod:`repro.components.dplyr`,
:mod:`repro.components.tidyr`) are written against a small kernel interface
-- row selection, sort-order computation, hash-join pairing, group
aggregation, scatter/gather materialisation -- instead of looping over cells
inline.  :class:`ArrayBackend` defines that interface and implements every
kernel with the reference pure-Python loops; :class:`NumpyBackend` overrides
the hot ones with vectorised equivalents that run over contiguous arrays:
cell vectors become cached ``object`` arrays (for materialisation), ``float64``
arrays (for numeric predicates and sort keys) and interned integer *code*
arrays (``np.unique`` factorisation, for sorts, joins and grouping).

Backend contract
----------------
A backend override must be **observationally identical** to the reference
kernel: same output tables cell-for-cell (hence fingerprint-for-fingerprint,
since fingerprints are content-derived), same exception types *and* messages,
and the same number of table constructions (``tables_built`` is part of the
deterministic counter block).  Cell interning counts may differ between
backends -- trusted constructors may share already-interned vectors -- but
every backend must itself be deterministic, so the serial vs ``--jobs N``
counter identity holds per backend.  Whenever a vectorised kernel cannot
guarantee bit-identical behaviour (opaque predicate closures, ``NaN`` cells
whose ordering under Python's sort is not reproducible with ``lexsort``,
float aggregation whose summation order would change rounding), it falls back
to the inherited reference kernel instead of approximating.

The active backend is a process-wide swappable global, mirroring the intern
pool and execution-stats hooks (:func:`install_backend` /
:func:`active_backend`), so :class:`repro.engine.context.TaskContext` can
carry it per synthesis task.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from .cells import CellType, CellValue, value_sort_key
from .table import Table

#: Environment variable that hides numpy even when it is importable (used by
#: CI to prove the suite passes without the optional ``repro[fast]`` extra).
NUMPY_ENV_GATE = "REPRO_DISABLE_NUMPY"

_UNRESOLVED = object()
_numpy_module = _UNRESOLVED


def numpy_module():
    """The imported numpy module, or ``None`` when unavailable or disabled."""
    global _numpy_module
    if os.environ.get(NUMPY_ENV_GATE):
        return None
    if _numpy_module is _UNRESOLVED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via the env gate
            _numpy_module = None
        else:
            _numpy_module = numpy
    return _numpy_module


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed in this process."""
    return numpy_module() is not None


class BackendUnavailableError(RuntimeError):
    """A backend was requested whose optional dependency is missing."""


def join_key(value: CellValue):
    """The equality key ``inner_join`` matches rows on.

    Missing cells only match missing cells; numbers compare as floats (so
    ``5`` joins ``5.0``); everything else compares as itself.
    """
    if value is None:
        return (0, None)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, float(value))
    return (2, value)


def _evaluation_error(message: str):
    # Imported lazily: repro.components imports this module at load time.
    from ..components.errors import EvaluationError

    return EvaluationError(message)


_ORDERING_OPERATORS = ("<", ">", "<=", ">=")
_COMPARISON_OPERATORS = ("==", "!=") + _ORDERING_OPERATORS


class ArrayBackend:
    """Kernel interface of the columnar verbs (reference implementation).

    The methods below are the complete backend contract.  Every default
    implementation is the pure-Python reference kernel the verbs historically
    inlined; subclasses may override any subset, subject to the
    observational-identity contract in the module docstring.
    """

    name = "python"

    # ------------------------------------------------------------------
    # Row materialisation
    # ------------------------------------------------------------------
    def take_rows(self, table: Table, indices: Sequence[int]) -> Table:
        """Project *table* onto the given row indices (types preserved)."""
        return table.take_rows(indices)

    # ------------------------------------------------------------------
    # filter
    # ------------------------------------------------------------------
    def has_fast_predicate(self, table: Table, predicate) -> bool:
        """Whether :meth:`filter_indices` can avoid per-row dict views."""
        return False

    def filter_indices(self, table: Table, predicate, rows=None) -> List[int]:
        """Indices of the rows satisfying *predicate* (in row order).

        *rows* optionally carries pre-built ``row_dict`` views so batched
        sibling predicates share the per-table materialisation cost.
        """
        if rows is not None:
            return [index for index, row in enumerate(rows) if predicate(row)]
        return [
            index for index in range(table.n_rows) if predicate(table.row_dict(index))
        ]

    def row_views(self, table: Table) -> List[Dict[str, CellValue]]:
        """All rows as ``{column: value}`` dicts (shared across predicates)."""
        return [table.row_dict(index) for index in range(table.n_rows)]

    # ------------------------------------------------------------------
    # arrange
    # ------------------------------------------------------------------
    def sort_order(
        self, table: Table, columns: Sequence[str], descending: bool = False
    ) -> List[int]:
        """The row permutation that sorts *table* by *columns* (stable)."""
        vectors = [table.column_values(name) for name in columns]

        def key(index):
            return tuple(value_sort_key(vector[index]) for vector in vectors)

        return sorted(range(table.n_rows), key=key, reverse=descending)

    # ------------------------------------------------------------------
    # inner_join
    # ------------------------------------------------------------------
    def join_pairs(self, left: Table, right: Table, shared: Sequence[str]):
        """Matching ``(left_indices, right_indices)`` of the natural join.

        Pairs are emitted in left-row order; a left row's matches appear in
        right-row order.
        """
        left_vectors = [left.column_values(name) for name in shared]
        right_vectors = [right.column_values(name) for name in shared]

        buckets: Dict[Tuple, List[int]] = {}
        for row_index in range(right.n_rows):
            key = tuple(join_key(vector[row_index]) for vector in right_vectors)
            buckets.setdefault(key, []).append(row_index)

        left_indices: List[int] = []
        right_indices: List[int] = []
        for row_index in range(left.n_rows):
            key = tuple(join_key(vector[row_index]) for vector in left_vectors)
            for match in buckets.get(key, ()):
                left_indices.append(row_index)
                right_indices.append(match)
        return left_indices, right_indices

    def build_join(
        self,
        left: Table,
        right: Table,
        left_indices,
        right_indices,
        right_extra: Sequence[str],
        group_cols: Sequence[str],
    ) -> Table:
        """Materialise the join output (left columns + right extras)."""
        out_columns = list(left.columns) + list(right_extra)
        out_vectors = [
            [vector[i] for i in left_indices]
            for vector in (left.column_values(name) for name in left.columns)
        ]
        out_vectors.extend(
            [vector[i] for i in right_indices]
            for vector in (right.column_values(name) for name in right_extra)
        )
        return Table.from_vectors(out_columns, out_vectors, group_cols=group_cols)

    # ------------------------------------------------------------------
    # summarise
    # ------------------------------------------------------------------
    def aggregate_groups(
        self, table: Table, aggregator: str, target_column: Optional[str]
    ):
        """Per-group aggregate values as ``(group_keys, aggregates)``.

        Group keys appear in first-appearance order (dplyr semantics);
        aggregation errors are raised exactly as the reference aggregators
        raise them.
        """
        from ..components.values import AGGREGATORS, agg_count

        groups = table.group_row_indices()
        keys = [key for key, _indices in groups]
        if aggregator == "n":
            aggregates = [agg_count([None] * len(indices)) for _key, indices in groups]
        else:
            target = table.column_values(target_column)
            aggregates = [
                AGGREGATORS[aggregator]([target[i] for i in indices])
                for _key, indices in groups
            ]
        return keys, aggregates

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    def build_gather(
        self,
        table: Table,
        id_columns: Sequence[str],
        key: str,
        value: str,
        out_vectors: Sequence[Sequence[CellValue]],
        out_types: Sequence[CellType],
        group_cols: Sequence[str],
    ) -> Table:
        """Materialise the gather output from already-assembled vectors."""
        out_columns = list(id_columns) + [key, value]
        return Table.from_vectors(out_columns, out_vectors, out_types, group_cols)

    # ------------------------------------------------------------------
    # spread
    # ------------------------------------------------------------------
    def spread_scatter(
        self,
        table: Table,
        id_columns: Sequence[str],
        key_column: str,
        value_column: str,
        key_values: Sequence[CellValue],
        new_columns: Sequence[str],
    ):
        """Scatter value cells into per-key vectors.

        Returns ``(first_rows, value_vectors)`` where *first_rows* holds the
        first row index of each identifier group (insertion order) and
        *value_vectors* has one vector per entry of *new_columns* (missing
        combinations are ``None``).  Raises the duplicate-identifiers error
        exactly like the reference scan.
        """
        from .cells import format_value

        id_vectors = [table.column_values(name) for name in id_columns]
        key_vector = table.column_values(key_column)
        value_vector = table.column_values(value_column)

        first_rows: List[int] = []
        index_of: Dict[Tuple[CellValue, ...], int] = {}
        cells: List[Dict[str, CellValue]] = []
        for row_index in range(table.n_rows):
            group_key = tuple(vector[row_index] for vector in id_vectors)
            position = index_of.get(group_key)
            if position is None:
                position = index_of[group_key] = len(first_rows)
                first_rows.append(row_index)
                cells.append({})
            column_name = format_value(key_vector[row_index])
            if column_name in cells[position]:
                raise _evaluation_error("spread: duplicate identifiers for rows")
            cells[position][column_name] = value_vector[row_index]

        value_vectors = [
            [cells[position].get(name) for position in range(len(first_rows))]
            for name in new_columns
        ]
        return first_rows, value_vectors


class PythonBackend(ArrayBackend):
    """The pure-Python reference backend (the default)."""


class NumpyBackend(ArrayBackend):
    """Vectorised kernels over cached column arrays (``repro[fast]``).

    Per-table arrays are memoised on the table instance
    (``Table._backend_cache``): an ``object`` array per column for fancy-index
    materialisation, a ``(float64 values, missing mask)`` pair per numeric
    column, and interned ``int64`` code arrays (``np.unique`` factorisation)
    for sorts, joins and grouping.  Kernels that cannot reproduce reference
    semantics bit-for-bit fall back to the inherited reference kernel.
    """

    name = "numpy"

    #: Below this many rows the reference loops beat the vectorised kernels
    #: on a fresh table (array construction and factorisation dominate, and
    #: synthesis intermediates rarely live long enough to amortise them), so
    #: the kernels delegate to the inherited reference implementation.
    #: Measured crossover on CPython 3.11: ~8-16 rows for filter, ~16-32 for
    #: sorts and joins.
    MIN_VECTOR_ROWS = 32

    def __init__(self) -> None:
        module = numpy_module()
        if module is None:
            raise BackendUnavailableError(
                "backend 'numpy' requested but numpy is not importable "
                f"(or disabled via {NUMPY_ENV_GATE})"
            )
        self._np = module

    # ------------------------------------------------------------------
    # Cached per-table arrays
    # ------------------------------------------------------------------
    def _cache(self, table: Table) -> dict:
        cache = table._backend_cache
        if cache is None:
            cache = table._backend_cache = {}
        return cache

    def _object_array(self, table: Table, index: int):
        cache = self._cache(table)
        entry = cache.get(("obj", index))
        if entry is None:
            np = self._np
            vector = table._column_data[index]
            entry = np.empty(len(vector), dtype=object)
            entry[:] = vector
            cache[("obj", index)] = entry
        return entry

    def _missing_mask(self, table: Table, index: int):
        cache = self._cache(table)
        entry = cache.get(("missing", index))
        if entry is None:
            np = self._np
            vector = table._column_data[index]
            entry = np.fromiter(
                (cell is None for cell in vector), dtype=bool, count=len(vector)
            )
            cache[("missing", index)] = entry
        return entry

    def _num_arrays(self, table: Table, index: int):
        """``(float64 values, missing mask, has_missing, has_nan)`` of a NUM column.

        Missing cells hold ``0.0`` in the value array; callers must consult
        the mask (or the raised errors) before trusting those positions.
        """
        cache = self._cache(table)
        entry = cache.get(("num", index))
        if entry is None:
            np = self._np
            vector = table._column_data[index]
            missing = self._missing_mask(table, index)
            values = np.array(
                [0.0 if cell is None else float(cell) for cell in vector],
                dtype=np.float64,
            )
            entry = (
                values,
                missing,
                bool(missing.any()),
                bool(np.isnan(values).any()),
            )
            cache[("num", index)] = entry
        return entry

    def _column_codes(self, table: Table, index: int):
        """Interned ``int64`` codes of one column (``0`` = missing).

        Two cells of the column share a code exactly when :func:`join_key`
        considers them equal.  Returns ``None`` when the column contains
        ``NaN`` (whose equality semantics are not reproducible with
        factorisation).
        """
        cache = self._cache(table)
        entry = cache.get(("codes", index))
        if entry is None:
            entry = (self._factorize(table, index),)
            cache[("codes", index)] = entry
        return entry[0]

    def _factorize(self, table: Table, index: int):
        np = self._np
        vector = table._column_data[index]
        codes = np.zeros(len(vector), dtype=np.int64)
        if not len(vector):
            return codes
        if table.col_types[index] is CellType.NUM:
            values, missing, has_missing, has_nan = self._num_arrays(table, index)
            if has_nan:
                return None
            present = ~missing
            _, inverse = np.unique(values[present], return_inverse=True)
            codes[present] = inverse.astype(np.int64) + 1
        else:
            present_cells = [cell for cell in vector if cell is not None]
            if present_cells:
                mask = ~self._missing_mask(table, index)
                _, inverse = np.unique(
                    np.array(present_cells, dtype=str), return_inverse=True
                )
                codes[mask] = inverse.astype(np.int64) + 1
        return codes

    # ------------------------------------------------------------------
    # Row materialisation
    # ------------------------------------------------------------------
    def take_rows(self, table: Table, indices) -> Table:
        if table.n_rows < self.MIN_VECTOR_ROWS:
            return super().take_rows(table, indices)
        np = self._np
        index_array = np.asarray(indices, dtype=np.intp)
        column_data = tuple(
            tuple(self._object_array(table, position)[index_array].tolist())
            for position in range(table.n_cols)
        )
        return Table._from_shared(
            table.columns,
            table.col_types,
            column_data,
            table.group_cols,
            len(index_array),
        )

    # ------------------------------------------------------------------
    # filter
    # ------------------------------------------------------------------
    def _predicate_parts(self, table: Table, predicate):
        column = getattr(predicate, "column", None)
        operator = getattr(predicate, "operator", None)
        constant = getattr(predicate, "constant", None)
        if (
            not isinstance(column, str)
            or operator not in _COMPARISON_OPERATORS
            or constant is None
            or not hasattr(constant, "value")
            or not table.has_column(column)
        ):
            return None
        value = constant.value
        if isinstance(value, bool):
            return None
        if value is not None and not isinstance(value, (int, float, str)):
            return None
        return table.column_index(column), operator, value

    def has_fast_predicate(self, table: Table, predicate) -> bool:
        if table.n_rows < self.MIN_VECTOR_ROWS:
            return False
        return self._predicate_parts(table, predicate) is not None

    def filter_indices(self, table: Table, predicate, rows=None) -> List[int]:
        if table.n_rows < self.MIN_VECTOR_ROWS:
            return super().filter_indices(table, predicate, rows)
        parts = self._predicate_parts(table, predicate)
        if parts is None:
            return super().filter_indices(table, predicate, rows)
        index, operator, constant = parts
        np = self._np
        n_rows = table.n_rows

        if constant is None:
            if operator == "==":
                return np.flatnonzero(self._missing_mask(table, index)).tolist()
            if operator == "!=":
                return np.flatnonzero(~self._missing_mask(table, index)).tolist()
            if n_rows:
                raise _evaluation_error(f"{operator} applied to a missing value")
            return []

        numeric_constant = isinstance(constant, (int, float))
        if table.col_types[index] is CellType.NUM:
            if numeric_constant:
                values, missing, has_missing, _has_nan = self._num_arrays(table, index)
                target = float(constant)
                if operator in ("==", "!="):
                    equal = np.abs(values - target) <= 1e-9
                    equal &= ~missing
                    mask = equal if operator == "==" else ~equal
                    return np.flatnonzero(mask).tolist()
                if has_missing:
                    raise _evaluation_error(f"{operator} applied to a missing value")
                if operator == "<":
                    mask = values < target
                elif operator == ">":
                    mask = values > target
                elif operator == "<=":
                    mask = values <= target
                else:
                    mask = values >= target
                return np.flatnonzero(mask).tolist()
            return self._incompatible_indices(table, index, operator, constant, n_rows)

        if isinstance(constant, str):
            cells = self._object_array(table, index)
            if operator in ("==", "!="):
                equal = cells == constant
                mask = equal if operator == "==" else ~equal
                return np.flatnonzero(mask).tolist()
            if self._missing_mask(table, index).any():
                raise _evaluation_error(f"{operator} applied to a missing value")
            if operator == "<":
                mask = cells < constant
            elif operator == ">":
                mask = cells > constant
            elif operator == "<=":
                mask = cells <= constant
            else:
                mask = cells >= constant
            return np.flatnonzero(mask).tolist()
        return self._incompatible_indices(table, index, operator, constant, n_rows)

    def _incompatible_indices(self, table, index, operator, constant, n_rows):
        """A typed column compared against a constant of the other type.

        ``==`` matches nothing, ``!=`` matches everything (missing included),
        and ordering operators fail on the first row exactly like
        ``_comparable``.
        """
        if operator == "==":
            return []
        if operator == "!=":
            return list(range(n_rows))
        if n_rows == 0:
            return []
        first = table._column_data[index][0]
        if first is None:
            raise _evaluation_error(f"{operator} applied to a missing value")
        raise _evaluation_error(
            f"{operator} applied to incompatible operands {first!r} and {constant!r}"
        )

    # ------------------------------------------------------------------
    # arrange
    # ------------------------------------------------------------------
    def sort_order(
        self, table: Table, columns: Sequence[str], descending: bool = False
    ) -> List[int]:
        if table.n_rows < self.MIN_VECTOR_ROWS or descending:
            # sorted(reverse=True) keeps ties in original order; a reversed
            # ascending lexsort would flip them.
            return super().sort_order(table, columns, descending)
        np = self._np
        keys = []
        for name in reversed(list(columns)):
            pair = self._sort_key_arrays(table, table.column_index(name))
            if pair is None:
                return super().sort_order(table, columns, descending)
            value_key, rank = pair
            keys.append(value_key)
            keys.append(rank)
        return np.lexsort(keys).tolist()

    def _sort_key_arrays(self, table: Table, index: int):
        """``(value key, missing rank)`` arrays reproducing ``value_sort_key``.

        ``None`` when the column holds ``NaN`` (Python's sort order for NaN
        keys is not reproducible with ``lexsort``).
        """
        cache = self._cache(table)
        entry = cache.get(("sort", index))
        if entry is None:
            np = self._np
            if table.col_types[index] is CellType.NUM:
                values, missing, _has_missing, has_nan = self._num_arrays(table, index)
                if has_nan:
                    entry = (None,)
                else:
                    entry = ((values, (~missing).astype(np.int8)),)
            else:
                codes = self._column_codes(table, index)
                entry = ((codes, (codes > 0).astype(np.int8)),)
            cache[("sort", index)] = entry
        return entry[0]

    # ------------------------------------------------------------------
    # inner_join
    # ------------------------------------------------------------------
    def join_pairs(self, left: Table, right: Table, shared: Sequence[str]):
        if max(left.n_rows, right.n_rows) < self.MIN_VECTOR_ROWS:
            return super().join_pairs(left, right, shared)
        codes = self._join_codes(left, right, shared)
        if codes is None:
            return super().join_pairs(left, right, shared)
        np = self._np
        left_codes, right_codes = codes
        order = np.argsort(right_codes, kind="stable")
        sorted_right = right_codes[order]
        starts = np.searchsorted(sorted_right, left_codes, side="left")
        ends = np.searchsorted(sorted_right, left_codes, side="right")
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            return [], []
        left_indices = np.repeat(np.arange(len(left_codes), dtype=np.intp), counts)
        bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
        offsets = np.arange(total, dtype=np.intp) - np.repeat(bases, counts)
        right_indices = order[np.repeat(starts, counts) + offsets]
        return left_indices, right_indices

    def _join_codes(self, left: Table, right: Table, shared: Sequence[str]):
        """Per-row join codes over both tables, or ``None`` to fall back.

        Cross-table codes are equal exactly when :func:`join_key` tuples are
        equal.  Columns pair through iterated factorisation, so combined
        codes stay bounded by the row count.
        """
        np = self._np
        combined = None
        for name in shared:
            pair = self._pair_codes(left, right, name)
            if pair is None:
                return None
            if combined is None:
                combined = pair
            else:
                width = int(pair.max()) + 1 if len(pair) else 1
                _, inverse = np.unique(combined * width + pair, return_inverse=True)
                combined = inverse.astype(np.int64)
        n_left = left.n_rows
        return combined[:n_left], combined[n_left:]

    def _pair_codes(self, left: Table, right: Table, name: str):
        np = self._np
        left_index = left.column_index(name)
        right_index = right.column_index(name)
        left_num = left.col_types[left_index] is CellType.NUM
        right_num = right.col_types[right_index] is CellType.NUM
        n_left = left.n_rows
        n_right = right.n_rows
        codes = np.zeros(n_left + n_right, dtype=np.int64)
        if left_num != right_num:
            # Mixed types: only missing cells can match across tables, so any
            # side-distinct nonzero codes are correct.
            codes[:n_left][~self._missing_mask(left, left_index)] = 1
            codes[n_left:][~self._missing_mask(right, right_index)] = 2
            return codes
        if left_num:
            left_values, left_missing, _lm, left_nan = self._num_arrays(left, left_index)
            right_values, right_missing, _rm, right_nan = self._num_arrays(
                right, right_index
            )
            if left_nan or right_nan:
                return None
            values = np.concatenate((left_values, right_values))
            missing = np.concatenate((left_missing, right_missing))
            present = ~missing
            _, inverse = np.unique(values[present], return_inverse=True)
            codes[present] = inverse.astype(np.int64) + 1
            return codes
        cells = list(left._column_data[left_index]) + list(
            right._column_data[right_index]
        )
        present_cells = [cell for cell in cells if cell is not None]
        if present_cells:
            mask = np.fromiter(
                (cell is not None for cell in cells), dtype=bool, count=len(cells)
            )
            _, inverse = np.unique(
                np.array(present_cells, dtype=str), return_inverse=True
            )
            codes[mask] = inverse.astype(np.int64) + 1
        return codes

    def build_join(
        self,
        left: Table,
        right: Table,
        left_indices,
        right_indices,
        right_extra: Sequence[str],
        group_cols: Sequence[str],
    ) -> Table:
        if (
            max(left.n_rows, right.n_rows, len(left_indices))
            < self.MIN_VECTOR_ROWS
        ):
            return super().build_join(
                left, right, left_indices, right_indices, right_extra, group_cols
            )
        np = self._np
        left_array = np.asarray(left_indices, dtype=np.intp)
        right_array = np.asarray(right_indices, dtype=np.intp)
        column_data = []
        col_types = []
        for position in range(left.n_cols):
            column_data.append(
                tuple(self._object_array(left, position)[left_array].tolist())
            )
            col_types.append(self._sliced_type(left, position, left_array))
        for name in right_extra:
            position = right.column_index(name)
            column_data.append(
                tuple(self._object_array(right, position)[right_array].tolist())
            )
            col_types.append(self._sliced_type(right, position, right_array))
        out_columns = tuple(left.columns) + tuple(right_extra)
        return Table._from_shared(
            out_columns,
            tuple(col_types),
            tuple(column_data),
            tuple(group_cols),
            len(left_array),
        )

    def _sliced_type(self, table: Table, position: int, index_array) -> CellType:
        """The type the validating constructor would re-infer for a slice.

        ``from_vectors`` without explicit types infers per column, so a NUM
        column whose surviving cells are all missing comes out as STR.
        """
        col_type = table.col_types[position]
        if col_type is CellType.NUM and bool(
            self._missing_mask(table, position)[index_array].all()
        ):
            return CellType.STR
        return col_type

    # ------------------------------------------------------------------
    # summarise
    # ------------------------------------------------------------------
    #: Bounds under which integer sums stay exact in sequential float64
    #: addition (so the vectorised integer sum matches the reference's
    #: float-by-float accumulation bit for bit).
    _SAFE_INT = 2**31
    _SAFE_ROWS = 2**20

    def aggregate_groups(
        self, table: Table, aggregator: str, target_column: Optional[str]
    ):
        if table.n_rows < self.MIN_VECTOR_ROWS:
            return super().aggregate_groups(table, aggregator, target_column)
        if aggregator not in ("n", "sum", "mean", "min", "max"):
            return super().aggregate_groups(table, aggregator, target_column)
        grouping = self._group_codes(table)
        if grouping is None:
            return super().aggregate_groups(table, aggregator, target_column)
        codes, keys = grouping
        np = self._np
        if aggregator == "n":
            counts = np.bincount(codes, minlength=len(keys))
            return keys, [int(count) for count in counts]

        from .cells import normalize_number

        position = table.column_index(target_column)
        if table.col_types[position] is not CellType.NUM:
            return super().aggregate_groups(table, aggregator, target_column)
        values, _missing, has_missing, has_nan = self._num_arrays(table, position)
        if has_missing or has_nan:
            return super().aggregate_groups(table, aggregator, target_column)

        if aggregator in ("sum", "mean"):
            vector = table._column_data[position]
            if len(vector) > self._SAFE_ROWS or not all(
                isinstance(cell, int) and abs(cell) <= self._SAFE_INT
                for cell in vector
            ):
                return super().aggregate_groups(table, aggregator, target_column)
            sums = np.zeros(len(keys), dtype=np.int64)
            np.add.at(sums, codes, values.astype(np.int64))
            if aggregator == "sum":
                return keys, [int(total) for total in sums]
            counts = np.bincount(codes, minlength=len(keys))
            return keys, [
                normalize_number(float(total) / int(count))
                for total, count in zip(sums, counts)
            ]

        fill = np.inf if aggregator == "min" else -np.inf
        out = np.full(len(keys), fill, dtype=np.float64)
        if aggregator == "min":
            np.minimum.at(out, codes, values)
        else:
            np.maximum.at(out, codes, values)
        return keys, [normalize_number(float(value)) for value in out]

    def _group_codes(self, table: Table):
        """First-appearance-ordered group codes, or ``None`` to fall back."""
        np = self._np
        n_rows = table.n_rows
        if not table.group_cols:
            if not n_rows:
                return np.zeros(0, dtype=np.int64), []
            return np.zeros(n_rows, dtype=np.int64), [()]
        indices = [table.column_index(name) for name in table.group_cols]
        combined = None
        for position in indices:
            codes = self._column_codes(table, position)
            if codes is None:
                return None
            if combined is None:
                combined = codes
            else:
                width = int(codes.max()) + 1 if len(codes) else 1
                _, inverse = np.unique(combined * width + codes, return_inverse=True)
                combined = inverse.astype(np.int64)
        _, first, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(first), dtype=np.int64)
        rank[order] = np.arange(len(first), dtype=np.int64)
        codes = rank[inverse]
        first_rows = first[order].tolist()
        keys = [
            tuple(table._column_data[position][row] for position in indices)
            for row in first_rows
        ]
        return codes, keys

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    def build_gather(
        self,
        table: Table,
        id_columns: Sequence[str],
        key: str,
        value: str,
        out_vectors: Sequence[Sequence[CellValue]],
        out_types: Sequence[CellType],
        group_cols: Sequence[str],
    ) -> Table:
        # Every cell either comes out of an existing (coerced, interned)
        # column vector or is a freshly formatted string, so the validating
        # constructor has nothing left to do: share the vectors directly.
        out_columns = tuple(id_columns) + (key, value)
        column_data = tuple(tuple(vector) for vector in out_vectors)
        n_rows = len(column_data[0]) if column_data else 0
        return Table._from_shared(
            out_columns, tuple(out_types), column_data, tuple(group_cols), n_rows
        )

    # ------------------------------------------------------------------
    # spread
    # ------------------------------------------------------------------
    def spread_scatter(
        self,
        table: Table,
        id_columns: Sequence[str],
        key_column: str,
        value_column: str,
        key_values: Sequence[CellValue],
        new_columns: Sequence[str],
    ):
        if table.n_rows < self.MIN_VECTOR_ROWS:
            return super().spread_scatter(
                table, id_columns, key_column, value_column, key_values, new_columns
            )
        np = self._np
        id_indices = [table.column_index(name) for name in id_columns]
        id_codes = None
        for position in id_indices:
            codes = self._column_codes(table, position)
            if codes is None:
                return super().spread_scatter(
                    table, id_columns, key_column, value_column, key_values, new_columns
                )
            if id_codes is None:
                id_codes = codes
            else:
                width = int(codes.max()) + 1 if len(codes) else 1
                _, inverse = np.unique(id_codes * width + codes, return_inverse=True)
                id_codes = inverse.astype(np.int64)
        key_codes = self._column_codes(table, table.column_index(key_column))
        if key_codes is None:
            return super().spread_scatter(
                table, id_columns, key_column, value_column, key_values, new_columns
            )
        # The key column has no missing cells (checked by the caller), so the
        # factorisation codes are 1..k in ascending value order -- exactly the
        # order of *key_values* (sorted by value_sort_key over one cell type).
        key_codes = key_codes - 1

        _, first, inverse = np.unique(id_codes, return_index=True, return_inverse=True)
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(first), dtype=np.int64)
        rank[order] = np.arange(len(first), dtype=np.int64)
        group_codes = rank[inverse]
        first_rows = first[order].tolist()

        n_groups = len(first_rows)
        n_keys = len(key_values)
        pair = group_codes * n_keys + key_codes
        if len(np.unique(pair)) != len(pair):
            raise _evaluation_error("spread: duplicate identifiers for rows")
        grid = np.full((n_groups, n_keys), None, dtype=object)
        value_cells = self._object_array(table, table.column_index(value_column))
        grid[group_codes, key_codes] = value_cells
        value_vectors = [grid[:, column].tolist() for column in range(n_keys)]
        return first_rows, value_vectors


_PYTHON_BACKEND = PythonBackend()
_NUMPY_BACKEND: Optional[NumpyBackend] = None

_active_backend: ArrayBackend = _PYTHON_BACKEND

#: Names accepted by :func:`resolve_backend` (availability varies).
BACKEND_NAMES = ("python", "numpy")


def resolve_backend(name) -> ArrayBackend:
    """The backend instance for *name* (or an already-resolved backend).

    Raises :class:`BackendUnavailableError` when the numpy backend is
    requested without numpy, and :class:`ValueError` for unknown names.
    """
    global _NUMPY_BACKEND
    if isinstance(name, ArrayBackend):
        return name
    if name in (None, "python"):
        return _PYTHON_BACKEND
    if name == "numpy":
        if _NUMPY_BACKEND is None:
            _NUMPY_BACKEND = NumpyBackend()
        return _NUMPY_BACKEND
    raise ValueError(f"unknown backend {name!r} (expected one of {BACKEND_NAMES})")


def active_backend() -> ArrayBackend:
    """The backend the verb kernels currently dispatch to."""
    return _active_backend


def install_backend(backend) -> ArrayBackend:
    """Swap the process-wide backend, returning the previous one.

    Mirrors ``install_intern_pool`` / ``install_execution_stats`` so
    :class:`repro.engine.context.TaskContext` can carry the backend per task.
    """
    global _active_backend
    previous = _active_backend
    _active_backend = resolve_backend(backend)
    return previous
