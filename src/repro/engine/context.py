"""Per-task isolation of the process-wide execution state.

Three pieces of process-wide state feed the deterministic per-task counters
the benchmark harness diffs byte-for-byte: the value intern pool
(:mod:`repro.dataframe.interning`), the execution counter block
(:mod:`repro.dataframe.profiling`), and the SMT formula cache
(:mod:`repro.smt.solver`).  The serial harness resets all three before each
task; a process that *interleaves* several search kernels cannot reset --
each kernel needs its own copies, installed whenever that kernel runs.

:class:`TaskContext` packages them (plus the task's knowledge-base handle
and columnar backend) into one swappable unit.  A kernel
constructed and stepped inside ``with context.active():`` observes exactly
the state a dedicated, freshly-reset process would have observed, so its
counters (and, because caches only affect *work*, its synthesized programs)
are byte-identical to a whole-task run.  Activation is cheap -- three module
globals are swapped, no data is copied -- which is what makes stepping many
kernels round-robin in one process affordable.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..dataframe.backend import active_backend, install_backend, resolve_backend
from ..dataframe.interning import install_intern_pool
from ..dataframe.profiling import ExecutionStats, install_execution_stats
from ..smt.solver import install_formula_cache, new_formula_cache
from .kb import current_kb, install_kb


class TaskContext:
    """Isolated intern pool + execution counters + formula cache for one task.

    The context also carries the task's knowledge-base handle
    (:mod:`repro.engine.kb`): ``kb=None`` inherits whatever KB is active when
    the context is *created* (usually the process default set by the CLI or
    a pool initializer), so interleaved kernels keep their warm-start tier
    across install/uninstall swaps without any per-call plumbing.  The
    columnar execution backend (:mod:`repro.dataframe.backend`) travels the
    same way: ``backend=None`` inherits the creation-time active backend, a
    name ("python"/"numpy") or instance pins one, and either way the
    backend is installed alongside the other pieces so interleaved kernels
    with different backends never observe each other's choice.
    """

    __slots__ = (
        "execution",
        "intern_pool",
        "formula_cache",
        "kb",
        "backend",
        "_previous",
    )

    def __init__(self, kb=None, backend=None) -> None:
        self.execution = ExecutionStats()
        self.intern_pool: dict = {}
        self.formula_cache = new_formula_cache()
        self.kb = kb if kb is not None else current_kb()
        self.backend = (
            resolve_backend(backend) if backend is not None else active_backend()
        )
        self._previous = None

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Swap this context's state into the process globals."""
        if self._previous is not None:
            raise RuntimeError("TaskContext is already installed")
        self._previous = (
            install_execution_stats(self.execution),
            install_intern_pool(self.intern_pool),
            install_formula_cache(self.formula_cache),
            install_kb(self.kb),
            install_backend(self.backend),
        )

    def uninstall(self) -> None:
        """Restore the state that was installed before :meth:`install`."""
        if self._previous is None:
            raise RuntimeError("TaskContext is not installed")
        execution, pool, cache, kb, backend = self._previous
        self._previous = None
        install_execution_stats(execution)
        install_intern_pool(pool)
        install_formula_cache(cache)
        install_kb(kb)
        install_backend(backend)

    @contextmanager
    def active(self):
        """Run a block with this context's state installed."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()
