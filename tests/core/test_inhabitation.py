"""Tests for table-driven type inhabitation (Figure 13)."""

from repro.core import standard_library
from repro.core.arguments import Aggregation, ColumnList, ColumnRef, MutationExpr, Predicate
from repro.core.inhabitation import (
    MAX_INHABITANTS,
    aggregations,
    column_constants,
    column_pairs,
    column_subsets,
    enumerate_arguments,
    mutations,
    numeric_columns,
    predicates,
    string_columns,
)
from repro.dataframe import Table

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}
STUDENTS = Table(
    ["name", "age", "gpa"],
    [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]],
)


def params(name):
    return {param.name: param for param in COMPONENTS[name].value_params}


class TestPrimitives:
    def test_column_subsets(self):
        subsets = list(column_subsets(["a", "b", "c"], 1, 2))
        assert ColumnList(("a",)) in subsets
        assert ColumnList(("a", "b")) in subsets
        assert all(len(subset) <= 2 for subset in subsets)

    def test_column_pairs_are_ordered(self):
        pairs = list(column_pairs(["a", "b"]))
        assert ColumnList(("a", "b")) in pairs
        assert ColumnList(("b", "a")) in pairs

    def test_numeric_and_string_columns(self):
        assert numeric_columns(STUDENTS) == ["age", "gpa"]
        assert string_columns(STUDENTS) == ["name"]

    def test_column_constants_deduplicate(self):
        table = Table(["x"], [[1], [1], [2]])
        constants = column_constants(table, "x")
        assert [constant.value for constant in constants] == [1, 2]

    def test_constants_come_from_the_table(self):
        # The Const rule: only constants present in the table are enumerated.
        for predicate in predicates(STUDENTS):
            if predicate.column == "age":
                assert predicate.constant.value in (8, 18, 12)


class TestPredicates:
    def test_string_columns_only_get_equality(self):
        operators = {p.operator for p in predicates(STUDENTS) if p.column == "name"}
        assert operators == {"==", "!="}

    def test_numeric_columns_get_orderings(self):
        operators = {p.operator for p in predicates(STUDENTS) if p.column == "age"}
        assert {"<", ">", "<=", ">="} <= operators

    def test_predicates_are_callable(self):
        predicate = Predicate("age", ">", list(predicates(STUDENTS))[0].constant.__class__(10))
        assert predicate({"age": 12}) is True
        assert predicate({"age": 8}) is False


class TestAggregationsAndMutations:
    def test_aggregations_include_count_and_numeric_targets(self):
        options = list(aggregations(STUDENTS))
        assert Aggregation("n") in options
        assert Aggregation("sum", "age") in options
        assert Aggregation("mean", "gpa") in options
        # Strings cannot be summed.
        assert Aggregation("sum", "name") not in options

    def test_mutations_cover_column_pairs_and_aggregates(self):
        options = list(mutations(STUDENTS))
        assert any(
            m.operator == "/" and m.left_column == "age" and m.right_column == "gpa"
            for m in options
        )
        assert any(
            m.right_aggregate is not None and m.right_aggregate.function == "sum"
            for m in options
        )

    def test_mutation_evaluation(self):
        expr = MutationExpr("/", "age", right_aggregate=Aggregation("sum", "age"))
        from repro.components.dplyr import GroupContext

        context = GroupContext(STUDENTS, range(STUDENTS.n_rows))
        assert abs(expr({"age": 8}, context) - 8 / 38) < 1e-9


class TestDispatch:
    def test_gather_columns_have_at_least_two(self):
        options = list(enumerate_arguments(COMPONENTS["gather"], params("gather")["columns"], STUDENTS))
        assert options
        assert all(len(option) >= 2 for option in options)
        assert all(len(option) < STUDENTS.n_cols for option in options)

    def test_select_enumerates_proper_subsets(self):
        options = list(enumerate_arguments(COMPONENTS["select"], params("select")["columns"], STUDENTS))
        assert ColumnList(("name",)) in options
        assert all(len(option) < STUDENTS.n_cols for option in options)

    def test_spread_key_is_single_column(self):
        options = list(enumerate_arguments(COMPONENTS["spread"], params("spread")["key"], STUDENTS))
        assert ColumnRef("name") in options
        assert len(options) == STUDENTS.n_cols

    def test_separate_only_offers_string_columns(self):
        options = list(enumerate_arguments(COMPONENTS["separate"], params("separate")["column"], STUDENTS))
        assert options == [ColumnRef("name")]

    def test_filter_offers_predicates(self):
        options = list(enumerate_arguments(COMPONENTS["filter"], params("filter")["predicate"], STUDENTS))
        assert all(isinstance(option, Predicate) for option in options)
        assert any(option.column == "name" and option.operator == "==" for option in options)

    def test_enumeration_is_capped(self):
        wide = Table([f"c{i}" for i in range(12)], [list(range(12))])
        options = list(enumerate_arguments(COMPONENTS["select"], params("select")["columns"], wide))
        assert len(options) <= MAX_INHABITANTS
