"""The sanctioned public facade of the synthesizer.

Every consumer-facing path -- the HTTP service (:mod:`repro.service`), the
benchmark runner (:mod:`repro.benchmarks.runner`) and the example scripts --
goes through this module instead of constructing :class:`repro.core.Morpheus`
directly.  The facade owns three things:

* **Typed request/response dataclasses** with ``to_json()``/``from_json()``
  (:class:`SynthesisRequest`, :class:`SynthesisResult`,
  :class:`CandidateProgram`, :class:`SessionState`), so table-JSON
  (de)serialisation lives in exactly one place.
* **Interactive sessions** (:class:`SynthesisSession` via
  :func:`create_session`): an anytime search that can be advanced in bounded
  slices, streamed for candidates, *suspended and resumed* when the caller
  adds a distinguishing example -- the frontier position, the
  observational-equivalence store and every search counter carry over
  instead of restarting.
* **One-shot solving** (:func:`solve`), the request-in/result-out wrapper
  both the CLI-free quickstart path and the service's synchronous mode use.

Multi-example semantics
-----------------------

The search kernel enumerates against the *primary* (first) example: its
deduction engine prunes with respect to that example alone, which is sound
because any program consistent with every example is in particular
consistent with the first.  Later examples act as **validators**: every
program the kernel surfaces is executed against them, candidates that fail
are reported (``validated=False``) but do not consume the solution quota,
and the search simply continues.  Adding an example therefore never restarts
the search -- it revalidates the existing candidates and resumes the
suspended frontier via :meth:`~repro.core.frontier.SearchKernel.suspend` /
:meth:`~repro.core.frontier.SearchKernel.restore`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .components.errors import PRUNABLE_ERRORS
from .core.abstraction import SpecLevel
from .core.frontier import SearchKernel
from .core.hypothesis import (
    EvaluationFailure,
    Hypothesis,
    evaluate,
    hypothesis_size,
    render_program,
)
from .core.library import sql_library, standard_library
from .core.synthesizer import (
    Example,
    Morpheus,
    SynthesisConfig,
    SynthesisStats,
)
from .core.synthesizer import SynthesisResult as CoreSynthesisResult
from .dataframe.backend import BackendUnavailableError, resolve_backend
from .dataframe.cells import CellType
from .dataframe.compare import tables_match_for_synthesis
from .dataframe.table import Table
from .engine.context import TaskContext
from .engine.distributed import DistributedScheduler

#: Session lifecycle states (see DESIGN.md, "Synthesis as a service").
STATUS_CREATED = "created"
STATUS_SEARCHING = "searching"
STATUS_DONE = "done"
STATUS_EXHAUSTED = "exhausted"
STATUS_TIMEOUT = "timeout"

#: States in which a session has no more search work to do.
FINISHED_STATUSES = (STATUS_DONE, STATUS_EXHAUSTED, STATUS_TIMEOUT)

#: Component libraries a request may name.
LIBRARIES = {
    "standard": standard_library,
    "sql": sql_library,
}

#: Kernel steps per scheduling slice when a session is advanced without an
#: explicit ``max_steps`` (matches the engine's interleaving default).
DEFAULT_SLICE_STEPS = 64


class RequestError(ValueError):
    """A request payload could not be interpreted (the service maps it to 400)."""


# ----------------------------------------------------------------------
# Table / example / config (de)serialisation -- the one place it lives
# ----------------------------------------------------------------------
def table_to_json(table: Table) -> dict:
    """A JSON-able description of *table* (columns, rows, explicit types)."""
    return {
        "columns": list(table.columns),
        "col_types": [col_type.value for col_type in table.col_types],
        "rows": [list(row) for row in table.rows],
    }


def table_from_json(payload: dict) -> Table:
    """Rebuild a :class:`Table` from :func:`table_to_json` output.

    ``col_types`` is optional (types are inferred when absent, as in a
    hand-written request); malformed payloads raise :class:`RequestError`.
    """
    if not isinstance(payload, dict):
        raise RequestError(f"table payload must be an object, got {type(payload).__name__}")
    try:
        columns = payload["columns"]
        rows = payload["rows"]
    except KeyError as error:
        raise RequestError(f"table payload is missing {error.args[0]!r}") from error
    col_types = payload.get("col_types")
    if col_types is not None:
        try:
            col_types = [CellType(value) for value in col_types]
        except ValueError as error:
            raise RequestError(f"unknown column type: {error}") from error
    try:
        return Table(columns, rows, col_types=col_types)
    except Exception as error:
        raise RequestError(f"invalid table payload: {error}") from error


def config_to_json(config: SynthesisConfig) -> dict:
    """The configuration's knobs as a JSON-able dict (enums by value)."""
    payload = {f.name: getattr(config, f.name) for f in fields(config)}
    payload["spec_level"] = config.spec_level.value
    return payload


def config_from_json(payload: dict) -> SynthesisConfig:
    """Rebuild a :class:`SynthesisConfig`; unknown knobs raise :class:`RequestError`."""
    known = {f.name for f in fields(SynthesisConfig)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(f"unknown config knobs: {unknown}")
    knobs = dict(payload)
    if "spec_level" in knobs:
        try:
            knobs["spec_level"] = SpecLevel(knobs["spec_level"])
        except ValueError as error:
            raise RequestError(f"unknown spec_level: {error}") from error
    try:
        return SynthesisConfig(**knobs)
    except TypeError as error:
        raise RequestError(f"invalid config payload: {error}") from error


@dataclass(frozen=True)
class ExamplePayload:
    """One input-output example as submitted by a client."""

    inputs: Tuple[Table, ...]
    output: Table

    @staticmethod
    def make(inputs: Sequence[Table], output: Table) -> "ExamplePayload":
        return ExamplePayload(tuple(inputs), output)

    def to_example(self) -> Example:
        return Example(self.inputs, self.output)

    def to_json(self) -> dict:
        return {
            "inputs": [table_to_json(table) for table in self.inputs],
            "output": table_to_json(self.output),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ExamplePayload":
        if not isinstance(payload, dict):
            raise RequestError("example payload must be an object")
        inputs = payload.get("inputs")
        if not isinstance(inputs, list) or not inputs:
            raise RequestError("example payload needs a non-empty 'inputs' list")
        if "output" not in payload:
            raise RequestError("example payload is missing 'output'")
        return cls(
            tuple(table_from_json(table) for table in inputs),
            table_from_json(payload["output"]),
        )


@dataclass(frozen=True)
class SynthesisRequest:
    """A typed synthesis request (what ``POST /v1/sessions`` accepts)."""

    examples: Tuple[ExamplePayload, ...]
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    library: str = "standard"

    @staticmethod
    def from_tables(
        inputs: Sequence[Table],
        output: Table,
        config: Optional[SynthesisConfig] = None,
        library: str = "standard",
        **knobs,
    ) -> "SynthesisRequest":
        """Convenience constructor for the common one-example case.

        Extra keyword arguments are :class:`SynthesisConfig` knobs applied on
        top of *config* (or the defaults), e.g. ``timeout=30, top_k=2``.
        """
        config = config if config is not None else SynthesisConfig()
        if knobs:
            config = replace(config, **knobs)
        return SynthesisRequest(
            (ExamplePayload.make(inputs, output),), config=config, library=library
        )

    def component_library(self):
        try:
            return LIBRARIES[self.library]()
        except KeyError:
            raise RequestError(
                f"unknown library {self.library!r} (expected one of {sorted(LIBRARIES)})"
            ) from None

    def to_json(self) -> dict:
        return {
            "examples": [example.to_json() for example in self.examples],
            "config": config_to_json(self.config),
            "library": self.library,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SynthesisRequest":
        if not isinstance(payload, dict):
            raise RequestError("request payload must be an object")
        examples = payload.get("examples")
        if not isinstance(examples, list) or not examples:
            raise RequestError("request needs a non-empty 'examples' list")
        config = payload.get("config")
        library = payload.get("library", "standard")
        if library not in LIBRARIES:
            raise RequestError(
                f"unknown library {library!r} (expected one of {sorted(LIBRARIES)})"
            )
        return cls(
            tuple(ExamplePayload.from_json(example) for example in examples),
            config=config_from_json(config) if config is not None else SynthesisConfig(),
            library=library,
        )


@dataclass(frozen=True)
class CandidateProgram:
    """One synthesized program, in discovery (cost) order."""

    #: Rendered R-style source text.
    program: str
    #: Number of component applications.
    size: int
    #: 1-based discovery rank.
    rank: int
    #: True when the program is consistent with *every* example known at the
    #: time of reporting (adding an example revalidates earlier candidates).
    validated: bool = True

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "size": self.size,
            "rank": self.rank,
            "validated": self.validated,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CandidateProgram":
        return cls(
            program=payload["program"],
            size=payload["size"],
            rank=payload["rank"],
            validated=payload.get("validated", True),
        )


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a facade-level synthesis run (JSON-able).

    The stats-rich internal result (:class:`repro.core.SynthesisResult`)
    remains available through :meth:`SynthesisSession.solve` for harnesses
    that diff raw counters; this is the wire-format summary.
    """

    solved: bool
    status: str
    candidates: Tuple[CandidateProgram, ...]
    elapsed: float
    counters: Dict[str, float]

    @property
    def program(self) -> Optional[str]:
        """The first validated program's source text (None when unsolved)."""
        for candidate in self.candidates:
            if candidate.validated:
                return candidate.program
        return None

    def to_json(self) -> dict:
        return {
            "solved": self.solved,
            "status": self.status,
            "candidates": [candidate.to_json() for candidate in self.candidates],
            "elapsed": self.elapsed,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SynthesisResult":
        return cls(
            solved=payload["solved"],
            status=payload["status"],
            candidates=tuple(
                CandidateProgram.from_json(candidate)
                for candidate in payload.get("candidates", ())
            ),
            elapsed=payload.get("elapsed", 0.0),
            counters=dict(payload.get("counters", {})),
        )


@dataclass(frozen=True)
class SessionState:
    """A point-in-time description of a session (what ``GET`` endpoints return)."""

    status: str
    examples: int
    target: int
    candidates: Tuple[CandidateProgram, ...]
    counters: Dict[str, float]

    @property
    def solved(self) -> bool:
        return any(candidate.validated for candidate in self.candidates)

    def to_json(self) -> dict:
        return {
            "status": self.status,
            "examples": self.examples,
            "target": self.target,
            "candidates": [candidate.to_json() for candidate in self.candidates],
            "counters": dict(self.counters),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SessionState":
        return cls(
            status=payload["status"],
            examples=payload["examples"],
            target=payload["target"],
            candidates=tuple(
                CandidateProgram.from_json(candidate)
                for candidate in payload.get("candidates", ())
            ),
            counters=dict(payload.get("counters", {})),
        )


# ----------------------------------------------------------------------
# Interactive sessions
# ----------------------------------------------------------------------
class SynthesisSession:
    """An anytime, resumable synthesis search for one request.

    The session owns a :class:`~repro.engine.context.TaskContext` (private
    intern pool, execution counters and formula cache -- the same isolation
    the interleaved benchmark scheduler uses) and a
    :class:`~repro.core.frontier.SearchKernel` that is constructed, stepped,
    suspended and restored strictly inside that context.  It is
    single-threaded by design: the service serialises all stepping onto one
    scheduler thread, and :meth:`advance` doubles as a
    :meth:`repro.engine.parallel.KernelInterleaver.add_driver` driver.

    Lifecycle: ``created`` -> ``searching`` -> ``done`` (quota of validated
    programs met) | ``exhausted`` (frontier drained) | ``timeout`` (active
    budget spent).  :meth:`add_example` moves any of the finished states back
    to ``searching`` when the surviving candidates no longer meet the quota.
    """

    def __init__(self, request: SynthesisRequest, library=None, kb=None) -> None:
        if not request.examples:
            raise RequestError("a session needs at least one example")
        self.request = request
        try:
            backend = resolve_backend(request.config.backend)
        except (ValueError, BackendUnavailableError) as error:
            raise RequestError(str(error)) from error
        # *kb* attaches a warm-start knowledge base (repro.engine.kb) to the
        # session's context; None inherits the process default, if any.
        self.context = TaskContext(kb=kb, backend=backend)
        self.status = STATUS_CREATED
        self._examples: List[Example] = [
            payload.to_example() for payload in request.examples
        ]
        self._target = max(1, request.config.top_k)
        self._stats = SynthesisStats()
        self._candidates: List[CandidateProgram] = []
        self._programs: List[Hypothesis] = []
        self._drained = 0
        self._steps_before = 0
        self._active_before = 0.0
        self._frontier_peak = 0
        self._resumes = 0
        with self.context.active():
            self._morpheus = Morpheus(
                library=library if library is not None else request.component_library(),
                config=request.config,
                _sanctioned=True,
            )
            started = time.perf_counter()
            self._kernel = SearchKernel(
                self._examples[0],
                self._morpheus.config,
                self._morpheus.library,
                self._morpheus.cost_model,
                self._stats,
                k=self._target,
            )
            self._kernel.active_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    @property
    def examples(self) -> Tuple[Example, ...]:
        return tuple(self._examples)

    @property
    def candidates(self) -> Tuple[CandidateProgram, ...]:
        return tuple(self._candidates)

    @property
    def target(self) -> int:
        """The requested number of validated programs (``config.top_k``)."""
        return self._target

    @property
    def validated_count(self) -> int:
        return sum(1 for candidate in self._candidates if candidate.validated)

    @property
    def finished(self) -> bool:
        return self.status in FINISHED_STATUSES

    @property
    def active_seconds(self) -> float:
        """Seconds of kernel work charged to this session (across resumes)."""
        return self._active_before + self._kernel.active_seconds

    @property
    def steps(self) -> int:
        """Kernel steps taken by this session (across resumes)."""
        return self._steps_before + self._kernel.steps_taken

    @property
    def resumes(self) -> int:
        """How many times the frontier was suspended and restored."""
        return self._resumes

    # ------------------------------------------------------------------
    def advance(self, max_steps: int = DEFAULT_SLICE_STEPS) -> bool:
        """Run one bounded scheduling slice; True when the session finished.

        The per-session budget (``config.timeout``) is charged against
        *active* time -- the seconds this session's own steps consumed --
        exactly like interleaved benchmark tasks, so many sessions sharing
        one scheduler neither starve nor subsidise one another.
        """
        if self.finished:
            return True
        if self.request.config.distributed:
            # Burst routing: the distributed scheduler's bulk-synchronous
            # rounds cannot be sliced at step granularity, and its
            # solve/timeout decision is a pure function of the deterministic
            # step budget, so one drive always reaches a finished state.
            # The whole burst runs under the caller's work lock.
            self._solve_distributed()
            return self.finished
        with self.context.active():
            budget = self.request.config.timeout
            remaining = None if budget is None else budget - self.active_seconds
            step_budget = self.request.config.max_steps
            if step_budget is not None:
                max_steps = min(max_steps, step_budget - self.steps)
            if (remaining is None or remaining > 0) and max_steps > 0:
                deadline = None if remaining is None else time.monotonic() + remaining
                self._kernel.run(deadline=deadline, max_steps=max_steps)
            self._drain()
            self._update_status()
        return self.finished

    def _update_status(self) -> None:
        budget = self.request.config.timeout
        step_budget = self.request.config.max_steps
        if self.validated_count >= self._target:
            self.status = STATUS_DONE
        elif self._kernel.exhausted:
            self.status = STATUS_EXHAUSTED
        elif budget is not None and self.active_seconds >= budget:
            self.status = STATUS_TIMEOUT
        elif step_budget is not None and self.steps >= step_budget:
            # A spent step budget is a deterministic timeout: the search
            # stopped at a host-independent position rather than a clock.
            self.status = STATUS_TIMEOUT
        else:
            self.status = STATUS_SEARCHING

    def _drain(self) -> None:
        """Pull newly found kernel solutions; validate against later examples."""
        kernel = self._kernel
        while self._drained < len(kernel.solutions):
            program = kernel.solutions[self._drained]
            self._drained += 1
            validated = all(
                self._passes(program, example) for example in self._examples[1:]
            )
            self._programs.append(program)
            self._candidates.append(
                CandidateProgram(
                    program=render_program(program),
                    size=hypothesis_size(program),
                    rank=len(self._candidates) + 1,
                    validated=validated,
                )
            )
            if not validated:
                # The candidate overfits the primary example; it must not
                # consume the quota of validated programs -- widen the
                # kernel's own quota so the enumeration keeps going.
                kernel.k += 1

    def _passes(self, program: Hypothesis, example: Example) -> bool:
        """CHECK(p, E) against a validation example.

        The fingerprint-keyed execution cache is shared (it keys on input
        table content, so entries for different examples never collide); the
        node-keyed evaluation memo is *not* -- it is only sound for the
        primary example's inputs.
        """
        try:
            actual = evaluate(
                program, example.inputs,
                exec_cache=self._kernel.engine.execution_cache,
            )
        except (EvaluationFailure, *PRUNABLE_ERRORS):
            return False
        return tables_match_for_synthesis(actual, example.output)

    # ------------------------------------------------------------------
    def add_example(self, example: Union[ExamplePayload, Example, tuple]) -> SessionState:
        """Add a distinguishing example and *resume* the suspended search.

        The kernel is suspended (frontier snapshot at hypothesis granularity,
        in-flight OE admissions withdrawn), existing candidates are
        revalidated against the new example, and a successor kernel is
        restored onto the same frontier position, observational-equivalence
        store and counter block.  Nothing is re-enumerated: states the
        suspended search already merged stay merged, the counters continue
        monotonically, and the solution quota is recomputed from the
        candidates that still validate.
        """
        coerced = self._coerce(example)
        with self.context.active():
            kernel = self._kernel
            payload = kernel.suspend()
            self._steps_before += kernel.steps_taken
            self._active_before += kernel.active_seconds
            self._frontier_peak = max(self._frontier_peak, kernel.frontier.peak)
            self._examples.append(coerced)
            self._candidates = [
                replace(
                    candidate,
                    validated=candidate.validated and self._passes(program, coerced),
                )
                for candidate, program in zip(self._candidates, self._programs)
            ]
            needed = self._target - self.validated_count
            payload["k"] = max(0, needed)
            self._kernel = SearchKernel.restore(
                payload,
                self._examples[0],
                self._morpheus.config,
                self._morpheus.library,
                self._morpheus.cost_model,
                self._stats,
                oe_store=kernel.oe_store,
            )
            # The successor kernel's solution list starts empty; the session
            # keeps the already-drained candidates itself.
            self._drained = 0
            self._resumes += 1
            self._update_status()
        return self.state()

    def snapshot_payload(self) -> dict:
        """The kernel's JSON-able resume state (see ``SearchKernel.snapshot``).

        Read-only -- the session keeps running.  Must not be called while
        another thread is stepping the session (the service's work lock
        serialises the two).
        """
        with self.context.active():
            return self._kernel.snapshot()

    @staticmethod
    def _coerce(example) -> Example:
        if isinstance(example, Example):
            return example
        if isinstance(example, ExamplePayload):
            return example.to_example()
        inputs, output = example
        return Example.make(inputs, output)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """The session's cumulative (resume-surviving) search counters."""
        stats = self._stats
        execution = self.context.execution
        kernel = self._kernel
        return {
            "steps": self.steps,
            "resumes": self._resumes,
            "active_seconds": round(self.active_seconds, 6),
            "frontier_peak": max(self._frontier_peak, kernel.frontier.peak),
            "hypotheses_expanded": stats.hypotheses_expanded,
            "hypotheses_enqueued": stats.hypotheses_enqueued,
            "sketches_generated": stats.sketches_generated,
            "sketches_rejected": stats.sketches_rejected,
            "programs_checked": stats.programs_checked,
            "partial_programs": stats.completion.partial_programs,
            "pruned_partial": stats.completion.pruned_partial,
            "oe_candidates": stats.completion.oe_candidates,
            "oe_merged": stats.completion.oe_merged,
            "sibling_batches": stats.completion.sibling_batches,
            "batched_fills": stats.completion.batched_fills,
            "smt_calls": stats.deduction.smt_calls,
            "smt_sessions": stats.deduction.smt_sessions,
            "smt_session_reuse": stats.deduction.smt_session_reuse,
            "prescreen_decided": stats.deduction.prescreen_decided,
            "prescreen_fallback": stats.deduction.prescreen_fallback,
            "lemma_prunes": stats.deduction.lemma_prunes,
            "lemmas_learned": stats.deduction.lemmas_learned,
            "tables_built": execution.tables_built,
            "cells_interned": execution.cells_interned,
            "fingerprint_hits": execution.fingerprint_hits,
            "exec_cache_hits": execution.exec_cache.hits,
            "compare_fastpath_hits": execution.compare_fastpath_hits,
        }

    def state(self) -> SessionState:
        return SessionState(
            status=self.status,
            examples=len(self._examples),
            target=self._target,
            candidates=self.candidates,
            counters=self.counters(),
        )

    def result(self) -> SynthesisResult:
        return SynthesisResult(
            solved=self.validated_count > 0,
            status=self.status,
            candidates=self.candidates,
            elapsed=self.active_seconds,
            counters=self.counters(),
        )

    # ------------------------------------------------------------------
    def solve(self) -> CoreSynthesisResult:
        """Drive the session to completion; return the stats-rich core result.

        Single-example sessions reproduce ``Morpheus.synthesize`` exactly
        (same wall-clock deadline handling, same counter windows -- the
        benchmark harness diffs these byte-for-byte across schedulers);
        multi-example sessions keep searching until a candidate passes every
        example or the budget expires.

        Distributed configurations (``config.distributed``) route through
        :class:`~repro.engine.distributed.DistributedScheduler` instead: the
        frontier is fanned over a worker pool and the solve/timeout decision
        is a function of the deterministic step budget rather than the wall
        clock.  Multi-example validation applies identically, but the
        widen-the-quota loop is not iterated -- validators filter the
        returned candidates without extending the search.
        """
        if self.request.config.distributed:
            result = self._solve_distributed()
            return self._filter_validated(result)
        started = time.monotonic()
        timeout = self.request.config.timeout
        deadline = started + timeout if timeout is not None else None
        step_budget = self.request.config.max_steps
        with self.context.active():
            while True:
                remaining_steps = (
                    None if step_budget is None else step_budget - self.steps
                )
                if remaining_steps is not None and remaining_steps <= 0:
                    break
                self._kernel.run(deadline=deadline, max_steps=remaining_steps)
                self._drain()
                if self.validated_count >= self._target or self._kernel.exhausted:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    break
                if step_budget is not None and self.steps >= step_budget:
                    break
            self._update_status()
            if self.status == STATUS_SEARCHING:
                # The only way out of the loop while still searching is the
                # wall-clock deadline (active time may lag wall time).
                self.status = STATUS_TIMEOUT
            result = self._morpheus.finalize(
                self._kernel, elapsed=time.monotonic() - started
            )
        return self._filter_validated(result)

    def _filter_validated(self, result: CoreSynthesisResult) -> CoreSynthesisResult:
        if len(self._examples) > 1:
            # The core result reports programs consistent with *every*
            # example, not just the primary one the kernel enumerates on.
            validated = [
                program
                for candidate, program in zip(self._candidates, self._programs)
                if candidate.validated
            ]
            result.programs = validated
            result.program = validated[0] if validated else None
            result.solved = bool(validated)
        return result

    def _solve_distributed(self) -> CoreSynthesisResult:
        """One distributed burst: fan the frontier over the worker pool.

        The scheduler drives the session's kernel to a decision under the
        deterministic step budget (:meth:`DistributedScheduler.step_budget`),
        never the wall clock, so the resulting status cannot flip between
        ``timeout`` and the others on an oversubscribed host.  Always leaves
        the session in a finished state.
        """
        with self.context.active():
            kb = self.context.kb
            scheduler = DistributedScheduler(
                self.request.config,
                library=self._morpheus.library,
                kb_path=kb.path if kb is not None else None,
            )
            result = scheduler.drive(self._examples[0], self._kernel)
            self._drain()
            if self.validated_count >= self._target:
                self.status = STATUS_DONE
            elif scheduler.frontier_exhausted:
                self.status = STATUS_EXHAUSTED
            else:
                self.status = STATUS_TIMEOUT
        return result


def create_session(
    request: SynthesisRequest, library=None, kb=None
) -> SynthesisSession:
    """Create an interactive synthesis session (the sanctioned entry point).

    *library* optionally overrides the component library object (the request
    names one of :data:`LIBRARIES` otherwise).  *kb* attaches a warm-start
    :class:`~repro.engine.kb.KnowledgeBase` (None inherits the process
    default installed via :func:`repro.engine.kb.set_default_kb`).
    """
    return SynthesisSession(request, library=library, kb=kb)


def solve(request: SynthesisRequest, library=None, kb=None) -> SynthesisResult:
    """One-shot facade: drive *request* to completion, return the JSON-able result."""
    session = create_session(request, library=library, kb=kb)
    core = session.solve()
    result = session.result()
    # ``solve`` ran under a wall clock, which is the elapsed callers expect.
    return replace(result, elapsed=core.elapsed)
