"""Tseitin conversion of formulas to CNF.

The SAT engine (:mod:`repro.smt.sat`) works on clauses over propositional
variables numbered from 1; theory atoms are mapped to propositional variables
and the mapping is returned so the DPLL(T) driver can translate boolean
assignments back into conjunctions of theory literals.

The encoder is *incremental*: a :class:`CNF` instance keeps a structural memo
from subformulas to their defining literals, so encoding a second formula
into the same instance reuses every shared subterm (atoms, conjunctions,
disjunctions) instead of re-deriving fresh variables and clauses.  The
incremental :class:`~repro.smt.solver.Solver` relies on this to keep one
persistent clause database across push/pop scopes and thousands of
near-identical assumption queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .terms import And, Atom, BoolVal, Formula, Not, Or


@dataclass
class CNF:
    """A CNF instance plus the mapping from atoms to propositional variables."""

    clauses: List[List[int]] = field(default_factory=list)
    num_vars: int = 0
    atom_of_var: Dict[int, Atom] = field(default_factory=dict)
    var_of_atom: Dict[Atom, int] = field(default_factory=dict)
    #: True when the input formula was trivially false (e.g. contained FALSE
    #: as a top-level conjunct); the clause set then contains the empty clause.
    trivially_false: bool = False
    #: Structural memo: subformula -> defining literal.  Encoding the same
    #: (structurally equal) subformula twice returns the same literal without
    #: adding new variables or clauses.
    literal_of: Dict[Formula, int] = field(default_factory=dict)

    def new_var(self) -> int:
        """Allocate a fresh propositional variable."""
        self.num_vars += 1
        return self.num_vars

    def var_for_atom(self, atom: Atom) -> int:
        """The propositional variable standing for *atom* (allocated on demand)."""
        if atom not in self.var_of_atom:
            var = self.new_var()
            self.var_of_atom[atom] = var
            self.atom_of_var[var] = atom
        return self.var_of_atom[atom]

    def add_clause(self, literals: List[int]) -> None:
        """Add a clause (a list of non-zero literals)."""
        self.clauses.append(list(literals))

    # ------------------------------------------------------------------
    def encode(self, formula: Formula) -> int:
        """Encode *formula*, returning a literal equivalent to it.

        The encoding is definitional in both directions (each ``And``/``Or``
        node gets a variable constrained to be *equivalent* to the operand
        combination), so the returned literal can be asserted, assumed, or
        left free: a model of the clause set assigns it exactly the truth
        value of the formula.  Nothing is asserted here -- callers decide
        whether the root literal becomes a unit clause (:func:`tseitin`) or
        an assumption (:meth:`repro.smt.solver.Solver.check_assumptions`).
        """
        cached = self.literal_of.get(formula)
        if cached is not None:
            return cached
        if isinstance(formula, BoolVal):
            var = self.new_var()
            self.add_clause([var] if formula.value else [-var])
            literal = var
        elif isinstance(formula, Atom):
            literal = self.var_for_atom(formula)
        elif isinstance(formula, Not):
            literal = -self.encode(formula.operand)
        elif isinstance(formula, And):
            literals = [self.encode(operand) for operand in formula.operands]
            out = self.new_var()
            for operand_literal in literals:
                self.add_clause([-out, operand_literal])
            self.add_clause([out] + [-operand_literal for operand_literal in literals])
            literal = out
        elif isinstance(formula, Or):
            literals = [self.encode(operand) for operand in formula.operands]
            out = self.new_var()
            for operand_literal in literals:
                self.add_clause([-operand_literal, out])
            self.add_clause([-out] + literals)
            literal = out
        else:
            raise TypeError(f"cannot encode {formula!r}")
        self.literal_of[formula] = literal
        return literal


def tseitin(formula: Formula) -> CNF:
    """Encode *formula* into CNF using the Tseitin transformation.

    Every subformula gets a definitional variable; the root variable is
    asserted as a unit clause.
    """
    cnf = CNF()
    root = cnf.encode(formula)
    cnf.add_clause([root])
    return cnf
