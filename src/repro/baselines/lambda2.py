"""A list-combinator synthesizer (the lambda2 baseline).

Section 9 of the paper compares Morpheus against lambda2 [Feser et al.,
PLDI 2015], a synthesizer of higher-order functional programs over lists and
trees.  Tables are encoded as lists of rows (each row a list of cells) and
the synthesizer composes ``map`` / ``filter`` / ``sort`` combinators with
enumerated first-order functions.  As the paper reports, this program class
covers simple projections and selections but none of the table reshaping,
grouping or consolidation benchmarks.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..dataframe.table import Table

#: A table encoded the way lambda2 sees it: a list of rows.
ListTable = List[List[object]]


def table_to_lists(table: Table) -> ListTable:
    """Encode a :class:`Table` as a list of rows (lambda2's view of the data)."""
    return [list(row) for row in table.rows]


@dataclass(frozen=True)
class Combinator:
    """One step of a lambda2 program: a named combinator plus its argument."""

    name: str
    description: str
    function: Callable[[ListTable], ListTable]

    def __call__(self, rows: ListTable) -> ListTable:
        return self.function(rows)


@dataclass
class Lambda2Result:
    """Outcome of a lambda2 synthesis run."""

    solved: bool
    program: Optional[Tuple[Combinator, ...]]
    elapsed: float
    programs_tried: int = 0

    def render(self) -> str:
        """The synthesized pipeline as text."""
        if not self.program:
            return "<no program found>"
        return " . ".join(step.description for step in self.program)


@dataclass
class Lambda2Synthesizer:
    """Enumerative synthesis of ``map``/``filter``/``sort`` pipelines."""

    max_depth: int = 3
    timeout: Optional[float] = 30.0

    def synthesize(self, inputs: Sequence[Table], output: Table) -> Lambda2Result:
        """Search for a combinator pipeline mapping the first input to the output."""
        started = time.monotonic()
        deadline = started + self.timeout if self.timeout is not None else None
        source = table_to_lists(inputs[0])
        target = table_to_lists(output)
        combinators = list(self._combinators(source))
        tried = 0

        for depth in range(1, self.max_depth + 1):
            for pipeline in itertools.product(combinators, repeat=depth):
                if deadline is not None and time.monotonic() > deadline:
                    return Lambda2Result(False, None, time.monotonic() - started, tried)
                tried += 1
                rows = source
                try:
                    for step in pipeline:
                        rows = step(rows)
                except (IndexError, TypeError):
                    continue
                if _rows_equal(rows, target):
                    return Lambda2Result(True, tuple(pipeline), time.monotonic() - started, tried)
        return Lambda2Result(False, None, time.monotonic() - started, tried)

    # ------------------------------------------------------------------
    def _combinators(self, source: ListTable):
        """First-order functions enumerated from the input (lambda2's hypothesis space)."""
        width = len(source[0]) if source else 0

        # map with a projection function: keep a subset of the columns.
        for size in range(1, width + 1):
            for indices in itertools.combinations(range(width), size):
                if len(indices) == width:
                    continue
                yield Combinator(
                    "map",
                    f"map (project {list(indices)})",
                    lambda rows, idx=indices: [[row[i] for i in idx] for row in rows],
                )

        # filter with a comparison predicate on one column.
        constants = set()
        for row in source:
            for index, value in enumerate(row):
                constants.add((index, value))
        for (index, constant) in sorted(constants, key=repr):
            for name, predicate in (
                ("==", lambda a, b: a == b),
                ("!=", lambda a, b: a != b),
                (">", lambda a, b: _is_number(a) and _is_number(b) and a > b),
                ("<", lambda a, b: _is_number(a) and _is_number(b) and a < b),
            ):
                yield Combinator(
                    "filter",
                    f"filter (col{index} {name} {constant!r})",
                    lambda rows, i=index, c=constant, p=predicate: [
                        row for row in rows if p(row[i], c)
                    ],
                )

        # sort by one column.
        for index in range(width):
            yield Combinator(
                "sort",
                f"sortBy col{index}",
                lambda rows, i=index: sorted(rows, key=lambda row: (repr(type(row[i])), row[i])),
            )


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _rows_equal(left: ListTable, right: ListTable) -> bool:
    if len(left) != len(right):
        return False
    return sorted(map(repr, left)) == sorted(map(repr, right))
