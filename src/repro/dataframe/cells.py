"""Cell values and cell types.

The paper (Definition 1) restricts cell types to ``num`` and ``string``.  We
mirror that restriction: every cell of a :class:`repro.dataframe.Table` holds
either a number (``int`` or ``float``) or a string.  ``None`` is additionally
accepted as a missing value (``NA`` in R) because several tidyr operations --
most notably ``spread`` on sparse key/value pairs -- naturally introduce it.
"""

from __future__ import annotations

import enum
import math
from fractions import Fraction
from typing import Iterable, Optional, Union

from .errors import CellTypeError

#: The Python types a cell may hold.
CellValue = Union[int, float, str, None]

#: Relative tolerance used when comparing floating point cells.
FLOAT_RELATIVE_TOLERANCE = 1e-6

#: Absolute tolerance used when comparing floating point cells.
FLOAT_ABSOLUTE_TOLERANCE = 1e-9


class CellType(enum.Enum):
    """The type of a table column (Definition 1 of the paper)."""

    NUM = "num"
    STR = "string"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def is_numeric(value: CellValue) -> bool:
    """Return ``True`` if *value* is a number (bools are not numbers here)."""
    return isinstance(value, (int, float, Fraction)) and not isinstance(value, bool)


def is_missing(value: CellValue) -> bool:
    """Return ``True`` if *value* represents a missing cell (R's ``NA``)."""
    return value is None


def infer_cell_type(value: CellValue) -> Optional[CellType]:
    """Infer the :class:`CellType` of a single value.

    Returns ``None`` for missing values because they are compatible with any
    column type.
    """
    if is_missing(value):
        return None
    if is_numeric(value):
        return CellType.NUM
    if isinstance(value, str):
        return CellType.STR
    raise CellTypeError(f"unsupported cell value {value!r} of type {type(value).__name__}")


def infer_column_type(values: Iterable[CellValue]) -> CellType:
    """Infer the type of a column from its values.

    Missing values are ignored.  A column whose values are all missing is
    typed as ``string`` (matching R's behaviour for logical ``NA`` columns
    once coerced into a character frame).  Mixing numbers and strings raises
    :class:`CellTypeError`.
    """
    inferred: Optional[CellType] = None
    for value in values:
        value_type = infer_cell_type(value)
        if value_type is None:
            continue
        if inferred is None:
            inferred = value_type
        elif inferred is not value_type:
            raise CellTypeError(
                f"column mixes {inferred.value} and {value_type.value} values"
            )
    return inferred if inferred is not None else CellType.STR


def coerce_value(value: CellValue, cell_type: CellType) -> CellValue:
    """Coerce *value* into *cell_type*, raising :class:`CellTypeError` on mismatch."""
    if is_missing(value):
        return None
    if cell_type is CellType.NUM:
        if is_numeric(value):
            return normalize_number(value)
        raise CellTypeError(f"expected a numeric cell, got {value!r}")
    if isinstance(value, str):
        return value
    if is_numeric(value):
        # R silently prints numbers inside character columns; we do the same
        # coercion explicitly so that e.g. `unite` can join a numeric column
        # with a string column.
        return format_number(value)
    raise CellTypeError(f"expected a string cell, got {value!r}")


def normalize_number(value: Union[int, float, Fraction]) -> Union[int, float]:
    """Normalise a numeric cell: integral floats become ints, Fractions collapse."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return float(value)
    if isinstance(value, float) and value.is_integer() and math.isfinite(value):
        return int(value)
    return value


def format_number(value: Union[int, float]) -> str:
    """Render a number the way R renders it inside a character column."""
    normalized = normalize_number(value)
    if isinstance(normalized, int):
        return str(normalized)
    return repr(normalized)


def values_equal(left: CellValue, right: CellValue) -> bool:
    """Compare two cell values, using a tolerance for floats."""
    if is_missing(left) or is_missing(right):
        return is_missing(left) and is_missing(right)
    if is_numeric(left) and is_numeric(right):
        return math.isclose(
            float(left),
            float(right),
            rel_tol=FLOAT_RELATIVE_TOLERANCE,
            abs_tol=FLOAT_ABSOLUTE_TOLERANCE,
        )
    return left == right


def value_sort_key(value: CellValue):
    """A total order over cell values used by ``arrange`` and canonicalisation.

    Missing values sort first, then numbers, then strings.
    """
    if is_missing(value):
        return (0, 0)
    if is_numeric(value):
        return (1, float(value))
    return (2, str(value))


def format_value(value: CellValue) -> str:
    """Render a cell for display (markdown / plain text tables)."""
    if is_missing(value):
        return "NA"
    if is_numeric(value):
        return format_number(value)
    return str(value)


def cell_token(value: CellValue) -> str:
    """A type-tagged canonical string for one cell.

    Two cells share a token exactly when :func:`values_equal` considers them
    equal *at zero float distance*: numbers are rendered through
    :func:`format_number` (so ``5`` and ``5.0`` coincide) and tagged apart
    from strings (so the string ``"5"`` and the number ``5`` do not).  Table
    fingerprints and comparison digests are built from these tokens.
    """
    if is_missing(value):
        return "\x00"
    if is_numeric(value):
        return "n" + format_number(value)
    return "s" + value


def column_multiset_key(values: Iterable[CellValue]) -> tuple:
    """A canonical multiset of one column's values (float-tolerant).

    Floats are rounded to six decimal places and integral floats collapse to
    ints, so columns whose values differ only by sub-tolerance float noise
    share a key.  Used by column alignment during output comparison.
    """
    canonical = []
    for value in values:
        if isinstance(value, float):
            value = round(value, 6)
            if value.is_integer():
                value = int(value)
        canonical.append(value)
    return tuple(sorted(canonical, key=value_sort_key))
