"""The public SMT solver facade (lazy DPLL(T) over LIA).

:class:`Solver` mimics the small slice of the z3 API the paper's deduction
engine needs: assert formulas, ask for satisfiability, read back a model.

Two solving strategies are used:

* If the asserted formula is a pure conjunction of atoms (the common case for
  hypothesis specifications over a single input table), the LIA theory solver
  is called directly.
* Otherwise the boolean structure is Tseitin-encoded, the SAT engine
  enumerates boolean models, and each model's theory literals are checked by
  the LIA solver; theory conflicts are returned to the SAT engine as blocking
  clauses (lazy SMT).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine.cache import CacheStats, LRUCache
from .cnf import tseitin
from .lia import TheoryResult, check_conjunction
from .sat import SatSolver
from .terms import And, Atom, BoolVal, Formula, Or, conjoin

#: Upper bound on theory-refinement rounds of the lazy loop; reaching it is
#: treated as SAT (sound for a deduction engine that prunes only on UNSAT).
MAX_THEORY_ROUNDS = 200

#: Default bound of the process-wide formula -> verdict cache.
FORMULA_CACHE_SIZE = 16384

#: Process-wide memo of ``check`` verdicts.  Formulas are immutable and
#: hashable, and satisfiability is a pure function of the formula, so results
#: can be shared across Solver instances (and across synthesis runs -- the
#: deduction engine asks near-identical queries for structurally similar
#: hypotheses on every benchmark).  Each entry is a ``(result, model)`` pair.
_formula_cache: "LRUCache[Formula, Tuple[CheckResult, Optional[Dict[str, int]]]]" = None  # set below


def formula_cache_stats() -> CacheStats:
    """Hit/miss counters of the process-wide formula cache."""
    return _formula_cache.stats


def clear_formula_cache() -> None:
    """Drop all cached verdicts and reset the counters (mainly for tests)."""
    _formula_cache.clear()
    _formula_cache.stats.clear()


def configure_formula_cache(maxsize: Optional[int]) -> None:
    """Resize the formula cache (``0`` disables it, ``None`` unbounds it)."""
    global _formula_cache
    _formula_cache = LRUCache(maxsize=maxsize)


configure_formula_cache(FORMULA_CACHE_SIZE)


class CheckResult(enum.Enum):
    """Result of :meth:`Solver.check`."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Solver:
    """An incremental-in-spirit SMT solver for quantifier-free LIA."""

    def __init__(self) -> None:
        self._assertions: List[Formula] = []
        self._model: Optional[Dict[str, int]] = None

    def add(self, *formulas: Formula) -> None:
        """Assert one or more formulas."""
        self._assertions.extend(formulas)

    def assertions(self) -> Tuple[Formula, ...]:
        """The formulas asserted so far."""
        return tuple(self._assertions)

    def reset(self) -> None:
        """Remove all assertions."""
        self._assertions.clear()
        self._model = None

    def model(self) -> Optional[Dict[str, int]]:
        """The model found by the last successful :meth:`check`."""
        return self._model

    # ------------------------------------------------------------------
    def check(self) -> CheckResult:
        """Decide satisfiability of the conjunction of all assertions.

        Verdicts are memoised in the process-wide formula cache: two solver
        instances asserting the same (structurally equal) formula share one
        underlying satisfiability check.
        """
        self._model = None
        formula = conjoin(self._assertions)
        if isinstance(formula, BoolVal):
            return CheckResult.SAT if formula.value else CheckResult.UNSAT

        cached = _formula_cache.get(formula)
        if cached is not None:
            result, model = cached
            self._model = dict(model) if model is not None else None
            return result
        result = self._check_uncached(formula)
        model = dict(self._model) if self._model is not None else None
        _formula_cache.put(formula, (result, model))
        return result

    def _check_uncached(self, formula: Formula) -> CheckResult:
        flat = _as_conjunction_of_atoms(formula)
        if flat is not None:
            result = check_conjunction(flat)
            return self._finish(result)

        clausal = _as_clausal_conjunction(formula)
        if clausal is not None:
            atoms, clauses = clausal
            result = _check_clausal(atoms, clauses)
            if result is None:
                return CheckResult.UNSAT
            return self._finish(result)
        return self._solve_lazy(formula)

    # ------------------------------------------------------------------
    def _finish(self, result: TheoryResult) -> CheckResult:
        if not result.satisfiable:
            return CheckResult.UNSAT
        self._model = result.model
        return CheckResult.SAT

    def _solve_lazy(self, formula: Formula) -> CheckResult:
        cnf = tseitin(formula)
        sat = SatSolver(cnf.num_vars, cnf.clauses)
        for _ in range(MAX_THEORY_ROUNDS):
            assignment = sat.solve()
            if assignment is None:
                return CheckResult.UNSAT
            atoms: List[Atom] = []
            disequalities: List[Atom] = []
            blocking: List[int] = []
            for variable, atom in cnf.atom_of_var.items():
                value = assignment.get(variable)
                if value is None:
                    continue
                blocking.append(-variable if value else variable)
                if value:
                    atoms.append(atom)
                elif atom.op == "<=":
                    atoms.extend(atom.negated_atoms())
                else:
                    # A negated equality is a disjunction of two inequalities;
                    # it is handled by case splitting inside the theory check.
                    disequalities.append(atom)
            result = _case_split(atoms, disequalities)
            if result.satisfiable:
                return self._finish(result)
            # Theory conflict: block this boolean assignment (restricted to the
            # theory variables) and ask the SAT engine for another one.
            if not blocking:
                return CheckResult.UNSAT
            sat.add_clause(blocking)
        return CheckResult.UNKNOWN


def _case_split(atoms: List[Atom], disequalities: List[Atom]) -> TheoryResult:
    if not disequalities:
        return check_conjunction(atoms)
    head, *rest = disequalities
    for branch in head.negated_atoms():
        result = _case_split(atoms + [branch], rest)
        if result.satisfiable:
            return result
    return TheoryResult(satisfiable=False)


#: Maximum number of atomic disjunctions handled by the case-split fast path.
MAX_CASE_SPLIT_CLAUSES = 8


def _as_clausal_conjunction(formula: Formula):
    """Recognise ``And(Atom | Or(Atom...), ...)`` formulas.

    The deduction queries of the synthesizer have exactly this shape: a large
    conjunction of atoms plus a handful of small disjunctions (the
    ``Min``/``Max`` bounds of ``inner_join`` and the input-binding constraint
    :math:`\\varphi_{in}` when there are several input tables).  For those, a
    direct case split over the disjunctions is far cheaper than the full
    Tseitin/SAT pipeline.  Returns ``(atoms, clauses)`` or ``None``.
    """
    atoms: List[Atom] = []
    clauses: List[List[List[Atom]]] = []

    def clause_branches(node: Formula) -> Optional[List[List[Atom]]]:
        """Each branch of a disjunction as a conjunction of atoms."""
        branches: List[List[Atom]] = []
        for operand in node.operands:
            if isinstance(operand, Atom):
                branches.append([operand])
            elif isinstance(operand, And):
                flat = _as_conjunction_of_atoms(operand)
                if flat is None:
                    return None
                branches.append(flat)
            elif isinstance(operand, BoolVal):
                if operand.value:
                    branches.append([])
            else:
                return None
        return branches

    def walk(node: Formula) -> bool:
        if isinstance(node, Atom):
            atoms.append(node)
            return True
        if isinstance(node, BoolVal):
            return node.value
        if isinstance(node, And):
            return all(walk(operand) for operand in node.operands)
        if isinstance(node, Or):
            branches = clause_branches(node)
            if branches is None:
                return False
            clauses.append(branches)
            return True
        return False

    if walk(formula) and len(clauses) <= MAX_CASE_SPLIT_CLAUSES:
        return atoms, clauses
    return None


def _check_clausal(atoms: List[Atom], clauses) -> Optional[TheoryResult]:
    """Case split over the clauses; return a SAT result or ``None`` for UNSAT."""
    if not clauses:
        result = check_conjunction(atoms)
        return result if result.satisfiable else None
    head, *rest = clauses
    for branch in head:
        result = _check_clausal(atoms + branch, rest)
        if result is not None:
            return result
    return None


def _as_conjunction_of_atoms(formula: Formula) -> Optional[List[Atom]]:
    """Flatten *formula* into a list of atoms, or ``None`` if it has boolean structure."""
    atoms: List[Atom] = []

    def walk(node: Formula) -> bool:
        if isinstance(node, Atom):
            atoms.append(node)
            return True
        if isinstance(node, BoolVal):
            return node.value
        if isinstance(node, And):
            return all(walk(operand) for operand in node.operands)
        return False

    if walk(formula):
        return atoms
    return None


def is_satisfiable(formulas: Iterable[Formula]) -> bool:
    """Convenience wrapper: SAT/UNKNOWN count as satisfiable (sound pruning)."""
    solver = Solver()
    solver.add(*formulas)
    return solver.check() is not CheckResult.UNSAT
