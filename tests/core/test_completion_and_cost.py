"""Tests for sketch completion (Figure 14) and the statistical cost model."""

import itertools

import pytest

from repro.core import standard_library
from repro.core.completion import (
    CompletionBudgetExceeded,
    CompletionTimeout,
    SketchCompleter,
)
from repro.core.cost import CostModel, NGramModel, UniformCostModel, default_ngram_model
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import (
    evaluate,
    initial_hypothesis,
    is_complete,
    refine,
    sketches,
    table_holes,
)
from repro.dataframe import Table, tables_match_for_synthesis

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}
STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
ADULTS = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
NAMES_OF_ADULTS = Table(["name", "age"], [["Bob", 18], ["Tom", 12]])


def build_sketch(*names, inputs=1):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    return next(sketches(hypothesis, inputs))


class TestSketchCompletion:
    def test_filter_sketch_yields_matching_program(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=ADULTS)
        completer = SketchCompleter(engine)
        sketch = build_sketch("filter")
        programs = list(completer.fill_sketch(sketch))
        assert programs
        assert any(
            tables_match_for_synthesis(evaluate(program, [STUDENTS]), ADULTS)
            for program in programs
        )

    def test_all_yields_are_complete(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=ADULTS)
        completer = SketchCompleter(engine)
        for program in completer.fill_sketch(build_sketch("filter")):
            assert is_complete(program)

    def test_select_filter_chain_completion(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=NAMES_OF_ADULTS)
        completer = SketchCompleter(engine)
        sketch = build_sketch("select", "filter")
        found = False
        for program in completer.fill_sketch(sketch):
            if tables_match_for_synthesis(evaluate(program, [STUDENTS]), NAMES_OF_ADULTS):
                found = True
                break
        assert found

    def test_deduction_prunes_partial_candidates(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=NAMES_OF_ADULTS)
        completer = SketchCompleter(engine)
        list(completer.fill_sketch(build_sketch("select", "filter")))
        assert completer.stats.pruned_partial > 0
        assert completer.stats.partial_programs > completer.stats.pruned_partial

    def test_budget_is_enforced(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=NAMES_OF_ADULTS)
        completer = SketchCompleter(engine, budget=3)
        with pytest.raises(CompletionBudgetExceeded):
            list(completer.fill_sketch(build_sketch("select", "filter")))

    def test_deadline_is_enforced(self):
        engine = DeductionEngine(inputs=[STUDENTS], output=NAMES_OF_ADULTS)
        completer = SketchCompleter(engine, deadline=0.0)
        with pytest.raises(CompletionTimeout):
            list(completer.fill_sketch(build_sketch("select", "filter")))

    def test_deadline_is_checked_inside_argument_enumeration(self):
        # A single node with a huge first-order argument space (predicates
        # over a wide, high-cardinality table) must notice an expired
        # deadline between candidate fillings -- not only between hole
        # fills.  The check threaded into enumerate_arguments bounds the
        # damage to a handful of candidates.
        from repro.core.inhabitation import enumerate_arguments

        wide = Table(
            [f"c{i}" for i in range(8)],
            [[row * 31 + i for i in range(8)] for row in range(40)],
        )
        component = COMPONENTS["filter"]
        param = component.value_params[0]
        calls = []
        full = list(enumerate_arguments(component, param, wide, deadline_check=lambda: calls.append(1)))
        # Every enumerated argument passed through the deadline check.
        assert len(calls) >= len(full) > 100

        def expiring():
            if len(calls) >= len(full) + 5:
                raise CompletionTimeout()
            calls.append(1)

        with pytest.raises(CompletionTimeout):
            list(enumerate_arguments(component, param, wide, deadline_check=expiring))

    def test_deadline_is_checked_for_parameterless_nodes(self):
        # inner_join has no first-order holes; its node-boundary deduction
        # check must still observe the deadline.
        engine = DeductionEngine(
            inputs=[STUDENTS, STUDENTS], output=NAMES_OF_ADULTS
        )
        completer = SketchCompleter(engine, deadline=0.0)
        with pytest.raises(CompletionTimeout):
            list(completer.fill_sketch(build_sketch("inner_join", inputs=2)))

    def test_stepwise_run_yields_the_recursion_order(self):
        # The iterative worklist must surface complete programs in exactly
        # the order the recursive FILLSKETCH produced them (DFS over the
        # argument enumeration).
        engine = DeductionEngine(inputs=[STUDENTS], output=ADULTS)
        completer = SketchCompleter(engine)
        run = completer.start(build_sketch("filter"))
        stepped = []
        while not run.exhausted:
            program = run.step()
            if program is not None:
                stepped.append(repr(program))
        engine2 = DeductionEngine(inputs=[STUDENTS], output=ADULTS)
        completer2 = SketchCompleter(engine2)
        pulled = [repr(p) for p in completer2.fill_sketch(build_sketch("filter"))]
        assert stepped == pulled
        assert stepped


class TestNGramModel:
    def test_trained_bigrams_are_more_likely(self):
        model = default_ngram_model()
        likely = model.bigram_log_probability("group_by", "summarise")
        unlikely = model.bigram_log_probability("summarise", "group_by")
        assert likely > unlikely

    def test_sequence_probability_sums_bigrams(self):
        model = NGramModel(["a", "b"])
        model.train([("a", "b"), ("a", "b")])
        two = model.sequence_log_probability(["a", "b"])
        one = model.sequence_log_probability(["a"])
        assert two > one + model.bigram_log_probability("a", "a")  # b follows a more often

    def test_unseen_tokens_get_smoothed_probability(self):
        model = default_ngram_model()
        assert model.bigram_log_probability("spread", "never_seen") < 0


class TestCostModel:
    def test_smaller_is_cheaper_for_same_idiom(self):
        model = CostModel()
        assert model.score(1, ("gather",)) < model.score(2, ("gather", "spread"))

    def test_idiomatic_sequences_beat_exotic_ones_of_same_size(self):
        model = CostModel()
        idiomatic = model.score(2, ("group_by", "summarise"))
        exotic = model.score(2, ("arrange", "separate"))
        assert idiomatic < exotic

    def test_uniform_model_ignores_sequence(self):
        model = UniformCostModel()
        assert model.priority(2, ("group_by", "summarise")) == model.priority(2, ("arrange", "separate"))

    def test_priority_orders_by_score(self):
        model = CostModel(size_weight=1.0)
        first = model.priority(1, ("filter",))
        second = model.priority(4, ("separate", "arrange", "separate", "arrange"))
        assert first < second
