"""Parallel determinism of the CDCL-enabled benchmark harness.

Lemma state is strictly per-task (a fresh store and incremental session per
synthesis run), so a ``ParallelRunner --jobs 4`` suite run must reproduce the
serial run byte for byte on every deterministic outcome field -- including
the synthesized program text and the lemma-prune / SMT-call counters that
the conflict-driven engine adds.  ``elapsed`` is wall clock and necessarily
excluded.
"""

from repro.baselines import FIGURE16_CONFIGS, spec2_no_cdcl_config
from repro.benchmarks import r_benchmark_suite, run_suite
from repro.engine import ParallelRunner

FAST_NAMES = [
    "c1_prices_long_to_wide",
    "c2_orders_count_by_region",
    "c5_join_filter_large_orders",
]

TIMEOUT = 30.0


def fast_suite():
    return r_benchmark_suite().subset(names=FAST_NAMES)


def deterministic_fingerprint(run):
    """Every outcome field that must be identical across schedulers."""
    return [
        (
            outcome.benchmark,
            outcome.category,
            outcome.configuration,
            outcome.solved,
            outcome.program_size,
            outcome.program,
            outcome.smt_calls,
            outcome.lemma_prunes,
            outcome.lemmas_learned,
            # Tier-1 prescreen counters: pure functions of the (deterministic)
            # query sequence, so they too must match byte for byte.
            outcome.prescreen_decided,
            outcome.prescreen_fallback,
            # Search-kernel counters: completion worklist size, OE-store
            # activity and frontier peak are pure functions of the search
            # order, which the kernel keeps identical across schedulers.
            outcome.partial_programs,
            outcome.oe_candidates,
            outcome.oe_merged,
            outcome.frontier_peak,
            # Concrete-execution counters: the runner resets the intern pool
            # and counters per task, so these must match byte for byte too.
            outcome.tables_built,
            outcome.cells_interned,
            outcome.fingerprint_hits,
            outcome.exec_cache_hits,
            outcome.compare_fastpath_hits,
            # Batched sibling evaluation and residual-SMT session counters:
            # pure functions of the completion/deduction order, so they too
            # must match byte for byte across schedulers.
            outcome.sibling_batches,
            outcome.batched_fills,
            outcome.smt_sessions,
            outcome.smt_session_reuse,
        )
        for outcome in run.outcomes
    ]


def test_jobs4_suite_is_byte_identical_to_serial_with_cdcl():
    suite = fast_suite()
    serial = run_suite(suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2")
    parallel = ParallelRunner(jobs=4).run_suite(
        suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2"
    )
    assert deterministic_fingerprint(parallel) == deterministic_fingerprint(serial)
    # The tier-1 prescreen actually ran (this is not a vacuous comparison).
    assert sum(outcome.prescreen_decided for outcome in serial.outcomes) > 0


def test_interleaved_and_whole_task_scheduling_agree():
    # --jobs now interleaves kernel steps across each worker's batch; the
    # classic one-task-at-a-time workers must report byte-identical
    # deterministic fields, and so must in-process interleaving (jobs=1
    # through the runner drives every kernel in the calling process).
    suite = fast_suite()
    serial = run_suite(suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2")
    interleaved = ParallelRunner(jobs=1).run_suite(
        suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2"
    )
    whole_tasks = ParallelRunner(jobs=4, interleave=False).run_suite(
        suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2"
    )
    assert deterministic_fingerprint(interleaved) == deterministic_fingerprint(serial)
    assert deterministic_fingerprint(whole_tasks) == deterministic_fingerprint(serial)


def test_jobs4_is_byte_identical_to_serial_without_oe():
    from repro.baselines import spec2_no_oe_config

    suite = fast_suite()
    serial = run_suite(
        suite, spec2_no_oe_config, timeout=TIMEOUT, label="spec2-no-oe"
    )
    parallel = ParallelRunner(jobs=4).run_suite(
        suite, spec2_no_oe_config, timeout=TIMEOUT, label="spec2-no-oe"
    )
    assert deterministic_fingerprint(parallel) == deterministic_fingerprint(serial)
    assert all(outcome.oe_candidates == 0 for outcome in serial.outcomes)


def test_jobs4_is_byte_identical_to_serial_without_prescreen():
    # With the prescreen ablated, every UNSAT query reaches the SMT tier and
    # the CDCL machinery carries the pruning -- the lemma counters must stay
    # deterministic across schedulers there too (and actually fire, which
    # they rarely do with the prescreen absorbing the easy conflicts).
    from repro.baselines import spec2_no_prescreen_config

    suite = fast_suite()
    serial = run_suite(
        suite, spec2_no_prescreen_config, timeout=TIMEOUT, label="spec2-no-prescreen"
    )
    parallel = ParallelRunner(jobs=4).run_suite(
        suite, spec2_no_prescreen_config, timeout=TIMEOUT, label="spec2-no-prescreen"
    )
    assert deterministic_fingerprint(parallel) == deterministic_fingerprint(serial)
    assert sum(outcome.lemmas_learned for outcome in serial.outcomes) > 0
    assert all(outcome.prescreen_decided == 0 for outcome in serial.outcomes)


def test_distributed_timeout_is_a_function_of_the_step_budget():
    # In distributed mode the solve/timeout decision is a pure function of
    # the deterministic step budget (config.max_steps here), never of the
    # wall clock: a task that cannot solve within the budget must report the
    # same "timeout" status and the same step counter on every run and for
    # every worker count, no matter how oversubscribed the host is.
    from repro.api import SynthesisRequest, solve

    # Cheap per step, cannot solve within the budget, and fans out to a
    # full multi-unit round (repeat-run identity at a fixed worker count is
    # covered by tests/engine/test_distributed.py).
    task = r_benchmark_suite().get("c5_units_per_category")

    def run(workers):
        return solve(
            SynthesisRequest.from_tables(
                task.inputs, task.output,
                timeout=None, max_steps=2500, distributed=True, workers=workers,
            )
        )

    one, two = run(1), run(2)
    assert [r.status for r in (one, two)] == ["timeout", "timeout"]
    assert not one.solved
    assert one.counters["steps"] == two.counters["steps"]
    # The budget cut happened inside the distributed rounds, not the warm-up.
    assert one.counters["steps"] > 2500


def test_cdcl_and_ablation_agree_on_programs_across_schedulers():
    suite = fast_suite()
    cdcl = ParallelRunner(jobs=4).run_suite(
        suite, FIGURE16_CONFIGS["spec2"], timeout=TIMEOUT, label="spec2"
    )
    plain = run_suite(suite, spec2_no_cdcl_config, timeout=TIMEOUT, label="spec2")
    programs = lambda run: [(o.benchmark, o.solved, o.program) for o in run.outcomes]  # noqa: E731
    assert programs(cdcl) == programs(plain)
    assert all(outcome.lemmas_learned == 0 for outcome in plain.outcomes)
