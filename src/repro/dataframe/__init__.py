"""Pure-Python data-frame substrate.

The paper's artifact executes candidate programs with the R interpreter over
R data frames.  This package is the stand-in substrate: an immutable, typed
:class:`Table` plus the comparison policies used to check candidate programs
against the user-provided output example.
"""

from .cells import (
    CellType,
    CellValue,
    format_value,
    infer_cell_type,
    infer_column_type,
    is_missing,
    is_numeric,
    value_sort_key,
    values_equal,
)
from .compare import (
    DEFAULT_POLICY,
    POSITIONAL_POLICY,
    STRICT_POLICY,
    ComparePolicy,
    align_columns,
    tables_equivalent,
    tables_match_for_synthesis,
)
from .errors import (
    CellTypeError,
    ColumnNotFoundError,
    DataFrameError,
    DuplicateColumnError,
    SchemaError,
)
from .interning import clear_intern_pool, intern_pool_size, intern_value
from .profiling import ExecutionStats, execution_stats, reset_execution_state
from .table import Table

__all__ = [
    "CellType",
    "CellValue",
    "CellTypeError",
    "ColumnNotFoundError",
    "ComparePolicy",
    "DataFrameError",
    "DEFAULT_POLICY",
    "DuplicateColumnError",
    "ExecutionStats",
    "POSITIONAL_POLICY",
    "STRICT_POLICY",
    "SchemaError",
    "Table",
    "align_columns",
    "clear_intern_pool",
    "execution_stats",
    "format_value",
    "tables_match_for_synthesis",
    "infer_cell_type",
    "infer_column_type",
    "intern_pool_size",
    "intern_value",
    "is_missing",
    "is_numeric",
    "reset_execution_state",
    "tables_equivalent",
    "value_sort_key",
    "values_equal",
]
