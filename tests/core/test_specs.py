"""Tests for the component specifications (Tables 1, 2 and 3 of the paper).

The key property is *soundness*: whenever the executor actually maps an input
table to an output table, the corresponding specification formula must be
satisfiable once both tables' attributes are plugged in.
"""

import pytest

from repro.components import dplyr, tidyr
from repro.core.abstraction import ExampleBaseline, SpecLevel, TableVars, abstract_table
from repro.core.specs import SPECIFICATIONS
from repro.dataframe import Table
from repro.smt import CheckResult, Solver


def assert_consistent(name, inputs, output, level=SpecLevel.SPEC2, baseline_tables=None):
    """The spec of *name* must admit the concrete (inputs, output) pair."""
    baseline = ExampleBaseline.from_tables(baseline_tables or inputs)
    out_vars = TableVars("out")
    in_vars = [TableVars(f"in{i}") for i in range(len(inputs))]
    solver = Solver()
    solver.add(SPECIFICATIONS[name](out_vars, in_vars, level))
    for table, variables in zip(inputs, in_vars):
        solver.add(abstract_table(table, variables, level, baseline))
    solver.add(abstract_table(output, out_vars, level, baseline))
    assert solver.check() is CheckResult.SAT, f"spec of {name} rejects its own executor result"


WIDE = Table(["id", "year", "A", "B"],
             [[1, 2007, 5, 10], [2, 2007, 3, 50], [1, 2009, 5, 17], [2, 2009, 6, 17]])
LONG = Table(["product", "store", "price"],
             [["pen", "north", 2], ["pen", "south", 3], ["pad", "north", 5], ["pad", "south", 4]])
FLIGHTS = Table(["flight", "origin", "dest"],
                [[11, "EWR", "SEA"], [725, "JFK", "BQN"], [495, "JFK", "SEA"],
                 [461, "LGA", "ATL"], [1696, "EWR", "ORD"], [1670, "EWR", "SEA"]])


class TestSpecListing:
    def test_all_built_in_components_have_specs(self):
        assert set(SPECIFICATIONS) == {
            "gather", "spread", "separate", "unite", "select", "filter",
            "summarise", "group_by", "mutate", "inner_join", "arrange",
        }

    @pytest.mark.parametrize("level", [SpecLevel.SPEC1, SpecLevel.SPEC2])
    def test_specs_are_satisfiable_in_isolation(self, level):
        for name, spec in SPECIFICATIONS.items():
            arity = 2 if name == "inner_join" else 1
            formula = spec(TableVars("o"), [TableVars(f"i{k}") for k in range(arity)], level)
            solver = Solver()
            solver.add(formula)
            assert solver.check() is CheckResult.SAT, name


class TestSoundnessOnExecutorResults:
    @pytest.mark.parametrize("level", [SpecLevel.SPEC1, SpecLevel.SPEC2])
    def test_gather(self, level):
        output = tidyr.gather(WIDE, "var", "val", ["A", "B"])
        assert_consistent("gather", [WIDE], output, level)

    @pytest.mark.parametrize("level", [SpecLevel.SPEC1, SpecLevel.SPEC2])
    def test_spread(self, level):
        output = tidyr.spread(LONG, "store", "price")
        assert_consistent("spread", [LONG], output, level)

    def test_spread_on_raw_input_table(self):
        # Regression test: the new column names come from input *cells*, so
        # newCols must not count them as new (otherwise the spec is unsound).
        output = tidyr.spread(LONG, "store", "price")
        assert_consistent("spread", [LONG], output, SpecLevel.SPEC2, baseline_tables=[LONG])

    def test_separate(self):
        table = Table(["key", "v"], [["a_1", 10], ["b_2", 20]])
        output = tidyr.separate(table, "key", ["l", "r"])
        assert_consistent("separate", [table], output)

    def test_unite(self):
        output = tidyr.unite(WIDE, "idyear", ["id", "year"])
        assert_consistent("unite", [WIDE], output)

    def test_select(self):
        output = dplyr.select(FLIGHTS, ["origin", "dest"])
        assert_consistent("select", [FLIGHTS], output)

    def test_filter(self):
        output = dplyr.filter_rows(FLIGHTS, lambda row: row["dest"] == "SEA")
        assert_consistent("filter", [FLIGHTS], output)

    def test_group_by_and_summarise(self):
        grouped = dplyr.group_by(FLIGHTS, ["origin"])
        assert_consistent("group_by", [FLIGHTS], grouped)
        summary = dplyr.summarise(grouped, "n", "n")
        assert_consistent("summarise", [grouped], summary, baseline_tables=[FLIGHTS])

    def test_mutate(self):
        output = dplyr.mutate(FLIGHTS, "double", lambda row, group: row["flight"] * 2)
        assert_consistent("mutate", [FLIGHTS], output)

    def test_inner_join(self):
        left = Table(["id", "x"], [[1, "a"], [2, "b"], [3, "c"]])
        right = Table(["id", "y"], [[1, 10], [2, 30], [3, 40]])
        output = dplyr.inner_join(left, right)
        assert_consistent("inner_join", [left, right], output)

    def test_arrange(self):
        output = dplyr.arrange(FLIGHTS, ["origin"])
        assert_consistent("arrange", [FLIGHTS], output)


class TestPruningPower:
    def test_select_rejects_wider_output(self):
        # Example 10 of the paper: a select/filter chain cannot grow columns.
        out_vars, in_vars = TableVars("out"), TableVars("in0")
        solver = Solver()
        solver.add(SPECIFICATIONS["select"](out_vars, [in_vars], SpecLevel.SPEC1))
        solver.add(in_vars.col.equals(4), out_vars.col.equals(4))
        assert solver.check() is CheckResult.UNSAT

    def test_filter_rejects_equal_row_count(self):
        out_vars, in_vars = TableVars("out"), TableVars("in0")
        solver = Solver()
        solver.add(SPECIFICATIONS["filter"](out_vars, [in_vars], SpecLevel.SPEC1))
        solver.add(in_vars.row.equals(6), out_vars.row.equals(6))
        assert solver.check() is CheckResult.UNSAT

    def test_spec2_spread_rejects_new_columns_from_nowhere(self):
        # The appendix's Example 13: spreading the raw Example 1 input cannot
        # produce 4 genuinely new column names.
        out_vars, in_vars = TableVars("out"), TableVars("in0")
        solver = Solver()
        solver.add(SPECIFICATIONS["spread"](out_vars, [in_vars], SpecLevel.SPEC2))
        solver.add(in_vars.new_vals.equals(0), out_vars.new_cols.equals(4))
        assert solver.check() is CheckResult.UNSAT

    def test_spec1_does_not_have_that_power(self):
        out_vars, in_vars = TableVars("out"), TableVars("in0")
        solver = Solver()
        solver.add(SPECIFICATIONS["spread"](out_vars, [in_vars], SpecLevel.SPEC1))
        solver.add(in_vars.row.equals(4), in_vars.col.equals(4),
                   out_vars.row.equals(2), out_vars.col.equals(5))
        assert solver.check() is CheckResult.SAT

    def test_mutate_requires_new_values(self):
        out_vars, in_vars = TableVars("out"), TableVars("in0")
        solver = Solver()
        solver.add(SPECIFICATIONS["mutate"](out_vars, [in_vars], SpecLevel.SPEC2))
        solver.add(in_vars.new_vals.equals(3), out_vars.new_vals.equals(3))
        assert solver.check() is CheckResult.UNSAT
