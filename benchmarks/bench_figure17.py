"""Figure 17: cumulative running time with/without partial evaluation.

Times the five configurations of the figure (no deduction, Spec 1/2 with and
without partial evaluation) on the representative subset and prints the
cumulative-time series.

Regenerate the full curves with::

    python -m repro.benchmarks.cli figure17 --timeout 60
"""

import pytest

from repro.baselines import ALL_FIGURE17_CONFIGS
from repro.benchmarks import figure17_series, figure17_table, r_benchmark_suite, run_suite
from conftest import BENCH_FULL, BENCH_TIMEOUT, REPRESENTATIVE_BENCHMARKS

SUITE = r_benchmark_suite()
NAMES = SUITE.names() if BENCH_FULL else REPRESENTATIVE_BENCHMARKS
SUBSET = SUITE.subset(names=NAMES)


@pytest.mark.parametrize("config_name", list(ALL_FIGURE17_CONFIGS))
def test_figure17_curve(benchmark, config_name):
    """Time one configuration over the whole subset (one curve of Figure 17)."""
    factory = ALL_FIGURE17_CONFIGS[config_name]

    def run():
        return run_suite(SUBSET, factory, timeout=BENCH_TIMEOUT, label=config_name)

    run_result = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = run_result.solved
    benchmark.extra_info["total"] = run_result.total


def test_figure17_partial_evaluation_helps(capsys):
    """Partial evaluation should not solve fewer benchmarks than its ablation."""
    with_pe = run_suite(SUBSET, ALL_FIGURE17_CONFIGS["spec2-pe"], timeout=BENCH_TIMEOUT, label="spec2-pe")
    without_pe = run_suite(SUBSET, ALL_FIGURE17_CONFIGS["spec2-no-pe"], timeout=BENCH_TIMEOUT, label="spec2-no-pe")
    runs = {"spec2-pe": with_pe, "spec2-no-pe": without_pe}
    with capsys.disabled():
        print("\n" + figure17_table(runs))
        print(figure17_series(runs))
    assert with_pe.solved >= without_pe.solved
