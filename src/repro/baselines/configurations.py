"""Configuration presets for the Morpheus ablations.

Figure 16 of the paper compares three configurations (purely enumerative
search, deduction with Spec 1, deduction with Spec 2); Figure 17 additionally
toggles partial evaluation.  These helpers build the corresponding
:class:`~repro.core.SynthesisConfig` objects so the benchmark harness and the
tests use exactly the same definitions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.abstraction import SpecLevel
from ..core.synthesizer import SynthesisConfig


def _base(timeout: Optional[float]) -> Dict:
    return {"timeout": timeout}


def no_deduction_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Purely enumerative search (the "No deduction" column of Figure 16).

    The statistical cost model is still used to order hypotheses, exactly as
    in the paper's basic configuration.
    """
    return SynthesisConfig(deduction=False, **_base(timeout))


def spec1_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Deduction with the coarse row/column specification (Table 2)."""
    return SynthesisConfig(spec_level=SpecLevel.SPEC1, **_base(timeout))


def spec2_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Deduction with the precise specification (Table 3).  Full Morpheus."""
    return SynthesisConfig(spec_level=SpecLevel.SPEC2, **_base(timeout))


def spec1_no_partial_eval_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Spec 1 deduction without partial evaluation (Figure 17 ablation)."""
    return SynthesisConfig(
        spec_level=SpecLevel.SPEC1, partial_evaluation=False, **_base(timeout)
    )


def spec2_no_partial_eval_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Spec 2 deduction without partial evaluation (Figure 17 ablation)."""
    return SynthesisConfig(
        spec_level=SpecLevel.SPEC2, partial_evaluation=False, **_base(timeout)
    )


def full_morpheus_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """The default, full-strength configuration (Spec 2 + partial evaluation)."""
    return spec2_config(timeout)


def spec2_no_cdcl_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Spec 2 deduction without conflict-driven lemma learning (``--no-cdcl``)."""
    return SynthesisConfig(spec_level=SpecLevel.SPEC2, cdcl=False, **_base(timeout))


def spec2_no_prescreen_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Spec 2 deduction without the tier-1 interval prescreen (``--no-prescreen``)."""
    return SynthesisConfig(spec_level=SpecLevel.SPEC2, prescreen=False, **_base(timeout))


def spec2_no_oe_config(timeout: Optional[float] = 60.0) -> SynthesisConfig:
    """Spec 2 deduction without observational-equivalence merging (``--no-oe``)."""
    return SynthesisConfig(spec_level=SpecLevel.SPEC2, oe=False, **_base(timeout))


def override_config(factory, **overrides):
    """A configuration factory applying field *overrides* to another factory."""
    from dataclasses import replace

    return lambda timeout: replace(factory(timeout), **overrides)


def _with_overrides(configurations: Dict, **overrides) -> Dict:
    """Rewrite a label->factory map applying the same field overrides.

    Used by the benchmark CLI's ablation flags: the labels stay unchanged so
    tables from both modes line up column-for-column.
    """
    return {
        label: override_config(factory, **overrides)
        for label, factory in configurations.items()
    }


def without_cdcl(configurations: Dict) -> Dict:
    """Disable conflict-driven lemma learning in every configuration."""
    return _with_overrides(configurations, cdcl=False)


def without_prescreen(configurations: Dict) -> Dict:
    """Disable the tier-1 interval prescreen in every configuration."""
    return _with_overrides(configurations, prescreen=False)


def without_oe(configurations: Dict) -> Dict:
    """Disable observational-equivalence merging in every configuration."""
    return _with_overrides(configurations, oe=False)


def with_top_k(configurations: Dict, k: int) -> Dict:
    """Collect up to *k* distinct solutions per task."""
    return _with_overrides(configurations, top_k=k)


def with_distributed(configurations: Dict, workers: Optional[int] = None) -> Dict:
    """Fan each task's own frontier over a worker pool (``--distributed``).

    The distributed scheduler synthesizes byte-identical programs and
    deterministic counters for every worker count (see
    :mod:`repro.engine.distributed`), so the labels stay unchanged.
    """
    return _with_overrides(configurations, distributed=True, workers=workers)


def with_backend(configurations: Dict, backend: str) -> Dict:
    """Run every configuration on the named columnar execution backend.

    Backends are observationally identical (``--backend`` A/B runs must
    synthesize byte-identical programs), so the labels stay unchanged.
    """
    return _with_overrides(configurations, backend=backend)


#: The three configurations of Figure 16, keyed by the column label.
FIGURE16_CONFIGS = {
    "no-deduction": no_deduction_config,
    "spec1": spec1_config,
    "spec2": spec2_config,
}

#: The five configurations of Figure 17, keyed by the curve label.
ALL_FIGURE17_CONFIGS = {
    "no-deduction": no_deduction_config,
    "spec1-no-pe": spec1_no_partial_eval_config,
    "spec2-no-pe": spec2_no_partial_eval_config,
    "spec1-pe": spec1_config,
    "spec2-pe": spec2_config,
}
