"""Tests for table comparison policies and column alignment."""

from repro.dataframe import (
    DEFAULT_POLICY,
    POSITIONAL_POLICY,
    STRICT_POLICY,
    ComparePolicy,
    Table,
    align_columns,
    tables_equivalent,
    tables_match_for_synthesis,
)


def make(columns, rows):
    return Table(columns, rows)


class TestPolicies:
    def test_identical_tables_match_under_every_policy(self):
        table = make(["a", "b"], [[1, "x"], [2, "y"]])
        for policy in (DEFAULT_POLICY, STRICT_POLICY, POSITIONAL_POLICY):
            assert tables_equivalent(table, table, policy)

    def test_row_order_ignored_by_default(self):
        left = make(["a"], [[1], [2]])
        right = make(["a"], [[2], [1]])
        assert tables_equivalent(left, right, DEFAULT_POLICY)
        assert not tables_equivalent(left, right, STRICT_POLICY)

    def test_column_names_required_by_default(self):
        left = make(["a"], [[1]])
        right = make(["b"], [[1]])
        assert not tables_equivalent(left, right, DEFAULT_POLICY)
        assert tables_equivalent(left, right, POSITIONAL_POLICY)

    def test_column_order_policy(self):
        left = make(["b", "a"], [[2, 1]])
        right = make(["a", "b"], [[1, 2]])
        assert not tables_equivalent(left, right, DEFAULT_POLICY)
        assert tables_equivalent(left, right, ComparePolicy(ignore_col_order=True))

    def test_shape_mismatch(self):
        assert not tables_equivalent(make(["a"], [[1]]), make(["a"], [[1], [2]]))
        assert not tables_equivalent(make(["a"], [[1]]), make(["a", "b"], [[1, 2]]))


class TestAlignment:
    def test_alignment_by_name(self):
        actual = make(["x", "y"], [[1, "a"], [2, "b"]])
        expected = make(["y", "x"], [["a", 1], ["b", 2]])
        assert align_columns(actual, expected) == ["y", "x"]

    def test_alignment_with_renamed_columns(self):
        actual = make(["_n3_agg", "origin"], [[2, "EWR"], [1, "JFK"]])
        expected = make(["n", "origin"], [[1, "JFK"], [2, "EWR"]])
        assert tables_match_for_synthesis(actual, expected)

    def test_alignment_fails_on_different_contents(self):
        actual = make(["a"], [[1], [2]])
        expected = make(["a"], [[1], [3]])
        assert align_columns(actual, expected) is None

    def test_alignment_requires_consistent_rows(self):
        # Both columns have the same multiset {1, 2} but the pairing differs.
        actual = make(["a", "b"], [[1, 1], [2, 2]])
        expected = make(["a", "b"], [[1, 2], [2, 1]])
        assert align_columns(actual, expected) is None

    def test_alignment_handles_duplicate_fingerprints(self):
        actual = make(["p", "q", "r"], [[1, 1, "x"], [2, 2, "y"]])
        expected = make(["q", "p", "r"], [[1, 1, "x"], [2, 2, "y"]])
        assert align_columns(actual, expected) is not None

    def test_float_tolerance_in_alignment(self):
        actual = make(["share"], [[2 / 3], [1 / 3]])
        expected = make(["share"], [[0.6666667], [0.3333333]])
        assert tables_match_for_synthesis(actual, expected)
