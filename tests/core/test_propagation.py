"""Tests for the tier-1 attribute prescreen (``repro.core.propagation``).

The load-bearing property is the **two-tier deduction invariant** (see
DESIGN.md): tier 1 may only answer UNSAT, never SAT.  Two randomized suites
pin it from both ends:

* every component's interval transfer function over-approximates its SMT
  ``Formula`` twin -- any attribute assignment the formula admits survives
  the transfer (on singleton boxes *and* on widened boxes containing it);
* on random sketches, a prescreen-UNSAT verdict implies the full SMT query
  of Algorithm 2 is UNSAT.

Failures print the offending seed / instance so a broken transfer edit is
diagnosable from the CI log.
"""

import itertools
import random

import pytest

from repro.core import SpecLevel, standard_library
from repro.core.abstraction import (
    ExampleBaseline,
    TableVars,
    abstract_attributes,
    nonnegativity,
    table_attribute_vector,
)
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import initial_hypothesis, refine, sketches, table_holes
from repro.core.propagation import (
    COL,
    ROW,
    Infeasible,
    contains,
    eq,
    ge_min,
    ground_check,
    hull_box,
    le,
    le_max,
    le_sum,
    normalize,
    point_box,
    prescreen_infeasible,
    top_box,
)
from repro.core.specs import SPECIFICATIONS, TRANSFERS
from repro.dataframe import Table
from repro.smt import CheckResult, Solver

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}
LEVELS = [SpecLevel.SPEC1, SpecLevel.SPEC2]

T1 = Table(["id", "name", "age", "gpa"],
           [[1, "Alice", 8, 4.0], [2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]])
T2 = Table(["id", "name", "age"],
           [[2, "Bob", 18], [3, "Tom", 12]])


def _arity(name):
    return 2 if name == "inner_join" else 1


def _formula_admits(name, out_attrs, in_attrs, level):
    """Whether the SMT interpretation admits the ground attribute vectors.

    Mirrors the shape of a real deduction query around one node: the spec
    formula, the abstraction of every attribute vector, and the sanity
    constraints asserted for every node variable.
    """
    out_vars = TableVars("o")
    in_vars = [TableVars(f"i{k}") for k in range(len(in_attrs))]
    solver = Solver()
    solver.add(SPECIFICATIONS[name](out_vars, in_vars, level))
    solver.add(abstract_attributes(tuple(out_attrs), out_vars, level))
    for attrs, variables in zip(in_attrs, in_vars):
        solver.add(abstract_attributes(tuple(attrs), variables, level))
    solver.add(nonnegativity([out_vars] + in_vars, level))
    return solver.check() is CheckResult.SAT


def _random_attrs(rng):
    # row, col, group, newCols, newVals -- small values exercise every
    # boundary constant in the specs (col >= 3, newCols >= 2, ...).
    return (rng.randint(0, 6), rng.randint(1, 6), rng.randint(0, 6),
            rng.randint(0, 6), rng.randint(0, 8))


_ATTR_FIELDS = ("row", "col", "group", "newCols", "newVals")


def _admitted_output(name, in_attrs, level):
    """A solver-produced output vector the formula admits for *in_attrs*.

    Sampling the output attributes independently almost never satisfies the
    equality-rich specs (``arrange`` fixes all five attributes), so admitted
    instances come from the SMT model itself: fix the inputs, solve, read the
    output variables back.  Returns ``None`` when no output exists.
    """
    out_vars = TableVars("o")
    in_vars = [TableVars(f"i{k}") for k in range(len(in_attrs))]
    solver = Solver()
    solver.add(SPECIFICATIONS[name](out_vars, in_vars, level))
    for attrs, variables in zip(in_attrs, in_vars):
        solver.add(abstract_attributes(tuple(attrs), variables, level))
    solver.add(nonnegativity([out_vars] + in_vars, level))
    if solver.check() is not CheckResult.SAT:
        return None
    model = solver.model() or {}
    return tuple(model.get(f"o.{field}", 0) for field in _ATTR_FIELDS)


class TestIntervalPrimitives:
    def test_le_tightens_both_sides(self):
        a, b = top_box(), top_box()
        b[ROW][1] = 5
        a[ROW][0] = 2
        le(a, ROW, b, ROW)          # a.row <= b.row
        assert a[ROW][1] == 5
        assert b[ROW][0] == 2

    def test_le_with_offset_raises_on_empty(self):
        a, b = point_box((4, 1, 0, 0, 0)), point_box((3, 1, 0, 0, 0))
        with pytest.raises(Infeasible):
            le(a, ROW, b, ROW)      # 4 <= 3 is false

    def test_eq_collapses_to_the_intersection(self):
        a, b = top_box(), top_box()
        a[COL] = [2, 5]
        b[COL] = [4, 9]
        eq(a, COL, b, COL)
        assert a[COL] == [4, 5] and b[COL] == [4, 5]

    def test_le_sum_refines_all_three_operands(self):
        a, b, c = top_box(), top_box(), top_box()
        a[ROW][0] = 10
        b[ROW][1] = 3
        c[ROW][1] = 4
        with pytest.raises(Infeasible):
            le_sum(a, ROW, b, ROW, c, ROW)      # 10 <= 3 + 4 is false

    def test_ge_min_forces_the_only_feasible_operand(self):
        out, t1, t2 = top_box(), top_box(), top_box()
        out[ROW] = [0, 5]
        t1[ROW] = [7, 9]            # always above out: t2 must provide the min
        t2[ROW] = [0, 20]
        ge_min(out, ROW, [(t1, ROW), (t2, ROW)])
        assert t2[ROW][1] == 5

    def test_le_max_forces_the_only_feasible_operand(self):
        out, t1, t2 = top_box(), top_box(), top_box()
        out[ROW] = [10, 20]
        t1[ROW] = [0, 4]            # always below out: t2 must provide the max
        t2[ROW] = [0, 50]
        le_max(out, ROW, [(t1, ROW), (t2, ROW)])
        assert t2[ROW][0] == 10

    def test_normalize_applies_the_sanity_constraints(self):
        box = top_box()
        box[ROW] = [0, 3]
        normalize(box, SpecLevel.SPEC2)
        assert box[COL][0] == 1
        assert box[2][1] == 3       # group <= row

    def test_hull_box_contains_every_vector(self):
        vectors = [(1, 2, 1, 0, 0), (5, 4, 2, 1, 3)]
        box = hull_box(vectors)
        assert all(contains(box, vector) for vector in vectors)
        assert not contains(box, (6, 2, 1, 0, 0))


class TestRegistryPairing:
    def test_every_spec_has_a_transfer_twin(self):
        # The two-tier invariant starts here: a spec added to one registry
        # without the other is a missing (or dangling) interpretation.
        assert set(TRANSFERS) == set(SPECIFICATIONS)

    def test_library_components_carry_their_transfer(self):
        for component in LIBRARY:
            assert component.transfer is TRANSFERS[component.name]

    def test_custom_spec_without_transfer_stays_unconstrained(self):
        # A component overriding ``spec`` must not inherit a registry
        # transfer that could be *stronger* than its custom formula.
        from dataclasses import replace

        from repro.core.specs import spec_true

        custom = replace(COMPONENTS["filter"], spec=spec_true, transfer=None)
        assert custom.transfer is None
        assert ground_check(custom.transfer, (9, 9, 9, 9, 9), [(0, 1, 0, 0, 0)],
                            SpecLevel.SPEC2)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("name", sorted(SPECIFICATIONS))
def test_ground_transfer_overapproximates_the_formula(name, level):
    """Solver-SAT ground instances must pass the compiled ground evaluator."""
    rng = random.Random(f"{name}/{level}")
    transfer = TRANSFERS[name]
    admitted = rejected = 0
    for trial in range(80):
        in_attrs = [_random_attrs(rng) for _ in range(_arity(name))]
        # A solver-produced admitted instance for these inputs (if any).
        model_out = _admitted_output(name, in_attrs, level)
        if model_out is not None:
            admitted += 1
            assert ground_check(transfer, model_out, in_attrs, level), (
                f"transfer_{name} rejects a formula-admitted instance "
                f"(level={level}, out={model_out}, ins={in_attrs}, trial={trial})"
            )
        # An independently sampled output, tested in whichever direction the
        # solver decides (also counts the transfer's rejection coverage).
        out_attrs = _random_attrs(rng)
        sat = _formula_admits(name, out_attrs, in_attrs, level)
        ground = ground_check(transfer, out_attrs, in_attrs, level)
        if sat:
            admitted += 1
            assert ground, (
                f"transfer_{name} rejects a formula-admitted instance "
                f"(level={level}, out={out_attrs}, ins={in_attrs}, trial={trial})"
            )
        elif not ground:
            rejected += 1
    # Non-vacuity: the sampler hit satisfiable instances, and the compiled
    # interpretation rejected at least some unsatisfiable ones.
    assert admitted > 0, f"sampler never satisfied {name} at {level}"
    assert rejected > 0, f"transfer_{name} never rejected anything at {level}"


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("name", sorted(SPECIFICATIONS))
def test_box_transfer_keeps_admitted_points_inside(name, level):
    """Widened boxes stay non-empty and still contain the admitted point."""
    rng = random.Random(f"box/{name}/{level}")
    transfer = TRANSFERS[name]
    checked = 0
    for _ in range(60):
        in_attrs = [_random_attrs(rng) for _ in range(_arity(name))]
        out_attrs = _admitted_output(name, in_attrs, level)
        if out_attrs is None:
            continue
        checked += 1

        def widen(attrs):
            return [
                [value - rng.randint(0, 3), value + rng.randint(0, 3)]
                for value in attrs
            ]

        out_box = widen(out_attrs)
        in_boxes = [widen(attrs) for attrs in in_attrs]
        try:
            normalize(out_box, level)
            for box in in_boxes:
                normalize(box, level)
            transfer(out_box, in_boxes, level)
        except Infeasible:
            pytest.fail(
                f"transfer_{name} emptied a box containing an admitted point "
                f"(level={level}, out={out_attrs}, ins={in_attrs})"
            )
        assert contains(out_box, out_attrs)
        for box, attrs in zip(in_boxes, in_attrs):
            assert contains(box, attrs)
        if checked >= 60:
            break
    assert checked > 0


def _random_hypotheses(rng, names, max_size=3, count=250):
    """Random refinement chains/trees over the component library."""
    for _ in range(count):
        next_id = itertools.count(1)
        hypothesis = initial_hypothesis()
        for _ in range(rng.randint(1, max_size)):
            holes = table_holes(hypothesis)
            if not holes:
                break
            hole = rng.choice(holes)
            component = COMPONENTS[rng.choice(names)]
            hypothesis = refine(
                hypothesis, hole, component, lambda: next(next_id)
            )
        yield hypothesis


@pytest.mark.parametrize("level", LEVELS)
def test_prescreen_unsat_implies_solver_unsat_on_random_sketches(level):
    """Tier 1 may only answer UNSAT: every decided query re-checks UNSAT on tier 2."""
    rng = random.Random(f"sketch/{level}")
    engine = DeductionEngine(inputs=[T1, T2], output=T2, level=level)
    names = sorted(COMPONENTS)
    decided = 0
    for hypothesis in _random_hypotheses(rng, names):
        for sketch in sketches(hypothesis, 2):
            if rng.random() < 0.5:
                continue  # subsample the binding assignments
            evaluated = engine.evaluate_if_possible(sketch)
            if evaluated is None:
                continue
            if prescreen_infeasible(
                sketch, evaluated, engine.table_attributes,
                engine._input_attributes, engine._output_attributes, level,
            ):
                decided += 1
                solver = Solver()
                solver.add(engine.build_query(sketch, evaluated))
                assert solver.check() is CheckResult.UNSAT, (
                    f"prescreen declared UNSAT but the solver disagrees "
                    f"(level={level}, sketch={sketch!r})"
                )
    assert decided > 50, f"prescreen decided almost nothing ({decided})"


def test_engine_verdicts_identical_with_and_without_prescreen():
    """The tiered ``deduce`` is an optimisation, not a semantics change."""
    rng = random.Random("differential")
    tiered = DeductionEngine(inputs=[T1], output=T2)
    plain = DeductionEngine(inputs=[T1], output=T2, prescreen=False)
    names = sorted(COMPONENTS)
    checked = 0
    for hypothesis in _random_hypotheses(rng, names, count=120):
        for sketch in sketches(hypothesis, 1):
            checked += 1
            assert tiered.deduce(sketch) is plain.deduce(sketch), (
                f"prescreen changed a verdict on {sketch!r}"
            )
    assert checked > 100
    assert tiered.stats.prescreen_decided > 0
    assert plain.stats.prescreen_decided == 0
    assert plain.stats.prescreen_fallback == 0
    assert tiered.stats.smt_calls < plain.stats.smt_calls


class TestEngineCounters:
    def test_prescreen_decides_without_formula_or_solver(self):
        # mutate must add a column; the output table has as many columns as
        # the input, so the ground sweep empties the root box immediately.
        next_id = itertools.count(1)
        hypothesis = refine(
            initial_hypothesis(), initial_hypothesis(), COMPONENTS["mutate"],
            lambda: next(next_id),
        )
        engine = DeductionEngine(inputs=[T1], output=T1)
        assert engine.deduce(hypothesis) is False
        assert engine.stats.prescreen_decided == 1
        assert engine.stats.smt_calls == 0
        assert engine.stats.lemmas_learned == 0  # no mining on tier-1 rejections

    def test_prescreen_verdict_is_memoised(self):
        next_id = itertools.count(1)
        hypothesis = refine(
            initial_hypothesis(), initial_hypothesis(), COMPONENTS["mutate"],
            lambda: next(next_id),
        )
        engine = DeductionEngine(inputs=[T1], output=T1)
        assert engine.deduce(hypothesis) is False
        assert engine.deduce(hypothesis) is False
        assert engine.stats.prescreen_decided == 1
        assert engine.stats.cache_hits == 1

    def test_hit_rate_property(self):
        engine = DeductionEngine(inputs=[T1], output=T1)
        assert engine.stats.prescreen_hit_rate == 0.0
        engine.stats.prescreen_decided = 3
        engine.stats.prescreen_fallback = 1
        assert engine.stats.prescreen_hit_rate == 0.75

    def test_stats_merge_accumulates_prescreen_counters(self):
        from repro.core.deduction import DeductionStats

        first, second = DeductionStats(), DeductionStats()
        first.prescreen_decided, first.prescreen_fallback = 2, 1
        second.prescreen_decided, second.prescreen_fallback = 5, 3
        first.merge(second)
        assert first.prescreen_decided == 7
        assert first.prescreen_fallback == 4


def test_table_attribute_vector_matches_engine_memo():
    engine = DeductionEngine(inputs=[T1], output=T2)
    baseline = ExampleBaseline.from_tables([T1])
    assert engine.table_attributes(T1) == table_attribute_vector(
        T1, SpecLevel.SPEC2, baseline
    )
    spec1 = DeductionEngine(inputs=[T1], output=T2, level=SpecLevel.SPEC1)
    assert spec1.table_attributes(T1) == (T1.n_rows, T1.n_cols, 0, 0, 0)
