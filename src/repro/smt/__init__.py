"""A small SMT solver for quantifier-free Linear Integer Arithmetic.

The paper's deduction engine uses Z3 with the theory of Linear Integer
Arithmetic.  This package is the offline stand-in: a formula AST
(:mod:`repro.smt.terms`), a Tseitin CNF encoder, a conflict-driven SAT
solver, an LIA decision procedure built on exact simplex with branch and
bound, and a lazy DPLL(T) facade (:class:`repro.smt.Solver`).
"""

from .cnf import CNF, tseitin
from .lia import TheoryResult, check_conjunction
from .sat import SatSolver
from .simplex import LinearConstraint, solve_rational
from .solver import CheckResult, Solver, is_satisfiable
from .terms import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolVal,
    Formula,
    Int,
    LinExpr,
    Not,
    Or,
    conjoin,
    disjoin,
    formula_atoms,
    formula_variables,
)

__all__ = [
    "And",
    "Atom",
    "BoolVal",
    "CheckResult",
    "CNF",
    "FALSE",
    "Formula",
    "Int",
    "LinearConstraint",
    "LinExpr",
    "Not",
    "Or",
    "SatSolver",
    "Solver",
    "TheoryResult",
    "TRUE",
    "check_conjunction",
    "conjoin",
    "disjoin",
    "formula_atoms",
    "formula_variables",
    "is_satisfiable",
    "solve_rational",
    "tseitin",
]
