"""Golden regression tests pinning exact synthesized programs.

Conflict-driven lemma learning must never change *what* Morpheus
synthesizes, only how much solver work it spends getting there.  These tests
pin the rendered program text for a small Figure 16 subset, and additionally
require the ``--no-cdcl`` ablation to produce byte-identical programs, so any
unsound lemma (or ordering regression) that silently changes a synthesis
outcome fails loudly.
"""

import pytest

from repro.benchmarks import r_benchmark_suite
from repro.core import Example, Morpheus, SynthesisConfig
from repro.smt.solver import clear_formula_cache

#: name -> exact rendered program (the golden output of the seed synthesizer).
GOLDEN_PROGRAMS = {
    "c1_scores_wide_to_long": "df1 = gather(table1, key, value, round1, round2)",
    "c1_prices_long_to_wide": "df1 = spread(table1, store, price)",
    "c2_orders_count_by_region": (
        "df1 = group_by(table1, region)\n"
        "df2 = summarise(df1, agg = n())"
    ),
    "c5_join_filter_large_orders": (
        "df1 = inner_join(table1, table2)\n"
        'df2 = filter(df1, customer != "ann")'
    ),
}


def synthesize_benchmark(name, cdcl):
    benchmark = r_benchmark_suite().get(name)
    clear_formula_cache()
    config = SynthesisConfig(timeout=30, cdcl=cdcl)
    return Morpheus(config=config).synthesize(
        Example.make(benchmark.inputs, benchmark.output)
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_cdcl_reproduces_the_golden_program(name):
    result = synthesize_benchmark(name, cdcl=True)
    assert result.solved
    assert result.render() == GOLDEN_PROGRAMS[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_PROGRAMS))
def test_no_cdcl_ablation_matches_the_golden_program(name):
    result = synthesize_benchmark(name, cdcl=False)
    assert result.solved
    assert result.render() == GOLDEN_PROGRAMS[name]


def test_cdcl_saves_solver_work_on_the_golden_subset():
    """Across the subset, CDCL must not issue more SMT calls than plain
    deduction (per-benchmark counts can tie when the search is tiny)."""
    with_cdcl = 0
    without = 0
    for name in GOLDEN_PROGRAMS:
        with_cdcl += synthesize_benchmark(name, cdcl=True).stats.smt_calls
        without += synthesize_benchmark(name, cdcl=False).stats.smt_calls
    assert with_cdcl <= without
