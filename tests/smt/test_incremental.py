"""Property-based differential tests for the incremental solver.

Every test drives the incremental machinery (assumption solving, push/pop
scopes, the persistent session) with a *seeded* random generator and checks
that it agrees with a from-scratch monolithic solve of the same active
formula set.  The generator keeps formulas small (few variables, small
coefficients) so both sides stay within the theory backend's exact regime
and the verdicts are comparable.
"""

import random

import pytest

from repro.smt import And, CheckResult, Int, Not, Or, Solver
from repro.smt.sat import SatSolver
from repro.smt.terms import FALSE, TRUE

VARIABLES = ["p", "q", "r", "s"]


def random_atom(rng):
    """A small linear constraint over one or two variables."""
    name = rng.choice(VARIABLES)
    left = Int(name)
    if rng.random() < 0.4:
        other = rng.choice([v for v in VARIABLES if v != name])
        left = left - Int(other)
    constant = rng.randint(-4, 4)
    kind = rng.random()
    if kind < 0.4:
        return left <= constant
    if kind < 0.8:
        return left >= constant
    return left.equals(constant)


def random_formula(rng, depth=2):
    """A random boolean combination (includes shapes only the lazy path takes)."""
    if depth == 0 or rng.random() < 0.4:
        return random_atom(rng)
    kind = rng.random()
    if kind < 0.1:
        return rng.choice([TRUE, FALSE]) if rng.random() < 0.3 else random_atom(rng)
    if kind < 0.4:
        return Not(random_formula(rng, depth - 1))
    operands = [random_formula(rng, depth - 1) for _ in range(rng.randint(2, 3))]
    return And(*operands) if kind < 0.7 else Or(*operands)


def from_scratch(formulas) -> CheckResult:
    """The reference verdict: a fresh monolithic solve of the conjunction."""
    solver = Solver()
    solver.add(*formulas)
    return solver.check()


def assert_equivalent(actual: CheckResult, expected: CheckResult) -> None:
    """Differential agreement up to UNKNOWN.

    UNSAT is the load-bearing verdict (it is what the deduction engine prunes
    on) and must match exactly.  SAT and UNKNOWN are interchangeable by
    design -- the persistent session's learned clauses can change whether a
    query converges within the theory-round budget -- so a SAT/UNKNOWN split
    between the two strategies is benign.
    """
    if CheckResult.UNKNOWN in (actual, expected):
        assert actual is not CheckResult.UNSAT
        assert expected is not CheckResult.UNSAT
    else:
        assert actual is expected


class TestAssumptionsAgainstFromScratch:
    @pytest.mark.parametrize("seed", range(40))
    def test_check_assumptions_matches_monolithic(self, seed):
        rng = random.Random(seed)
        solver = Solver()
        base = [random_formula(rng) for _ in range(rng.randint(0, 2))]
        solver.add(*base)
        # Several assumption queries against one persistent session: later
        # calls must not be contaminated by earlier (retracted) assumptions.
        for _ in range(4):
            named = {
                f"a{i}": random_formula(rng) for i in range(rng.randint(0, 3))
            }
            expected = from_scratch(base + list(named.values()))
            actual = solver.check_assumptions(named)
            assert_equivalent(actual, expected)
            if actual is CheckResult.UNSAT:
                assert set(solver.unsat_core()) <= set(named)
            if actual is CheckResult.SAT:
                model = solver.model()
                assert model is not None

    @pytest.mark.parametrize("seed", range(40))
    def test_push_pop_sequences_match_monolithic(self, seed):
        rng = random.Random(seed)
        solver = Solver()
        mirror = [[]]  # the reference view of the scope stack
        for _ in range(12):
            op = rng.random()
            if op < 0.25:
                solver.push()
                mirror.append([])
            elif op < 0.4 and len(mirror) > 1:
                solver.pop()
                mirror.pop()
            elif op < 0.75:
                formula = random_formula(rng)
                solver.add(formula)
                mirror[-1].append(formula)
            else:
                active = [f for scope in mirror for f in scope]
                assert solver.check() is from_scratch(active)
                # The incremental session must agree as well (empty
                # assumption set = just the scoped assertions).
                assert_equivalent(solver.check_assumptions({}), from_scratch(active))
        active = [f for scope in mirror for f in scope]
        assert solver.assertions() == tuple(active)
        assert solver.check() is from_scratch(active)

    def test_pop_restores_satisfiability(self):
        x = Int("x")
        solver = Solver()
        solver.add(x >= 1)
        assert solver.check_assumptions({}) is CheckResult.SAT
        solver.push()
        solver.add(x <= 0)
        assert solver.check_assumptions({}) is CheckResult.UNSAT
        solver.pop()
        assert solver.check_assumptions({}) is CheckResult.SAT
        assert solver.check() is CheckResult.SAT

    def test_pop_outermost_scope_is_an_error(self):
        solver = Solver()
        with pytest.raises(IndexError):
            solver.pop()
        solver.push()
        solver.pop()
        with pytest.raises(IndexError):
            solver.pop()

    def test_session_reuses_formula_encodings(self):
        x = Int("x")
        solver = Solver()
        solver.add(x >= 0)
        shared = Or(x.equals(1), Not(And(x >= 2, x <= 3)))
        solver.check_assumptions({"a": shared})
        encoded = solver.incremental_stats.formulas_encoded
        solver.check_assumptions({"a": shared})
        assert solver.incremental_stats.formulas_encoded == encoded
        assert solver.incremental_stats.formulas_reused > 0


class TestSatSolverAssumptions:
    """SAT-level differential: assumptions vs the same literals as units."""

    @staticmethod
    def random_instance(rng):
        num_vars = rng.randint(3, 7)
        clauses = []
        for _ in range(rng.randint(2, 14)):
            width = rng.randint(1, 3)
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(width)
            ]
            clauses.append(clause)
        assumptions = []
        for variable in rng.sample(range(1, num_vars + 1), rng.randint(0, num_vars)):
            assumptions.append(rng.choice([-1, 1]) * variable)
        return num_vars, clauses, assumptions

    @pytest.mark.parametrize("seed", range(120))
    def test_solve_under_assumptions_matches_unit_clauses(self, seed):
        rng = random.Random(seed)
        num_vars, clauses, assumptions = self.random_instance(rng)
        incremental = SatSolver(num_vars, clauses)
        result = incremental.solve(assumptions)
        scratch = SatSolver(num_vars, clauses + [[a] for a in assumptions])
        expected = scratch.solve()
        assert (result is None) == (expected is None)
        if result is not None:
            for clause in clauses:
                assert any(
                    result[abs(lit)] == (lit > 0) for lit in clause
                ), f"clause {clause} unsatisfied"
            for assumption in assumptions:
                assert result[abs(assumption)] == (assumption > 0)
        else:
            # The final conflict set must be a subset of the assumptions that
            # is itself sufficient for unsatisfiability.
            core = incremental.core
            assert set(core) <= set(assumptions)
            witness = SatSolver(num_vars, clauses + [[lit] for lit in core])
            assert witness.solve() is None

    @pytest.mark.parametrize("seed", range(40))
    def test_clause_database_persists_across_calls(self, seed):
        rng = random.Random(seed)
        num_vars, clauses, assumptions = self.random_instance(rng)
        solver = SatSolver(num_vars, clauses)
        first = solver.solve(assumptions)
        # Re-solving with the same assumptions (learned clauses retained)
        # must not change the verdict; neither may an assumption-free solve.
        again = solver.solve(assumptions)
        assert (first is None) == (again is None)
        free = solver.solve()
        scratch = SatSolver(num_vars, clauses)
        assert (free is None) == (scratch.solve() is None)

    def test_contradictory_assumptions_core(self):
        solver = SatSolver(2, [[1, 2]])
        assert solver.solve([1, -1]) is None
        assert set(solver.core) == {1, -1}

    def test_assumption_beyond_known_variables_grows_the_solver(self):
        solver = SatSolver(1, [[1]])
        result = solver.solve([5])
        assert result is not None
        assert result[5] is True
