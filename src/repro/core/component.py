"""Component descriptors (Definition 2 of the paper).

A component is a triple ``(name, type signature, specification)``.  The
descriptor additionally carries the executable semantics (the tidyr/dplyr
re-implementation from :mod:`repro.components`) and an R renderer so that
synthesized programs can be printed the way the paper presents them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable, Sequence, Tuple

from ..components.errors import PRUNABLE_ERRORS
from ..dataframe.table import Table
from ..smt.terms import Formula
from .abstraction import SpecLevel, TableVars
from .arguments import ValueArgument
from .propagation import TransferFunction
from .specs import SPECIFICATIONS, TRANSFERS, SpecFunction, spec_true
from .types import Type

#: Executor signature: (input tables, value arguments, fresh-name prefix) -> table.
Executor = Callable[[Sequence[Table], Sequence[ValueArgument], str], Table]

#: Renderer signature: (rendered table arguments, value arguments) -> R call text.
Renderer = Callable[[Sequence[str], Sequence[ValueArgument]], str]

#: Batched-executor signature: (input tables, list of argument lists, fresh
#: prefix) -> one entry per argument list, either the result table or the
#: prunable error the plain executor would raise for those arguments.
BatchExecutor = Callable[
    [Sequence[Table], Sequence[Sequence[ValueArgument]], str], Sequence[object]
]


@dataclass(frozen=True)
class ValueParam:
    """A first-order parameter of a table transformer."""

    name: str
    param_type: Type


@dataclass(frozen=True)
class Component:
    """A higher-order table transformer with executable semantics and a spec."""

    name: str
    table_arity: int
    value_params: Tuple[ValueParam, ...]
    executor: Executor
    renderer: Renderer = None
    description: str = ""
    spec: SpecFunction = field(default=None)
    #: The compiled (tier-1) interpretation of the spec: an interval transfer
    #: function over attribute boxes, or ``None`` when only the formula
    #: interpretation exists (the prescreen then treats the component as
    #: unconstrained, which is always sound).  Defaults to the registry twin
    #: of :attr:`spec`; custom components overriding ``spec`` without
    #: supplying a matching transfer keep ``None``.
    transfer: TransferFunction = field(default=None)
    #: Optional batched executor sharing per-table setup across sibling
    #: argument lists (e.g. ``filter`` scanning one table under many
    #: predicates).  ``None`` falls back to looping :attr:`executor`; either
    #: way :meth:`execute_batch` is observationally equivalent to calling
    #: :meth:`execute` once per argument list.
    batch_executor: BatchExecutor = field(default=None)

    def __post_init__(self):
        if self.spec is None:
            object.__setattr__(self, "spec", SPECIFICATIONS.get(self.name, spec_true))
            if self.transfer is None:
                object.__setattr__(self, "transfer", TRANSFERS.get(self.name))

    @property
    def arity(self) -> int:
        """Total number of arguments (tables + first-order)."""
        return self.table_arity + len(self.value_params)

    def specification(
        self, output: TableVars, inputs: Sequence[TableVars], level: SpecLevel
    ) -> Formula:
        """The first-order specification relating output attributes to inputs."""
        return self.spec(output, inputs, level)

    def execute(
        self,
        tables: Sequence[Table],
        arguments: Sequence[ValueArgument],
        fresh_prefix: str,
    ) -> Table:
        """Run the component on concrete tables and argument values."""
        return self.executor(tables, arguments, fresh_prefix)

    def execute_batch(
        self,
        tables: Sequence[Table],
        argument_lists: Sequence[Sequence[ValueArgument]],
        fresh_prefix: str,
    ) -> Sequence[object]:
        """Run the component once per argument list over shared input tables.

        Returns one entry per argument list: the result table, or the
        prunable error :meth:`execute` raises for those arguments (errors are
        returned, not raised, so one failing sibling does not mask the rest).
        """
        if self.batch_executor is not None:
            return self.batch_executor(tables, argument_lists, fresh_prefix)
        results = []
        for arguments in argument_lists:
            try:
                results.append(self.executor(tables, arguments, fresh_prefix))
            except PRUNABLE_ERRORS as error:
                results.append(error)
        return results

    def render_r(self, table_args: Sequence[str], arguments: Sequence[ValueArgument]) -> str:
        """Render a call to this component as R source text."""
        if self.renderer is not None:
            return self.renderer(table_args, arguments)
        rendered = list(table_args) + [argument.render_r() for argument in arguments]
        return f"{self.name}({', '.join(rendered)})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Component {self.name}/{self.arity}>"


@dataclass(frozen=True)
class ComponentLibrary:
    """The component set :math:`\\Lambda = \\Lambda_T \\cup \\Lambda_v` of a synthesis problem."""

    table_transformers: Tuple[Component, ...]
    value_transformer_names: Tuple[str, ...] = ()

    def by_name(self, name: str) -> Component:
        """Look up a table transformer by name."""
        for component in self.table_transformers:
            if component.name == name:
                return component
        raise KeyError(f"unknown component {name!r}")

    def names(self) -> Tuple[str, ...]:
        """Names of all table transformers, in registration order."""
        return tuple(component.name for component in self.table_transformers)

    def restricted_to(self, names: Sequence[str]) -> "ComponentLibrary":
        """A library containing only the named table transformers."""
        return ComponentLibrary(
            tuple(component for component in self.table_transformers if component.name in set(names)),
            self.value_transformer_names,
        )

    def version_hash(self) -> bytes:
        """A content hash of the library's component signatures.

        Covers every table transformer's name, arity and parameter signature
        plus the value-transformer names -- the structural identity that
        determines what a cached execution or specification fact *means*.
        The warm-start knowledge base (:mod:`repro.engine.kb`) mixes this
        hash into every key, so facts computed under a different library
        version are never found rather than silently replayed.
        """
        hasher = blake2b(digest_size=16)
        for component in self.table_transformers:
            hasher.update(component.name.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(str(component.table_arity).encode("ascii"))
            for param in component.value_params:
                hasher.update(b"\x01")
                hasher.update(param.name.encode("utf-8"))
                hasher.update(b"\x00")
                hasher.update(str(param.param_type.value).encode("utf-8"))
            hasher.update(b"\x02")
        for name in self.value_transformer_names:
            hasher.update(b"\x03")
            hasher.update(name.encode("utf-8"))
        return hasher.digest()

    def __iter__(self):
        return iter(self.table_transformers)

    def __len__(self) -> int:
        return len(self.table_transformers)
