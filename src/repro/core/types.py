"""The DSL type system (Figure 3 of the paper).

The synthesizer distinguishes table-typed holes (filled during sketch
generation by binding input variables or refining with table transformers)
from first-order holes (filled during sketch completion by enumerating
inhabitants with respect to a concrete table).  The first-order argument
*kinds* below refine the paper's ``cols`` / ``row -> bool`` / value types into
the concrete argument grammars of the built-in component library.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    """Types of holes in a hypothesis."""

    #: A table (``tbl`` in Figure 3).
    TABLE = "tbl"
    #: A list of column names (``cols``).
    COLS = "cols"
    #: A single column name.
    COL = "col"
    #: A predicate ``row -> bool`` (argument of ``filter``).
    PREDICATE = "row -> bool"
    #: An aggregation ``col x rows -> num`` (argument of ``summarise``).
    AGGREGATION = "aggregation"
    #: A per-row numeric expression (argument of ``mutate``).
    MUTATION = "row -> num"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Argument kinds that are filled during sketch completion rather than sketch
#: generation: everything except TABLE.
FIRST_ORDER_TYPES = (
    Type.COLS,
    Type.COL,
    Type.PREDICATE,
    Type.AGGREGATION,
    Type.MUTATION,
)


def is_table_type(value_type: Type) -> bool:
    """True for the ``tbl`` type."""
    return value_type is Type.TABLE


def is_first_order_type(value_type: Type) -> bool:
    """True for every first-order (non-table) argument type."""
    return value_type in FIRST_ORDER_TYPES
