"""Tests for deduction memoization and the layered formula caches."""

import itertools

from repro.core import SynthesisConfig, standard_library, synthesize
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import initial_hypothesis, refine, table_holes
from repro.dataframe import Table
from repro.smt.solver import (
    CheckResult,
    Solver,
    clear_formula_cache,
    formula_cache_stats,
)
from repro.smt.terms import Int

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}

T1 = Table(["id", "name", "age", "gpa"],
           [[1, "Alice", 8, 4.0], [2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]])
T3 = Table(["id", "name", "age"],
           [[2, "Bob", 18], [3, "Tom", 12]])


def build_chain(*names):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    return hypothesis


class TestVerdictMemo:
    def test_repeated_query_is_a_cache_hit(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        hypothesis = build_chain("select", "filter")
        first = engine.deduce(hypothesis)
        smt_calls = engine.stats.smt_calls
        second = engine.deduce(hypothesis)
        assert first is second is True
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses >= 1
        assert engine.stats.smt_calls == smt_calls  # no new SMT work

    def test_cached_rejection_still_counts_as_rejected(self):
        # With lemma learning off, the second rejection is a verdict-cache hit.
        engine = DeductionEngine(inputs=[T1], output=T1, cdcl=False)
        hypothesis = build_chain("select")  # must drop a column: UNSAT
        assert engine.deduce(hypothesis) is False
        rejected = engine.stats.hypotheses_rejected
        assert engine.deduce(hypothesis) is False
        assert engine.stats.hypotheses_rejected == rejected + 1
        assert engine.stats.cache_hits == 1

    def test_lemma_store_answers_repeated_rejections_before_the_cache(self):
        # With lemma learning on, the first rejection mines a blocking lemma,
        # and the replay is answered by the store without a cache probe.
        # (Prescreen off: tier 1 would decide this chain before the SMT
        # tier, and prescreen rejections deliberately skip lemma mining.)
        engine = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        hypothesis = build_chain("select")
        assert engine.deduce(hypothesis) is False
        assert engine.stats.lemmas_learned >= 1
        rejected = engine.stats.hypotheses_rejected
        assert engine.deduce(hypothesis) is False
        assert engine.stats.hypotheses_rejected == rejected + 1
        assert engine.stats.lemma_prunes == 1
        assert engine.stats.cache_hits == 0

    def test_verdict_key_includes_level_and_partial_evaluation(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        hypothesis = build_chain("filter")
        key = engine._verdict_key(hypothesis, {})
        assert key[0] is engine.level
        assert key[1] is engine.use_partial_evaluation

    def test_hit_rate_surfaces_through_synthesis_stats(self):
        # A multi-component task re-deduces structurally identical partial
        # programs during completion, so the verdict memo must report hits.
        inputs = [Table(["name", "year", "price"],
                        [["p1", 2017, 10], ["p1", 2018, 12],
                         ["p2", 2017, 20], ["p2", 2018, 24]])]
        output = Table(["name", "2017", "2018"],
                       [["p1", 10, 12], ["p2", 20, 24]])
        result = synthesize(inputs, output, config=SynthesisConfig(timeout=30.0))
        assert result.solved
        assert result.stats.deduction.cache_hits > 0
        assert result.stats.deduction_cache_hit_rate > 0.0


class TestAbstractionCache:
    def test_equal_attribute_vectors_share_a_formula(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        engine.deduce(build_chain("filter"))
        baseline_hits = engine.stats.abstraction_cache.hits
        engine.deduce(build_chain("select"))
        # The example formula fragments (inputs + output) are reused.
        assert engine.stats.abstraction_cache.hits >= baseline_hits
        assert engine.stats.abstraction_cache.misses > 0


class TestFormulaCache:
    def setup_method(self):
        clear_formula_cache()

    def teardown_method(self):
        clear_formula_cache()

    def test_identical_formulas_share_one_check(self):
        x = Int("x")
        formula = (x >= 1) & (x <= 3)
        first = Solver()
        first.add(formula)
        assert first.check() is CheckResult.SAT
        misses = formula_cache_stats().misses
        second = Solver()
        second.add(formula)
        assert second.check() is CheckResult.SAT
        assert formula_cache_stats().hits == 1
        assert formula_cache_stats().misses == misses

    def test_cached_sat_result_restores_a_model(self):
        x = Int("x")
        formula = (x >= 2) & (x <= 2)
        first = Solver()
        first.add(formula)
        first.check()
        second = Solver()
        second.add(formula)
        assert second.check() is CheckResult.SAT
        model = second.model()
        assert model is not None and model["x"] == 2
        # The cached model must not be aliased between solvers.
        model["x"] = 99
        third = Solver()
        third.add(formula)
        third.check()
        assert third.model()["x"] == 2

    def test_unsat_results_are_cached_too(self):
        x = Int("x")
        formula = (x >= 3) & (x <= 1)
        for _ in range(2):
            solver = Solver()
            solver.add(formula)
            assert solver.check() is CheckResult.UNSAT
        assert formula_cache_stats().hits == 1

    def test_per_run_solver_cache_delta(self):
        inputs = [T1]
        output = T3
        config = SynthesisConfig(timeout=30.0)
        first = synthesize(inputs, output, config=config)
        second = synthesize(inputs, output, config=config)
        assert first.solved and second.solved
        # The second run replays the first run's queries against the warm
        # process-wide cache, so its per-run delta must show hits.
        assert second.stats.solver_cache.hits > 0
        assert second.stats.solver_cache_hit_rate > 0.0
