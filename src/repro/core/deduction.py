"""SMT-based deduction (Section 6, Algorithm 2 of the paper).

Given a hypothesis and the input-output example, the deduction engine builds
a Presburger-arithmetic formula combining

* the specification :math:`\\Phi(H)` of the hypothesis (Figure 12), obtained
  by conjoining the first-order specs of its components, with complete
  subterms replaced by the abstraction of their partially-evaluated value;
* :math:`\\varphi_{in}`: every unbound table hole must correspond to one of
  the input tables;
* :math:`\\varphi_{out}`: the root must correspond to the output table;
* the abstraction :math:`\\alpha` of every example table,

and checks satisfiability.  UNSAT means the hypothesis can never be completed
into a program consistent with the example and is pruned.

On top of Algorithm 2, the engine *learns from failures* (conflict-driven
lemma learning): every rejected hypothesis is replayed against a persistent
incremental solver session -- the example formula and :math:`\\varphi_{out}`
are asserted once per synthesis run, the per-hypothesis constraints are
pushed as named, retractable assumptions -- and the resulting unsat core is
mined into a blocking lemma over the offending component subsequence (see
:mod:`repro.core.lemmas`).  Later hypotheses exhibiting the same structure
are rejected by a subset test without ever touching the solver.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataframe.profiling import execution_stats
from ..dataframe.table import Table
from ..engine.cache import CacheStats, ExecutionCache, LRUCache
from ..smt.solver import (
    CheckResult,
    IncrementalStats,
    Solver,
    formula_cache_lookup,
    formula_cache_store,
)
from ..smt.terms import BoolVal, Formula, conjoin, disjoin
from .abstraction import (
    AbstractionCache,
    ExampleBaseline,
    SpecLevel,
    TableVars,
    nonnegativity,
    table_attribute_vector,
)
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    iter_nodes,
    partial_evaluate,
)
from .lemmas import LemmaStore
from .propagation import prescreen_infeasible
from .types import Type


#: Default bound of the per-engine verdict memo.
VERDICT_CACHE_SIZE = 32768

#: Bound on live residual-SMT sessions per engine (LRU-evicted).  Sessions
#: are keyed by sketch path, and one sketch's per-hole fills arrive as a
#: burst of queries with the same key, so a small working set suffices; each
#: session additionally self-recycles at ``SESSION_CLAUSE_LIMIT`` clauses.
RESIDUAL_SESSION_LIMIT = 128

#: Default bound on incremental-session solves spent mining lemmas per run.
#: Mining is an investment (each mined core costs a replay solve plus a few
#: minimization solves); the budget keeps a pathological run from spending
#: its whole time budget on cores, and -- being a count, not a clock -- keeps
#: parallel and serial runs bit-identical.
LEMMA_MINING_BUDGET = 800

#: Cores at most this large are deletion-minimized before becoming lemmas.
#: Smaller cores make strictly more general lemmas (fewer descriptors to
#: match), which is where most of the sibling pruning comes from.
MINIMIZE_CORE_LIMIT = 12

#: Assumption name for the per-hypothesis sanity constraints.  Excluded from
#: lemma keys: every deduction query asserts nonnegativity for all of its
#: nodes, so a matching hypothesis entails the member automatically.
_NONNEG = ("nonneg",)


@dataclass
class DeductionStats:
    """Counters describing the work done by the deduction engine."""

    smt_calls: int = 0
    smt_time: float = 0.0
    hypotheses_checked: int = 0
    hypotheses_rejected: int = 0
    evaluation_failures: int = 0
    #: Deduction queries decided UNSAT by the tier-1 interval prescreen
    #: (no ``Formula`` was built, no solver ran).
    prescreen_decided: int = 0
    #: Queries the prescreen swept inconclusively before falling through to
    #: the SMT tier.
    prescreen_fallback: int = 0
    #: Hypotheses rejected by the lemma store without an SMT query.
    lemma_prunes: int = 0
    #: Blocking lemmas mined from unsat cores and stored.
    lemmas_learned: int = 0
    #: Unsat cores extracted from the incremental session.
    cores_extracted: int = 0
    #: Sum of (minimized) core sizes, for the mean-core-size report.
    core_size_total: int = 0
    #: Incremental-session solves spent mining and minimizing cores.
    lemma_mining_solves: int = 0
    #: Residual-SMT sessions created (one per distinct sketch path, LRU-bounded).
    smt_sessions: int = 0
    #: Residual queries served by an already-open session -- the encodings,
    #: clausal flattenings and learned clauses of earlier sibling queries
    #: were reused instead of re-built.
    smt_session_reuse: int = 0
    #: Activity of the persistent incremental solver session (clause reuse,
    #: recycles, theory conflicts).
    incremental: IncrementalStats = field(default_factory=IncrementalStats)
    #: Verdict-memo accounting: a hit means an entire SMT query was skipped.
    #: (The counters are written directly by the verdict LRU cache.)
    verdict_cache: CacheStats = field(default_factory=CacheStats)
    #: Hit/miss counters of the abstraction-formula memo.
    abstraction_cache: CacheStats = field(default_factory=CacheStats)

    @property
    def cache_hits(self) -> int:
        """Deduction queries answered from the verdict memo."""
        return self.verdict_cache.hits

    @property
    def cache_misses(self) -> int:
        """Deduction queries that had to build and discharge an SMT query."""
        return self.verdict_cache.misses

    @property
    def cache_lookups(self) -> int:
        """Total number of verdict-cache probes."""
        return self.verdict_cache.lookups

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of deduction queries answered from the verdict memo."""
        return self.verdict_cache.hit_rate

    @property
    def prescreen_queries(self) -> int:
        """Queries that reached the tier-1 prescreen (decided + fallback)."""
        return self.prescreen_decided + self.prescreen_fallback

    @property
    def prescreen_hit_rate(self) -> float:
        """Fraction of prescreened queries decided without the solver."""
        if self.prescreen_queries == 0:
            return 0.0
        return self.prescreen_decided / self.prescreen_queries

    @property
    def mean_core_size(self) -> float:
        """Average size of the mined unsat cores (0.0 when none were mined)."""
        if self.cores_extracted == 0:
            return 0.0
        return self.core_size_total / self.cores_extracted

    def merge(self, other: "DeductionStats") -> None:
        """Accumulate another stats object into this one."""
        self.smt_calls += other.smt_calls
        self.smt_time += other.smt_time
        self.hypotheses_checked += other.hypotheses_checked
        self.hypotheses_rejected += other.hypotheses_rejected
        self.evaluation_failures += other.evaluation_failures
        self.prescreen_decided += other.prescreen_decided
        self.prescreen_fallback += other.prescreen_fallback
        self.lemma_prunes += other.lemma_prunes
        self.lemmas_learned += other.lemmas_learned
        self.cores_extracted += other.cores_extracted
        self.core_size_total += other.core_size_total
        self.lemma_mining_solves += other.lemma_mining_solves
        self.smt_sessions += other.smt_sessions
        self.smt_session_reuse += other.smt_session_reuse
        self.incremental.merge(other.incremental)
        self.verdict_cache.merge(other.verdict_cache)
        self.abstraction_cache.merge(other.abstraction_cache)


@dataclass
class DeductionEngine:
    """Builds and discharges the deduction queries for one synthesis problem."""

    inputs: Sequence[Table]
    output: Table
    level: SpecLevel = SpecLevel.SPEC2
    use_partial_evaluation: bool = True
    enabled: bool = True
    #: Conflict-driven lemma learning: mine unsat cores into blocking lemmas
    #: and consult the lemma store before building SMT queries.
    cdcl: bool = True
    #: Tier-1 interval prescreen: sweep each query with compiled attribute
    #: propagation (:mod:`repro.core.propagation`) and answer UNSAT without
    #: building a formula when some attribute box empties.  Conservative by
    #: construction -- disabling it (the ``--no-prescreen`` ablation) changes
    #: how much solver work runs, never a verdict.
    prescreen: bool = True
    #: The lemma store (created fresh per engine when not provided; lemmas
    #: rest on the example formula and must never outlive the example).
    lemma_store: Optional[LemmaStore] = None
    #: Bound on incremental-session solves spent mining cores this run.
    mining_budget: int = LEMMA_MINING_BUDGET
    #: Warm-start tier (:class:`repro.engine.kb.KBView`): a disk-backed,
    #: library-version-keyed store of executions, attribute vectors and
    #: mined lemmas shared across runs.  ``None`` keeps every tier local.
    kb_view: Optional[object] = None
    stats: DeductionStats = field(default_factory=DeductionStats)

    def __post_init__(self):
        self.baseline = ExampleBaseline.from_tables(self.inputs)
        self._input_vars = [TableVars(f"x{i + 1}") for i in range(len(self.inputs))]
        self._output_vars = TableVars("y")
        #: Cross-candidate cache of subtree evaluations (see partial_evaluate).
        self.evaluation_memo: Dict = {}
        #: Fingerprint-keyed memo of concrete component executions: two
        #: hypotheses whose sub-programs produce identical intermediate
        #: tables share the execution above them.  Hit/miss accounting goes
        #: to the process-wide execution counters (sliced per run).
        self.execution_cache = ExecutionCache(
            stats=execution_stats().exec_cache, kb=self.kb_view
        )
        #: Cache of table attribute vectors used by the abstraction function,
        #: keyed by table fingerprint so structurally identical tables
        #: produced by different hypotheses share one entry.
        self._attribute_cache: Dict[bytes, tuple] = {}
        #: Identity of this example's baseline in the warm-start tier
        #: (attribute vectors depend on it through newCols/newVals).
        self._baseline_digest = None
        self._kb_task_key = None
        if self.kb_view is not None:
            from ..engine.kb import baseline_digest

            self._baseline_digest = baseline_digest(self.inputs)
            self._kb_task_key = self.kb_view.task_key(
                self.inputs, self.output, self.level
            )
        #: LRU-bounded memo of abstraction formulas (hits/misses are surfaced
        #: through ``stats.abstraction_cache``).
        self._abstraction = AbstractionCache(stats=self.stats.abstraction_cache)
        #: Caches of formula fragments (specs, bindings) -- the same fragments
        #: are re-assembled for thousands of deduction queries.
        self._spec_cache: Dict[tuple, Formula] = {}
        self._binding_cache: Dict[tuple, Formula] = {}
        self._nonneg_cache: Dict[tuple, Formula] = {}
        #: LRU-bounded memo of deduction verdicts, keyed by the hypothesis
        #: signature plus the spec level and partial-evaluation flag.  The SMT
        #: query depends only on the hypothesis *structure* (components,
        #: bindings, which holes are filled) and on the attribute vectors of
        #: the evaluated subterms -- not on the literal hole values -- so
        #: candidates whose completions produce tables with identical
        #: abstractions share a single query.
        self._verdict_cache: "LRUCache[tuple, bool]" = LRUCache(
            maxsize=VERDICT_CACHE_SIZE, stats=self.stats.verdict_cache
        )
        if self.cdcl and self.lemma_store is None:
            self.lemma_store = LemmaStore()
        # Lemma warm start is an opt-in tier: lemmas rest on one example's
        # formula, so imports are restricted to the byte-identical task key
        # (same input/output fingerprints, same spec level) -- under which
        # they are sound but shift work between the store and the solver.
        if (
            self.cdcl
            and self.lemma_store is not None
            and self.kb_view is not None
            and self.kb_view.reuse_lemmas
        ):
            self.lemma_store.import_entries(
                self.kb_view.get_lemmas(self._kb_task_key)
            )
        #: Ground attribute vectors of the example tables, precomputed for
        #: the tier-1 prescreen (the output's ``group`` stays symbolic there,
        #: exactly as in the example formula).
        self._input_attributes = [self.table_attributes(t) for t in self.inputs]
        self._output_attributes = self.table_attributes(self.output)
        #: Persistent incremental solver session used to replay rejected
        #: hypotheses under named assumptions (created lazily; the example
        #: formula and phi_out are asserted exactly once per run).
        self._incremental: Optional[Solver] = None
        #: Residual-SMT sessions, keyed by sketch path (the structural shape
        #: of a query: components, bindings, which subterms are evaluated --
        #: everything except the evaluated tables' attribute values).  The
        #: sketch completer's sibling fills produce bursts of queries with
        #: the same key, which then differ only in their named assumptions.
        self._residual_sessions: "OrderedDict[tuple, Solver]" = OrderedDict()
        self._example_formula = self._build_example_formula()

    # ------------------------------------------------------------------
    def _build_example_formula(self) -> Formula:
        constraints = []
        for table, variables in zip(self.inputs, self._input_vars):
            constraints.append(self._abstract(table, variables))
        constraints.append(
            self._abstract(self.output, self._output_vars, symbolic_group=True)
        )
        return conjoin(constraints)

    # ------------------------------------------------------------------
    def node_vars(self, node_id: int) -> TableVars:
        """The symbolic attribute vector of hypothesis node *node_id*."""
        return TableVars(f"n{node_id}")

    def table_attributes(self, table: Table) -> tuple:
        """The (row, col, group, newCols, newVals) attribute vector of a table.

        Under Spec 1 the last three attributes never reach a formula, so the
        whole-table scans they require are skipped (zeroing them also keeps
        the abstraction/verdict cache keys from splitting on unused fields).
        """
        fingerprint = table.fingerprint()
        attributes = self._attribute_cache.get(fingerprint)
        if attributes is None:
            if self.kb_view is not None:
                attributes = self.kb_view.get_attributes(
                    fingerprint, self.level, self._baseline_digest
                )
            if attributes is None:
                attributes = table_attribute_vector(table, self.level, self.baseline)
                if self.kb_view is not None:
                    self.kb_view.put_attributes(
                        fingerprint, self.level, self._baseline_digest, attributes
                    )
            self._attribute_cache[fingerprint] = attributes
        return attributes

    def _abstract(self, table: Table, variables: TableVars, symbolic_group: bool = False):
        """Cached version of :func:`abstract_table` (attribute vectors are memoised)."""
        attributes = self.table_attributes(table)
        return self._abstraction.abstract(attributes, variables, self.level, symbolic_group)

    def _component_spec(self, node: Apply) -> Formula:
        """Cached first-order specification of one application node."""
        key = (node.component.name, node.node_id, tuple(child.node_id for child in node.table_children))
        cached = self._spec_cache.get(key)
        if cached is None:
            inputs = [self.node_vars(child.node_id) for child in node.table_children]
            cached = node.component.specification(self.node_vars(node.node_id), inputs, self.level)
            self._spec_cache[key] = cached
        return cached

    def _binding(self, node_id: int, input_index: Optional[int]) -> Formula:
        """Cached phi_in constraint for one table hole."""
        key = (node_id, input_index)
        cached = self._binding_cache.get(key)
        if cached is None:
            variables = self.node_vars(node_id)
            if input_index is not None:
                cached = variables.equal_to(self._input_vars[input_index], self.level)
            else:
                cached = disjoin(
                    variables.equal_to(input_vars, self.level)
                    for input_vars in self._input_vars
                )
            self._binding_cache[key] = cached
        return cached

    def _nonnegativity(self, node_ids: tuple) -> Formula:
        """Cached sanity constraints for a set of hypothesis nodes."""
        cached = self._nonneg_cache.get(node_ids)
        if cached is None:
            variables = [self.node_vars(node_id) for node_id in node_ids]
            cached = nonnegativity(
                variables + self._input_vars + [self._output_vars], self.level
            )
            self._nonneg_cache[node_ids] = cached
        return cached

    def specification(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table]
    ) -> Formula:
        """The formula :math:`\\Phi(H)` of Figure 12."""
        constraints = []

        def walk(node: Hypothesis) -> None:
            variables = self.node_vars(node.node_id)
            if node.node_id in evaluated:
                # Complete subterm: use the abstraction of its concrete value.
                constraints.append(self._abstract(evaluated[node.node_id], variables))
                return
            if isinstance(node, Hole):
                # Unknown leaf: no information (the spec is "true").
                return
            constraints.append(self._component_spec(node))
            for child in node.table_children:
                walk(child)

        walk(hypothesis)
        return conjoin(constraints)

    def _query_node_ids(self, hypothesis: Hypothesis) -> tuple:
        """The node ids whose attribute vectors appear in the query."""
        return tuple(
            sorted(
                node.node_id
                for node in iter_nodes(hypothesis)
                if not isinstance(node, Hole) or node.hole_type is Type.TABLE
            )
        )

    def build_query(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table]
    ) -> Formula:
        """The full satisfiability query :math:`\\psi` of Algorithm 2."""
        constraints = [
            self.specification(hypothesis, evaluated),
            self._example_formula,
            self._nonnegativity(self._query_node_ids(hypothesis)),
        ]

        # phi_in: every table hole corresponds to one of the input variables.
        for node in iter_nodes(hypothesis):
            if isinstance(node, Hole) and node.hole_type is Type.TABLE:
                constraints.append(self._binding(node.node_id, node.binding))

        # phi_out: the root corresponds to the output table.
        constraints.append(
            self.node_vars(hypothesis.node_id).equal_to(self._output_vars, self.level)
        )
        return conjoin(constraints)

    # ------------------------------------------------------------------
    def deduce(self, hypothesis: Hypothesis, learn: bool = True) -> bool:
        """Algorithm 2, staged: return ``False`` when the hypothesis can be rejected.

        The query passes through progressively more expensive tiers, each of
        which may reject (never accept) before the next one runs:

        1. partial evaluation (a complete subterm that fails to execute);
        2. the conflict-driven lemma store (with CDCL enabled, consulted
           first so path-keyed lemmas keep absorbing whole families);
        3. the verdict memo;
        4. the tier-1 interval prescreen -- compiled attribute propagation
           that decides ground-heavy queries without constructing a
           ``Formula`` (see :mod:`repro.core.propagation`);
        5. the incremental SMT stack (tier 2), the only tier that can also
           *accept*.

        When *learn* is set, every tier-2 rejection is mined for a new lemma.
        Callers issuing bulk near-duplicate queries (the sketch completer's
        per-hole fills) pass ``learn=False``: they still benefit from the
        store, but only hypothesis- and sketch-level conflicts are worth the
        mining replay.  Prescreen-decided rejections are never mined: the
        replay solve they would need costs exactly the solver work the
        prescreen exists to skip.
        """
        self.stats.hypotheses_checked += 1
        evaluated: Dict[int, Table] = {}
        if self.use_partial_evaluation:
            try:
                evaluated = partial_evaluate(
                    hypothesis, self.inputs,
                    memo=self.evaluation_memo, exec_cache=self.execution_cache,
                )
            except EvaluationFailure:
                self.stats.evaluation_failures += 1
                self.stats.hypotheses_rejected += 1
                return False
        if not self.enabled:
            return True

        # Lemma pruning: mined conflicts are keyed by root-relative structure,
        # so they only apply to hypotheses rooted at node 0 (all of the
        # synthesizer's are; the guard keeps ad-hoc engine uses sound).
        use_cdcl = (
            self.cdcl and self.lemma_store is not None and hypothesis.node_id == 0
        )
        # The descriptor walk is only worth paying once there is a lemma that
        # could match (the store starts empty on every run).
        if use_cdcl and len(self.lemma_store):
            descriptors, _ = self._lemma_parts(hypothesis, evaluated)
            if self.lemma_store.blocks(descriptors):
                self.stats.lemma_prunes += 1
                self.stats.hypotheses_rejected += 1
                return False

        cache_key = self._verdict_key(hypothesis, evaluated)
        cached = self._verdict_cache.get(cache_key)
        if cached is not None:
            if not cached:
                self.stats.hypotheses_rejected += 1
            return cached

        if self.prescreen:
            if prescreen_infeasible(
                hypothesis, evaluated, self.table_attributes,
                self._input_attributes, self._output_attributes, self.level,
            ):
                self.stats.prescreen_decided += 1
                self.stats.hypotheses_rejected += 1
                self._verdict_cache.put(cache_key, False)
                return False
            self.stats.prescreen_fallback += 1

        query = self.build_query(hypothesis, evaluated)
        started = time.perf_counter()
        result = self._check_residual(hypothesis, evaluated, query)
        self.stats.smt_calls += 1
        self.stats.smt_time += time.perf_counter() - started
        feasible = result is not CheckResult.UNSAT
        self._verdict_cache.put(cache_key, feasible)
        if not feasible:
            self.stats.hypotheses_rejected += 1
            if use_cdcl and learn:
                self._mine_lemma(hypothesis, evaluated)
        return feasible

    # ------------------------------------------------------------------
    # Residual solving (tier 2): formula cache, then per-path sessions
    # ------------------------------------------------------------------
    def _check_residual(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table], query: Formula
    ) -> CheckResult:
        """Decide one residual query (everything the cheaper tiers passed on).

        The process-wide formula cache is probed first -- with exactly the
        accounting :meth:`Solver.check` would produce, so warm-cache replays
        stay byte-identical to the monolithic path this replaced.  Misses go
        to the persistent session keyed by the query's sketch path: the base
        of the query (example formula, phi_out, bindings, component specs)
        is asserted once per session, and only the evaluated subterms'
        abstractions -- the part that varies between sibling queries -- are
        passed as per-call assumptions.  The decided verdict is written back
        to the formula cache, so later structurally identical queries (and
        later runs) hit tier 0.
        """
        if isinstance(query, BoolVal):
            return CheckResult.SAT if query.value else CheckResult.UNSAT
        cached = formula_cache_lookup(query)
        if cached is not None:
            return cached[0]
        session, named = self._residual_session(hypothesis, evaluated)
        result = session.check_assumptions(named)
        formula_cache_store(query, result, session.model())
        return result

    def _residual_session(
        self, hypothesis: Hypothesis, evaluated: Dict[int, Table]
    ) -> Tuple[Solver, Dict[tuple, Formula]]:
        """The (possibly reused) session and assumptions for one query.

        The walk mirrors :meth:`specification` and :meth:`build_query`
        fragment for fragment, splitting them by what varies under a fixed
        sketch path: abstractions of top-most evaluated *application* nodes
        vary with the candidate's concrete tables (named assumptions);
        everything else -- phi_in bindings, unevaluated components' specs,
        the abstractions of evaluated *bound holes* (input tables, fixed per
        binding), the example formula, nonnegativity and phi_out -- is
        invariant and forms the session base.
        """
        key_parts: List[tuple] = []
        named: Dict[tuple, Formula] = {}
        base: List[Formula] = []

        def walk(node: Hypothesis, under_eval: bool) -> None:
            if isinstance(node, Hole):
                if node.hole_type is Type.TABLE:
                    key_parts.append(("x", node.node_id, node.binding))
                    base.append(self._binding(node.node_id, node.binding))
                    if node.node_id in evaluated and not under_eval:
                        base.append(
                            self._abstract(
                                evaluated[node.node_id], self.node_vars(node.node_id)
                            )
                        )
                return
            if node.node_id in evaluated and not under_eval:
                key_parts.append(("t", node.node_id))
                named[("eval", node.node_id)] = self._abstract(
                    evaluated[node.node_id], self.node_vars(node.node_id)
                )
                # The subtree below an evaluated subterm contributes no specs
                # or abstractions, but phi_in still binds its table holes.
                for child in node.table_children:
                    walk(child, True)
                return
            key_parts.append(("c", node.node_id, node.component.name))
            if not under_eval:
                base.append(self._component_spec(node))
            for child in node.table_children:
                walk(child, under_eval)

        walk(hypothesis, False)
        key = tuple(key_parts)
        session = self._residual_sessions.get(key)
        if session is None:
            session = Solver()
            # All sessions account into the engine's incremental counters.
            session.incremental_stats = self.stats.incremental
            session.add(self._example_formula)
            session.add(self._nonnegativity(self._query_node_ids(hypothesis)))
            session.add(
                self.node_vars(hypothesis.node_id).equal_to(
                    self._output_vars, self.level
                )
            )
            session.add(*base)
            self._residual_sessions[key] = session
            self.stats.smt_sessions += 1
            if len(self._residual_sessions) > RESIDUAL_SESSION_LIMIT:
                self._residual_sessions.popitem(last=False)
        else:
            self._residual_sessions.move_to_end(key)
            self.stats.smt_session_reuse += 1
        return session, named

    # ------------------------------------------------------------------
    # Conflict-driven lemma learning
    # ------------------------------------------------------------------
    def _lemma_parts(
        self,
        hypothesis: Hypothesis,
        evaluated: Dict[int, Table],
        with_formulas: bool = False,
    ):
        """The hypothesis as lemma descriptors (see :mod:`repro.core.lemmas`).

        Returns ``(descriptors, named)``: the descriptor set used for lemma
        matching, and -- when *with_formulas* is set -- the mapping from each
        descriptor to the query fragment it stands for (the named assumptions
        of the mining replay).  The walk mirrors :meth:`specification` and
        :meth:`build_query` exactly: one descriptor per asserted fragment.

        Bound table holes additionally contribute the weakened descriptor
        ``("bind", path, None)`` to the *matching* set (never to the named
        assumptions): a specific binding entails the any-input disjunction,
        so lemmas mined from unbound holes soundly block bound ones.
        """
        descriptors = set()
        named: Dict[tuple, Formula] = {}

        def walk(node: Hypothesis, path: Tuple[int, ...], under_eval: bool) -> None:
            if isinstance(node, Hole):
                if node.hole_type is Type.TABLE:
                    descriptor = ("bind", path, node.binding)
                    descriptors.add(descriptor)
                    if with_formulas:
                        named[descriptor] = self._binding(node.node_id, node.binding)
                    if node.binding is not None:
                        descriptors.add(("bind", path, None))
                    if node.node_id in evaluated and not under_eval:
                        attributes = self.table_attributes(evaluated[node.node_id])
                        descriptor = ("eval", path, attributes)
                        descriptors.add(descriptor)
                        if with_formulas:
                            named[descriptor] = self._abstract(
                                evaluated[node.node_id], self.node_vars(node.node_id)
                            )
                return
            if node.node_id in evaluated and not under_eval:
                attributes = self.table_attributes(evaluated[node.node_id])
                descriptor = ("eval", path, attributes)
                descriptors.add(descriptor)
                if with_formulas:
                    named[descriptor] = self._abstract(
                        evaluated[node.node_id], self.node_vars(node.node_id)
                    )
                # The subtree below an evaluated subterm contributes no specs
                # or abstractions, but phi_in still binds its table holes.
                for index, child in enumerate(node.table_children):
                    walk(child, path + (index,), True)
                return
            if not under_eval:
                descriptor = ("spec", path, node.component.name)
                descriptors.add(descriptor)
                if with_formulas:
                    named[descriptor] = self._component_spec(node)
            for index, child in enumerate(node.table_children):
                walk(child, path + (index,), under_eval)

        walk(hypothesis, (), False)
        return frozenset(descriptors), named

    def _incremental_session(self) -> Solver:
        """The per-run solver session (example formula asserted once)."""
        if self._incremental is None:
            session = Solver()
            session.incremental_stats = self.stats.incremental
            session.add(self._example_formula)
            session.add(self.node_vars(0).equal_to(self._output_vars, self.level))
            self._incremental = session
        return self._incremental

    def _mine_lemma(self, hypothesis: Hypothesis, evaluated: Dict[int, Table]) -> None:
        """Replay a rejected hypothesis under assumptions and learn its core."""
        store = self.lemma_store
        if store.maxsize is not None and len(store) >= store.maxsize:
            return
        if self.stats.lemma_mining_solves >= self.mining_budget:
            return
        _, named = self._lemma_parts(hypothesis, evaluated, with_formulas=True)
        named[_NONNEG] = self._nonnegativity(self._query_node_ids(hypothesis))
        session = self._incremental_session()
        solves_before = session.incremental_stats.checks
        # ``known_unsat``: the monolithic check just refuted exactly this
        # conjunction (base + named re-partition the query of Algorithm 2),
        # so the replay skips the confirming solve.  Boolean-structured
        # queries still fall to the lazy path, which can disagree with the
        # monolithic fast paths near the theory solver's conservative
        # limits; a lemma is only mined from a definite UNSAT.
        result = session.check_assumptions(named, known_unsat=True)
        if result is CheckResult.UNSAT:
            core = session.unsat_core()
            if 0 < len(core) <= MINIMIZE_CORE_LIMIT:
                core = session.minimize_core()
            lemma = [descriptor for descriptor in core if descriptor != _NONNEG]
            if lemma:
                self.stats.cores_extracted += 1
                self.stats.core_size_total += len(lemma)
                if store.add(lemma):
                    self.stats.lemmas_learned += 1
        self.stats.lemma_mining_solves += (
            session.incremental_stats.checks - solves_before
        )

    def _verdict_key(self, hypothesis: Hypothesis, evaluated: Dict[int, Table]) -> tuple:
        """A cache key capturing everything the deduction query depends on.

        The key pairs the structural hypothesis signature with the spec level
        and the partial-evaluation flag, so one memo could in principle be
        shared by engines running under different configurations.
        """
        parts = []

        def walk(node: Hypothesis) -> None:
            if node.node_id in evaluated:
                parts.append((node.node_id, "t", self.table_attributes(evaluated[node.node_id])))
                return
            if isinstance(node, Hole):
                if node.hole_type is Type.TABLE:
                    parts.append((node.node_id, "x", node.binding))
                return
            parts.append((node.node_id, "c", node.component.name))
            for child in node.table_children:
                walk(child)

        walk(hypothesis)
        return (self.level, self.use_partial_evaluation, tuple(parts))

    # ------------------------------------------------------------------
    def export_kb_facts(self, oe_store=None) -> None:
        """Flush per-task facts (mined lemmas, OE representatives) to the KB.

        Called once when a search finalizes.  Executions and attribute
        vectors stream out as they are computed; lemmas and OE entries are
        task-scoped blobs, exported at the end so one merged write covers
        the run.  OE exports are observability/transport only -- they are
        never pre-loaded into a live search (see :mod:`repro.engine.kb`).
        """
        if self.kb_view is None:
            return
        if self.cdcl and self.lemma_store is not None and len(self.lemma_store):
            self.kb_view.put_lemmas(
                self._kb_task_key, self.lemma_store.export_entries()
            )
        if oe_store is not None:
            entries = oe_store.export_entries()
            if entries:
                self.kb_view.put_oe_entries(self._kb_task_key, entries)

    # ------------------------------------------------------------------
    def batch_evaluate_fills(
        self,
        sketch: Hypothesis,
        node: Apply,
        hole: Hole,
        arguments: Sequence,
    ) -> int:
        """Pre-execute sibling fillings of *hole* on *node*, sharing setup.

        The sketch completer enumerates many candidate arguments for the last
        unfilled hole of one node; each filling, once deduced or CHECKed,
        executes ``component(child_tables, ...)`` with the *same* child tables
        and a different argument.  This primes the
        :class:`~repro.engine.cache.ExecutionCache` for the whole sibling
        group in one :meth:`~repro.core.component.Component.execute_batch`
        call, so the per-table setup (backend array views, row dictionaries)
        is paid once and the later ``partial_evaluate`` calls hit the cache.

        Returns the number of fills actually executed (0 when the node is not
        batchable -- unevaluated child tables, other holes still unfilled, or
        everything already cached).  Skipping the batch is always safe: the
        unbatched path computes exactly the same results one by one.
        """
        if not self.use_partial_evaluation or len(arguments) < 2:
            return 0
        evaluated = self.evaluate_if_possible(sketch)
        if evaluated is None:
            return 0
        child_tables = []
        for child in node.table_children:
            table = evaluated.get(child.node_id)
            if table is None:
                return 0
            child_tables.append(table)
        positions = []
        for index, child in enumerate(node.value_children):
            if child.node_id == hole.node_id:
                positions.append(index)
            elif child.value is None:
                return 0
        if len(positions) != 1:
            return 0
        position = positions[0]
        fingerprints = tuple(table.fingerprint() for table in child_tables)
        fixed = [child.value for child in node.value_children]
        pending_keys = []
        pending_arguments = []
        for argument in arguments:
            filled = tuple(
                argument if index == position else value
                for index, value in enumerate(fixed)
            )
            key = (node.component.name, node.node_id, fingerprints, filled)
            if self.execution_cache.get(key) is None:
                pending_keys.append(key)
                pending_arguments.append(filled)
        if not pending_keys:
            return 0
        started = time.perf_counter()
        results = node.component.execute_batch(
            child_tables, pending_arguments, f"_n{node.node_id}_"
        )
        execution_stats().charge_execution(
            node.component.name, time.perf_counter() - started
        )
        for key, result in zip(pending_keys, results):
            if isinstance(result, Exception):
                result = EvaluationFailure(str(result))
            self.execution_cache.put(key, result)
        return len(pending_keys)

    # ------------------------------------------------------------------
    def evaluate_if_possible(self, hypothesis: Hypothesis) -> Optional[Dict[int, Table]]:
        """Partially evaluate, returning ``None`` when a complete subterm fails."""
        try:
            return partial_evaluate(
                hypothesis, self.inputs,
                memo=self.evaluation_memo, exec_cache=self.execution_cache,
            )
        except EvaluationFailure:
            return None
