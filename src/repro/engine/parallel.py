"""Process-parallel and interleaved synthesis drivers.

Two scheduling layers live here:

* :class:`KernelInterleaver` -- cooperative, single-process scheduling: one
  :class:`~repro.core.frontier.SearchKernel` per task, stepped round-robin
  in bounded slices.  Each kernel runs inside its own
  :class:`~repro.engine.context.TaskContext` (private intern pool, formula
  cache and execution counters) and is charged *active* time only, so its
  search -- programs **and** counters -- is byte-identical to a dedicated
  process running the task alone, while a fast task no longer waits behind
  a slow one.
* :class:`ParallelRunner` -- process-level fan-out: benchmark x
  configuration pairs are split into batches, each worker process
  interleaves the kernels of its batch.  ``--jobs N`` therefore interleaves
  kernel steps instead of whole tasks; ``interleave=False`` restores the
  one-task-at-a-time workers.

:func:`synthesize_batch` serves many input-output examples concurrently and
returns the results in input order; :func:`synthesize_portfolio` races
several configurations on one example and returns as soon as any of them
finds a program.

Workers are plain top-level functions so they pickle under every start
method.  Conflict-driven lemma state never crosses task boundaries: lemmas
rest on one example's formulas and live on the per-kernel deduction engine,
so every task mines its own lemmas from scratch and a ``--jobs N`` suite run
is bit-identical to the serial one -- including the lemma-prune, SMT-call,
OE-merge and frontier counters on each outcome.  (The one timing-sensitive
edge, unchanged from whole-task scheduling: a task whose solve time
approaches the per-task budget may flip to a timeout when workers
oversubscribe the CPUs, and a timed-out task's counters depend on where the
budget cut the search.)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..benchmarks.runner import (
    BenchmarkOutcome,
    SuiteRun,
    outcome_from_result,
    run_benchmark,
)
from ..benchmarks.suite import Benchmark, BenchmarkSuite
from ..core.synthesizer import Example, Morpheus, SynthesisConfig, SynthesisResult
from ..dataframe.profiling import reset_execution_state
from ..smt.solver import clear_formula_cache
from .context import TaskContext
from .pool import (
    default_job_count as default_job_count,  # re-exported (repro.engine)
    init_worker_kb,
    map_batched,
    map_indexed,
    pool_initializer,
    resolve_jobs,
)

# Historical names, still imported by callers of this module (the benchmark
# runner's suite harness and external scripts predate the shared pool module).
_resolve_jobs = resolve_jobs
_init_worker_kb = init_worker_kb
_map_indexed = map_indexed
_map_batched = map_batched

#: A unit of benchmark work: (benchmark, configuration, label, library).
BenchmarkPair = Tuple[Benchmark, SynthesisConfig, str, object]

#: Kernel steps one interleaved task runs before yielding to the next.
#: Small enough that no task monopolises its worker for long (one step is at
#: most one deduction query), large enough that context switches stay noise.
DEFAULT_SLICE_STEPS = 64

#: Batches dealt to each pool worker over a run (smaller batches improve
#: progress granularity, larger ones improve interleaving fairness).
BATCHES_PER_WORKER = 4


def _coerce_example(example) -> Example:
    if isinstance(example, Example):
        return example
    inputs, output = example
    return Example.make(inputs, output)


# ----------------------------------------------------------------------
# KernelInterleaver: cooperative stepping of many kernels in one process
# ----------------------------------------------------------------------
@dataclass
class _InterleavedTask:
    """One kernel's scheduling state inside the interleaver."""

    index: int
    example: Optional[Example] = None
    morpheus: Optional[Morpheus] = None
    context: TaskContext = field(default_factory=TaskContext)
    kernel: object = None
    result: Optional[SynthesisResult] = None
    #: Externally managed task: any object with ``advance(max_steps) -> bool``
    #: (True when finished).  The driver owns its own kernel, context and
    #: budget accounting; the interleaver only provides the round-robin slot.
    driver: object = None


class KernelInterleaver:
    """Steps many search kernels round-robin inside one process.

    Tasks are added with :meth:`add` and driven by :meth:`run` -- or, for
    long-lived callers like the synthesis service, by repeated :meth:`pump`
    calls: one round-robin pass per call, with new tasks allowed to join the
    rotation at any time (``add``/``add_driver`` are safe to call from other
    threads while one thread pumps).  Each task's kernel is constructed,
    stepped and finalised inside that task's :class:`TaskContext`, and its
    per-task wall-clock budget (``config.timeout``) is charged against
    *active* time -- the seconds its own steps consumed -- not against the
    shared wall clock, so interleaved tasks neither starve nor subsidise one
    another.
    """

    def __init__(self, slice_steps: int = DEFAULT_SLICE_STEPS) -> None:
        if slice_steps < 1:
            raise ValueError(f"slice_steps must be >= 1, got {slice_steps}")
        self.slice_steps = slice_steps
        self._tasks: List[_InterleavedTask] = []
        self._pending: deque = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def unfinished(self) -> int:
        """Tasks still waiting for (more) pump passes."""
        return len(self._pending)

    def _register(self, task: _InterleavedTask) -> int:
        with self._lock:
            if task.driver is None:
                task.index = len(self._tasks)
                self._tasks.append(task)
            # Driver-backed tasks live only in the pending rotation: they are
            # dropped outright when their driver finishes (a long-lived
            # service re-enrolls resumed sessions with a fresh registration),
            # so the interleaver never pins a finished session's kernel, OE
            # store or tables in memory.
            self._pending.append(task)
        return task.index

    def add(
        self,
        example,
        config: Optional[SynthesisConfig] = None,
        library=None,
    ) -> int:
        """Register a task; returns its index (results come back in order)."""
        return self._register(
            _InterleavedTask(
                index=-1,
                example=_coerce_example(example),
                morpheus=Morpheus(library=library, config=config, _sanctioned=True),
            )
        )

    def add_driver(self, driver) -> int:
        """Register an externally managed task.

        *driver* is any object with ``advance(max_steps) -> bool`` returning
        ``True`` when the task is finished.  The driver owns its kernel,
        context and budget; the interleaver contributes only the fair
        round-robin slicing.  This is how the synthesis service enrolls
        long-lived sessions (whose kernels are replaced across
        snapshot/restore resumes) into the same scheduler that drives
        benchmark batches.

        Unlike :meth:`add`, a driver task joins only the pending rotation
        (there is no result to collect in :meth:`run` order), so the returned
        index is always ``-1`` and the task is released as soon as its
        ``advance`` reports completion.
        """
        return self._register(_InterleavedTask(index=-1, driver=driver))

    # ------------------------------------------------------------------
    def pump(
        self,
        on_result: Optional[Callable[[int, SynthesisResult], None]] = None,
    ) -> int:
        """One round-robin pass over the unfinished tasks.

        Every task pending at the start of the pass gets one slice; finished
        tasks leave the rotation (kernel tasks fire ``on_result``).  Returns
        the number of tasks still unfinished.  Only one thread may pump at a
        time; concurrent :meth:`add`/:meth:`add_driver` calls join the next
        pass.
        """
        with self._lock:
            rotation = len(self._pending)
        for _ in range(rotation):
            with self._lock:
                if not self._pending:
                    break
                task = self._pending.popleft()
            if task.driver is not None:
                finished = task.driver.advance(self.slice_steps)
            else:
                finished = self._advance(task)
            if finished:
                if task.driver is None and on_result is not None:
                    on_result(task.index, task.result)
            else:
                with self._lock:
                    self._pending.append(task)
        return self.unfinished

    def run(
        self,
        on_result: Optional[Callable[[int, SynthesisResult], None]] = None,
    ) -> List[SynthesisResult]:
        """Drive every task to completion; results in :meth:`add` order.

        ``on_result(index, result)`` fires as each task finishes (fast tasks
        finish first regardless of registration order).
        """
        while self.pump(on_result=on_result):
            pass
        return [task.result for task in self._tasks]

    def _advance(self, task: _InterleavedTask) -> bool:
        """Run one slice of *task*'s kernel; True when the task finished."""
        config = task.morpheus.config
        with task.context.active():
            if task.kernel is None:
                started = time.perf_counter()
                task.kernel = task.morpheus.kernel(task.example)
                task.kernel.active_seconds += time.perf_counter() - started
            kernel = task.kernel
            budget = config.timeout
            remaining = None if budget is None else budget - kernel.active_seconds
            # Deterministic step-count budget (``config.max_steps``): unlike
            # the wall-clock budget it cuts the search at the same frontier
            # position on any host, so near-budget tasks cannot flip between
            # solve and timeout when workers oversubscribe the CPUs.
            step_budget = config.max_steps
            slice_budget = self.slice_steps
            if step_budget is not None:
                slice_budget = min(slice_budget, step_budget - kernel.steps_taken)
            more = False
            if (remaining is None or remaining > 0) and slice_budget > 0:
                deadline = (
                    None if remaining is None else time.monotonic() + remaining
                )
                more = kernel.run(deadline=deadline, max_steps=slice_budget)
            out_of_time = budget is not None and kernel.active_seconds >= budget
            out_of_steps = (
                step_budget is not None and kernel.steps_taken >= step_budget
            )
            if more and not out_of_time and not out_of_steps:
                return False
            task.result = task.morpheus.finalize(
                kernel, elapsed=kernel.active_seconds
            )
        # Free the search state and the per-task caches (the context holds
        # the task's whole intern pool and formula cache); only the result
        # is kept.
        task.kernel = None
        task.context = None
        return True


def interleave_benchmarks(
    pairs: Sequence[BenchmarkPair],
    slice_steps: int = DEFAULT_SLICE_STEPS,
    on_result: Optional[Callable[[int, BenchmarkOutcome], None]] = None,
) -> List[BenchmarkOutcome]:
    """Run benchmark x configuration pairs through one interleaver.

    The single-process backend of the ``--jobs`` harness: outcomes are
    byte-identical to :func:`repro.benchmarks.runner.run_benchmark` on every
    deterministic field, in input order.
    """
    interleaver = KernelInterleaver(slice_steps=slice_steps)
    for benchmark, config, label, library in pairs:
        interleaver.add(
            Example.make(benchmark.inputs, benchmark.output), config, library
        )
    outcomes: Dict[int, BenchmarkOutcome] = {}

    def finish(index: int, result: SynthesisResult) -> None:
        benchmark, config, label, _library = pairs[index]
        outcomes[index] = outcome_from_result(benchmark, config, result, label=label)
        if on_result is not None:
            on_result(index, outcomes[index])

    interleaver.run(on_result=finish)
    return [outcomes[index] for index in range(len(pairs))]


# ----------------------------------------------------------------------
# Worker functions (top-level so they pickle under the spawn start method)
# ----------------------------------------------------------------------
def _run_pair_task(task):
    index, benchmark, config, label, library = task
    return index, run_benchmark(benchmark, config, library=library, label=label)


def _run_pair_batch(task):
    """Interleave one batch of indexed benchmark pairs inside a worker."""
    indices, pairs, slice_steps = task
    outcomes = interleave_benchmarks(pairs, slice_steps=slice_steps)
    return list(zip(indices, outcomes))


def _synthesize_task(task):
    index, example, config, library = task
    # Start from a cold formula cache, execution counters and intern pool so
    # the outcome does not depend on what this process (or pool worker) ran
    # before -- the same independence discipline run_benchmark applies for
    # the benchmark harness.
    clear_formula_cache()
    reset_execution_state()
    result = Morpheus(library=library, config=config, _sanctioned=True).synthesize(example)
    return index, result


def _synthesize_batch_task(task):
    """Interleave one batch of indexed examples inside a worker."""
    indices, examples, config, library, slice_steps = task
    interleaver = KernelInterleaver(slice_steps=slice_steps)
    for example in examples:
        interleaver.add(example, config, library)
    results = interleaver.run()
    return list(zip(indices, results))


def _round_robin_batches(count: int, batches: int) -> List[List[int]]:
    """Deterministically deal ``count`` indices into ``batches`` groups."""
    groups: List[List[int]] = [[] for _ in range(max(1, min(batches, count)))]
    for index in range(count):
        groups[index % len(groups)].append(index)
    return [group for group in groups if group]


# ----------------------------------------------------------------------
# ParallelRunner: benchmark x configuration fan-out
# ----------------------------------------------------------------------
@dataclass
class ParallelRunner:
    """Runs benchmark x configuration pairs over a process pool.

    ``jobs=None`` uses one worker per CPU; ``jobs=1`` degrades to a serial
    loop with identical semantics (and no pool overhead), so callers can
    thread a single ``--jobs`` value through unconditionally.

    With ``interleave`` (the default) each worker process receives a *batch*
    of pairs and steps their search kernels round-robin under per-task
    :class:`TaskContext` isolation, so a fast task never queues behind a
    slow one inside a worker; ``interleave=False`` restores the classic
    one-whole-task-per-worker-at-a-time scheduling.  Deterministic outcome
    fields are byte-identical between the two modes and the serial loop.
    """

    jobs: Optional[int] = None
    #: Optional multiprocessing start method ("fork", "spawn", ...).
    start_method: Optional[str] = None
    #: Interleave kernel steps across each worker's batch of tasks.
    interleave: bool = True
    #: Kernel steps per scheduling slice (interleaved mode).
    slice_steps: int = DEFAULT_SLICE_STEPS
    #: Batches handed to each worker over the run (smaller batches improve
    #: progress granularity, larger ones improve interleaving fairness).
    batches_per_worker: int = BATCHES_PER_WORKER
    #: Path to a warm-start knowledge base file (:mod:`repro.engine.kb`).
    #: Each worker process opens its own connection to it; ``None`` runs
    #: cold.  The KB only changes how much work each task performs, never
    #: its programs or deterministic counters, so ``--jobs`` equivalence
    #: holds with or without it.
    kb_path: Optional[str] = None

    def __post_init__(self) -> None:
        self.jobs = _resolve_jobs(self.jobs)

    def _pool_initializer(self) -> tuple:
        """The ``(initializer, initargs)`` pair for worker pools."""
        return pool_initializer(self.kb_path)

    # ------------------------------------------------------------------
    def map_benchmarks(
        self,
        pairs: Sequence[BenchmarkPair],
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> List[BenchmarkOutcome]:
        """Run every (benchmark, config, label, library) pair; results in input order.

        ``progress`` is invoked in the parent process as outcomes arrive:
        per task with ``jobs=1`` (one in-process interleaver drives every
        kernel and reports each finish immediately), per completed batch
        under a pool (a worker's outcomes only cross the process boundary
        together).
        """
        on_result = None if progress is None else (lambda _index, outcome: progress(outcome))
        initializer, initargs = self._pool_initializer()
        if self.kb_path is not None:
            # Serial runs (and pool-skipping fallbacks for tiny inputs)
            # execute in this process, where no initializer hook fires:
            # install the process-default KB here unless the caller (the
            # CLI, a service) already did.
            from .kb import current_kb

            if current_kb() is None:
                _init_worker_kb(self.kb_path)
        if self.interleave:
            if self.jobs == 1:
                # One interleaver over everything: maximal fairness and
                # per-task progress (no batch granularity in-process).
                outcomes = interleave_benchmarks(
                    pairs, slice_steps=self.slice_steps, on_result=on_result
                )
                return outcomes
            groups = _round_robin_batches(
                len(pairs), self.jobs * max(1, self.batches_per_worker)
            )
            batch_tasks = [
                (indices, [pairs[index] for index in indices], self.slice_steps)
                for indices in groups
            ]
            collected = _map_batched(
                _run_pair_batch, batch_tasks, self.jobs, self.start_method,
                on_result=on_result, initializer=initializer, initargs=initargs,
            )
        else:
            tasks = [
                (index, benchmark, config, label, library)
                for index, (benchmark, config, label, library) in enumerate(pairs)
            ]
            collected = _map_indexed(
                _run_pair_task, tasks, self.jobs, self.start_method,
                on_result=on_result, initializer=initializer, initargs=initargs,
            )
        return [collected[index] for index in range(len(pairs))]

    def run_suite(
        self,
        suite: BenchmarkSuite,
        config_factory: Callable[[Optional[float]], SynthesisConfig],
        timeout: float = 20.0,
        label: Optional[str] = None,
        library=None,
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> SuiteRun:
        """Parallel drop-in for :func:`repro.benchmarks.runner.run_suite`."""
        config = config_factory(timeout)
        resolved = label or config.describe()
        outcomes = self.map_benchmarks(
            [(benchmark, config, resolved, library) for benchmark in suite],
            progress=progress,
        )
        return SuiteRun(configuration=resolved, outcomes=outcomes)

    def run_matrix(
        self,
        suite: BenchmarkSuite,
        configurations: Mapping[str, Callable[[Optional[float]], SynthesisConfig]],
        timeout: float = 20.0,
        library=None,
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> Dict[str, SuiteRun]:
        """Fan the whole benchmark x configuration grid into one pool.

        Scheduling all cells together keeps every worker busy even when one
        configuration is much slower than the others (the per-configuration
        loop of the serial harness would serialise on it).
        """
        pairs: List[BenchmarkPair] = []
        for label, factory in configurations.items():
            config = factory(timeout)
            pairs.extend((benchmark, config, label, library) for benchmark in suite)
        outcomes = self.map_benchmarks(pairs, progress=progress)
        runs = {label: SuiteRun(configuration=label) for label in configurations}
        for outcome in outcomes:
            runs[outcome.configuration].outcomes.append(outcome)
        return runs


# ----------------------------------------------------------------------
# synthesize_batch: many examples, one configuration
# ----------------------------------------------------------------------
def synthesize_batch(
    examples: Sequence,
    config: Optional[SynthesisConfig] = None,
    library=None,
    jobs: Optional[int] = None,
    interleave: bool = False,
    slice_steps: int = DEFAULT_SLICE_STEPS,
) -> List[SynthesisResult]:
    """Synthesize a program for every example, fanning over worker processes.

    *examples* may be :class:`Example` objects or ``(inputs, output)`` pairs.
    Results come back in input order regardless of completion order, and each
    example's search is bit-for-bit the search ``Morpheus.synthesize`` would
    run serially (workers share nothing), so the outcomes are deterministic.

    ``interleave=True`` steps the kernels of each worker's batch round-robin
    under per-task :class:`TaskContext` isolation (with ``jobs=1`` this is
    pure cooperative scheduling in the calling process); per-task budgets
    are then charged against active time.  The one timing-sensitive edge in
    either mode: an example whose solve time approaches the configured
    wall-clock timeout may time out when more workers run than there are
    CPU cores.
    """
    jobs = _resolve_jobs(jobs)
    config = config if config is not None else SynthesisConfig()
    coerced = [_coerce_example(example) for example in examples]
    if interleave:
        if jobs == 1:
            # One interleaver over every example: pure cooperative
            # scheduling, no sequential batch boundaries.
            interleaver = KernelInterleaver(slice_steps=slice_steps)
            for example in coerced:
                interleaver.add(example, config, library)
            return interleaver.run()
        groups = _round_robin_batches(len(coerced), jobs * BATCHES_PER_WORKER)
        batch_tasks = [
            (indices, [coerced[index] for index in indices], config, library, slice_steps)
            for indices in groups
        ]
        collected = _map_batched(_synthesize_batch_task, batch_tasks, jobs)
    else:
        tasks = [
            (index, example, config, library)
            for index, example in enumerate(coerced)
        ]
        collected = _map_indexed(_synthesize_task, tasks, jobs)
    return [collected[index] for index in range(len(coerced))]


# ----------------------------------------------------------------------
# synthesize_portfolio: one example, racing configurations
# ----------------------------------------------------------------------
@dataclass
class PortfolioResult:
    """Outcome of racing several configurations on one example."""

    #: The winning (or, if nothing solved, the first configuration's) result.
    result: SynthesisResult
    #: ``describe()`` of the configuration that produced :attr:`result`.
    winner: Optional[str]
    #: How many configurations ran to completion before the race ended.
    attempts: int

    @property
    def solved(self) -> bool:
        return self.result.solved


def synthesize_portfolio(
    example,
    configs: Sequence[SynthesisConfig],
    library=None,
    jobs: Optional[int] = None,
) -> PortfolioResult:
    """Race *configs* on one example; return the first solution found.

    With ``jobs > 1`` the configurations run concurrently and the remaining
    workers are cancelled as soon as one solves the example -- which
    configuration wins can therefore depend on timing.  With ``jobs=1`` the
    configurations run in order and the first solver wins deterministically.
    If no configuration solves the example, the first configuration's
    (unsolved) result is returned with ``winner=None``.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("synthesize_portfolio needs at least one configuration")
    jobs = _resolve_jobs(jobs)
    example = _coerce_example(example)
    tasks = [(index, example, config, library) for index, config in enumerate(configs)]

    collected = _map_indexed(
        _synthesize_task, tasks, jobs,
        stop=lambda _index, result: result.solved,
    )
    attempts = len(collected)
    for index, result in collected.items():
        if result.solved:
            return PortfolioResult(result, configs[index].describe(), attempts)
    return PortfolioResult(collected[min(collected)], None, attempts)
