"""An enumerative SQL-query synthesizer (the SQLSynthesizer baseline).

Figure 18 of the paper compares Morpheus against SQLSynthesizer
[Zhang & Sun, ASE 2013], a tool that synthesizes *flat SQL queries* --
selection, projection, equi-joins, grouping and aggregation -- from
input-output examples.  The original tool is not available offline, so this
module implements a faithful stand-in that searches the same program class:

``SELECT <columns | aggregates> FROM T1 [NATURAL JOIN T2]
  [WHERE col <op> constant] [GROUP BY columns]``

Because the class contains no reshaping operators (nothing like ``gather`` /
``spread`` / ``unite``), the baseline structurally cannot express most of the
data-preparation benchmarks -- which is exactly the gap Figure 18 reports.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..components import dplyr
from ..components.errors import PRUNABLE_ERRORS
from ..components.values import AGGREGATORS, COMPARISON_OPERATORS
from ..dataframe.cells import CellType
from ..dataframe.compare import tables_match_for_synthesis
from ..dataframe.table import Table

#: Aggregate functions the SQL baseline may use.
SQL_AGGREGATES = ("n", "sum", "mean", "min", "max")

#: Comparison operators allowed in WHERE clauses.
SQL_COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")


@dataclass(frozen=True)
class SqlQuery:
    """A flat SQL query over one or two tables."""

    #: Indices of the input tables referenced (one or two).
    tables: Tuple[int, ...]
    #: Plain projected columns (SELECT list), possibly empty when aggregating.
    projection: Tuple[str, ...]
    #: Optional WHERE clause ``(column, operator, constant)``.
    where: Optional[Tuple[str, str, object]] = None
    #: GROUP BY columns (empty for none).
    group_by: Tuple[str, ...] = ()
    #: Optional aggregate ``(function, column)``; column is None for COUNT(*).
    aggregate: Optional[Tuple[str, Optional[str]]] = None

    def render_sql(self) -> str:
        """Render the query as SQL text."""
        select_items = list(self.projection)
        if self.aggregate is not None:
            function, column = self.aggregate
            if function == "n":
                select_items.append("COUNT(*)")
            else:
                select_items.append(f"{function.upper()}({column})")
        sql = f"SELECT {', '.join(select_items) or '*'} FROM T{self.tables[0] + 1}"
        if len(self.tables) > 1:
            sql += f" NATURAL JOIN T{self.tables[1] + 1}"
        if self.where is not None:
            column, operator, constant = self.where
            rendered = f"'{constant}'" if isinstance(constant, str) else str(constant)
            operator = "=" if operator == "==" else operator
            sql += f" WHERE {column} {operator} {rendered}"
        if self.group_by:
            sql += f" GROUP BY {', '.join(self.group_by)}"
        return sql

    def execute(self, inputs: Sequence[Table]) -> Table:
        """Run the query against the input tables."""
        table = inputs[self.tables[0]]
        if len(self.tables) > 1:
            table = dplyr.inner_join(table, inputs[self.tables[1]])
        if self.where is not None:
            column, operator, constant = self.where
            comparator = COMPARISON_OPERATORS[operator]
            rows = [
                row
                for index, row in enumerate(table.rows)
                if comparator(table.row_dict(index)[column], constant)
            ]
            table = table.with_rows(rows)
        if self.aggregate is not None:
            function, column = self.aggregate
            grouped = table.with_grouping(self.group_by) if self.group_by else table
            out_rows = []
            for key, row_indices in grouped.group_row_indices():
                if function == "n":
                    value = len(row_indices)
                else:
                    column_index = table.column_index(column)
                    value = AGGREGATORS[function]([table.rows[i][column_index] for i in row_indices])
                out_rows.append(tuple(key) + (value,))
            out_columns = list(self.group_by) + ["agg"]
            result = Table(out_columns, out_rows)
            if self.projection:
                result = result.select_columns(
                    [name for name in self.projection if name in result.columns] + ["agg"]
                )
            return result
        if self.projection:
            table = table.select_columns(list(self.projection))
        return table


@dataclass
class SqlSynthesisResult:
    """Outcome of a SQL synthesis run."""

    solved: bool
    query: Optional[SqlQuery]
    elapsed: float
    queries_tried: int = 0


@dataclass
class SqlSynthesizer:
    """Enumerative synthesis of flat SQL queries from one example."""

    timeout: Optional[float] = 60.0
    max_where_constants: int = 24

    def synthesize(self, inputs: Sequence[Table], output: Table) -> SqlSynthesisResult:
        """Search for a query whose result matches *output*."""
        started = time.monotonic()
        deadline = started + self.timeout if self.timeout is not None else None
        tried = 0
        for query in self._enumerate(inputs, output):
            if deadline is not None and time.monotonic() > deadline:
                break
            tried += 1
            try:
                result = query.execute(inputs)
            except PRUNABLE_ERRORS:
                continue
            if tables_match_for_synthesis(result, output):
                return SqlSynthesisResult(True, query, time.monotonic() - started, tried)
        return SqlSynthesisResult(False, None, time.monotonic() - started, tried)

    # ------------------------------------------------------------------
    def _table_choices(self, inputs: Sequence[Table]) -> List[Tuple[int, ...]]:
        choices: List[Tuple[int, ...]] = [(index,) for index in range(len(inputs))]
        for left, right in itertools.permutations(range(len(inputs)), 2):
            choices.append((left, right))
        return choices

    def _where_clauses(self, table: Table):
        yield None
        for name in table.columns:
            constants = []
            for value in table.column_values(name):
                if value is None or value in constants:
                    continue
                constants.append(value)
            operators = (
                SQL_COMPARISONS
                if table.column_type(name) is CellType.NUM
                else ("==", "!=")
            )
            for operator in operators:
                for constant in constants[: self.max_where_constants]:
                    yield (name, operator, constant)

    def _enumerate(self, inputs: Sequence[Table], output: Table):
        """All queries, roughly from simplest to most complex."""
        for tables in self._table_choices(inputs):
            base = inputs[tables[0]]
            if len(tables) > 1:
                try:
                    base = dplyr.inner_join(base, inputs[tables[1]])
                except PRUNABLE_ERRORS:
                    continue
            columns = list(base.columns)
            numeric = [name for name in columns if base.column_type(name) is CellType.NUM]

            projections: List[Tuple[str, ...]] = [()]
            for size in range(1, len(columns) + 1):
                projections.extend(itertools.combinations(columns, size))

            for where in self._where_clauses(base):
                # Plain select-project queries.
                for projection in projections:
                    if projection:
                        yield SqlQuery(tables, projection, where)
                # Aggregation queries.
                for group_size in range(0, min(3, len(columns)) + 1):
                    for group in itertools.combinations(columns, group_size):
                        for function in SQL_AGGREGATES:
                            targets = [None] if function == "n" else numeric
                            for target in targets:
                                yield SqlQuery(
                                    tables, (), where, group, (function, target)
                                )
