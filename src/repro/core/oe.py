"""Observational-equivalence store for partial programs.

During sketch completion the same *observable* state is reached over and
over: two partially filled sketches whose completed subtrees evaluate to
identical intermediate tables behave identically from that point on -- the
remaining holes are enumerated against the same concrete tables, the
remaining deduction queries see the same attribute vectors, and any two
corresponding completions produce equal outputs.  Exploring both is pure
duplicate work.

:class:`OEStore` collapses such states.  A state is keyed by its
**observation signature**: the canonical structure of the un-completed part
of the sketch (component names, parameter shapes, bindings) with every
completed subtree replaced by the content-derived *fingerprint* of the table
it evaluates to.  PR 3's fingerprint invariant (equal fingerprint ⟹ equal
table, DESIGN.md) is what makes the merge sound.

The store is **positive-only** by construction: two states merge exactly
when their signatures -- and therefore their table fingerprints -- are
equal.  No tolerant comparison is ever consulted, so a merge can never
conflate tables that are merely "close" (sub-tolerance float noise produces
*different* fingerprints and therefore different keys).  Unequal digests
never merge; the search explores both states and verdicts stay exact.

The representative of an equivalence class is the state that was admitted
first.  The completion frontier explores states in the same cost order as
the recursion it replaced, so the first-admitted state is the one the
baseline search would have explored (and yielded solutions from) first --
dropping the later duplicates can therefore never change the first solution,
only skip the duplicated completion work behind it.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..dataframe.table import Table
from .hypothesis import Hole, Hypothesis
from .types import Type


def encode_key(key: ObservationKey) -> str:
    """A stable hex digest of one observation signature.

    Signatures mix bytes (fingerprints), strings, ints and frozen value
    arguments; the encoding walks the nesting and hashes a canonical byte
    string, so equal keys digest equally across processes.  Used by the
    warm-start knowledge base to export representatives for observability --
    digests are one-way on purpose (the KB never needs to reconstruct a
    state, only to count and compare them).
    """

    hasher = blake2b(digest_size=16)

    def feed(part) -> None:
        if part is None:
            hasher.update(b"\x00N")
        elif isinstance(part, bytes):
            hasher.update(b"\x00B" + len(part).to_bytes(4, "big") + part)
        elif isinstance(part, str):
            data = part.encode("utf-8")
            hasher.update(b"\x00S" + len(data).to_bytes(4, "big") + data)
        elif isinstance(part, bool):
            hasher.update(b"\x00b" + (b"1" if part else b"0"))
        elif isinstance(part, int):
            data = str(part).encode("ascii")
            hasher.update(b"\x00I" + len(data).to_bytes(4, "big") + data)
        elif isinstance(part, tuple):
            hasher.update(b"\x00T" + len(part).to_bytes(4, "big"))
            for item in part:
                feed(item)
            hasher.update(b"\x00t")
        else:
            # Bound value arguments are frozen dataclasses: stable repr.
            data = repr(part).encode("utf-8")
            hasher.update(b"\x00R" + len(data).to_bytes(4, "big") + data)

    feed(key)
    return hasher.hexdigest()

#: An observation signature: a nested tuple of structure markers and table
#: fingerprints (bytes).  Hashable, comparable only by exact equality.
ObservationKey = Tuple


class OEStore:
    """Fingerprint-keyed store of observed completion states.

    One store serves one synthesis run (one example): fingerprints are
    content-derived and stable across sketches and hypotheses, so the store
    deduplicates completion states *across* sketch boundaries, not just
    within one sketch.  The store holds no counters of its own -- the
    admitting :class:`~repro.core.completion.SketchCompleter` accounts for
    candidates and merges in its ``CompletionStats`` (one source of truth).
    """

    __slots__ = ("_representatives", "_imported")

    def __init__(self) -> None:
        #: Keys whose representative (the first-admitted state) is being --
        #: or has been -- explored.
        self._representatives: Set[ObservationKey] = set()
        #: Digests imported from a knowledge base (observability only --
        #: :meth:`admit` never consults them; see :meth:`import_entries`).
        self._imported: Set[str] = set()

    def __len__(self) -> int:
        return len(self._representatives)

    # ------------------------------------------------------------------
    def admit(self, key: Optional[ObservationKey]) -> bool:
        """Admit a state, or merge it into an existing representative.

        Returns ``True`` when the state is new (the caller should explore
        it) and ``False`` when an observationally equal state was admitted
        earlier (the caller should drop it).  ``key=None`` (a state whose
        signature could not be computed, e.g. because partial evaluation
        failed) is always admitted: merging is an optimisation and must
        never fire without an exact signature.

        The representative is always the first-admitted state, which the
        cost-ordered frontier guarantees is the state the un-merged search
        would have explored first.
        """
        if key is None:
            return True
        if key in self._representatives:
            return False
        self._representatives.add(key)
        return True

    def release(self, keys: Iterable[ObservationKey]) -> None:
        """Withdraw representatives whose exploration was cut short.

        The merge argument ("the representative was explored first, so a
        duplicate has nothing new to offer") assumes the representative's
        subtree was *fully* explored.  A completion run aborted by its
        per-sketch budget breaks that assumption, so the run withdraws every
        key it admitted: a later observationally equal state is then
        explored afresh under its own budget, exactly as the un-merged
        search would have explored it.  Releasing a fully-explored key is
        harmless (the duplicate work is merely repeated, never skipped).
        """
        for key in keys:
            self._representatives.discard(key)

    # ------------------------------------------------------------------
    def export_entries(self) -> List[str]:
        """The store's representatives as sorted digests (KB transport form)."""
        return sorted(encode_key(key) for key in self._representatives)

    def import_entries(self, digests: Iterable[str]) -> int:
        """Record digests exported by an earlier run; returns how many.

        Imported digests are **never** consulted by :meth:`admit`: merging a
        *fresh* search's state against a previous run's representative would
        skip exploring it even though that run's solutions are not in this
        frontier -- the soundness argument for merging does not transfer
        across runs.  The imported set exists for observability (corpus
        overlap metrics) and transport between stores only.
        """
        count = 0
        for digest in digests:
            if isinstance(digest, str):
                self._imported.add(digest)
                count += 1
        return count

    @property
    def imported_digests(self) -> Set[str]:
        """Digests previously imported via :meth:`import_entries`."""
        return set(self._imported)

    # ------------------------------------------------------------------
    @staticmethod
    def state_key(
        sketch: Hypothesis, evaluated: Dict[int, Table], remaining: int = 0
    ) -> Optional[ObservationKey]:
        """The observation signature of one completion state.

        *evaluated* is the partial-evaluation map of the sketch (node id ->
        concrete table for every complete subterm).  Completed subtrees
        contribute only their table fingerprint -- their internal structure
        is observationally irrelevant -- while the un-completed remainder
        contributes exact structure: component names, bindings, and the
        fill state of every first-order hole.  *remaining* is the number of
        application nodes the completion worklist has not yet processed; it
        distinguishes states that share a tree signature but differ in how
        many no-parameter nodes still await their deduction check.

        Returns ``None`` when the sketch contains a bound part that is
        missing from *evaluated* (evaluation failed); such states are never
        merged.
        """

        def walk(node: Hypothesis):
            table = evaluated.get(node.node_id)
            if table is not None:
                return ("t", table.fingerprint())
            if isinstance(node, Hole):
                if node.hole_type is Type.TABLE:
                    if node.binding is not None:
                        # A bound input that failed to appear in the
                        # evaluation map: no exact observation exists.
                        return None
                    return ("x",)
                return ("?", node.hole_type.value)
            parts = [walk(child) for child in node.table_children]
            if any(part is None for part in parts):
                return None
            values = tuple(
                ("v", hole.value) if hole.is_bound else ("?", hole.hole_type.value)
                for hole in node.value_children
            )
            return ("c", node.component.name, tuple(parts), values)

        signature = walk(sketch)
        if signature is None:
            return None
        return ("r", remaining, signature)
