"""Tests for the propositional SAT solver."""

from hypothesis import given
from hypothesis import strategies as st

from repro.smt.sat import SatSolver


def solve(num_vars, clauses):
    return SatSolver(num_vars, clauses).solve()


class TestBasics:
    def test_empty_problem_is_sat(self):
        assert solve(0, []) == {}

    def test_single_unit(self):
        model = solve(1, [[1]])
        assert model[1] is True

    def test_negative_unit(self):
        model = solve(1, [[-1]])
        assert model[1] is False

    def test_conflicting_units(self):
        assert solve(1, [[1], [-1]]) is None

    def test_empty_clause_is_unsat(self):
        assert solve(1, [[1], []]) is None

    def test_simple_implication_chain(self):
        # 1, 1->2, 2->3
        model = solve(3, [[1], [-1, 2], [-2, 3]])
        assert model == {1: True, 2: True, 3: True}

    def test_requires_backtracking(self):
        # (a | b) & (!a | b) & (a | !b) forces a=b=true.
        model = solve(2, [[1, 2], [-1, 2], [1, -2]])
        assert model[1] is True and model[2] is True

    def test_pigeonhole_two_in_one(self):
        # Two pigeons, one hole: p1 and p2 both must be in hole but not together.
        clauses = [[1], [2], [-1, -2]]
        assert solve(2, clauses) is None

    def test_xor_chain(self):
        # x1 xor x2 = 1 encoded with 4 clauses, plus x1 = x2 -> UNSAT.
        clauses = [[1, 2], [-1, -2], [1, -2], [-1, 2]]
        assert solve(2, clauses) is None

    def test_incremental_clause_addition(self):
        solver = SatSolver(2, [[1, 2]])
        assert solver.solve() is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None


def _check_model(clauses, model):
    for clause in clauses:
        assert any(
            (literal > 0) == model[abs(literal)] for literal in clause
        ), f"clause {clause} not satisfied"


class TestRandomised:
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=6).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_models_satisfy_formulas(self, clauses):
        solver = SatSolver(6, clauses)
        model = solver.solve()
        if model is not None:
            _check_model(clauses, model)

    @given(st.integers(min_value=1, max_value=5))
    def test_all_positive_units(self, n):
        clauses = [[v] for v in range(1, n + 1)]
        model = solve(n, clauses)
        assert all(model[v] for v in range(1, n + 1))

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=4).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=2,
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_agreement_with_brute_force(self, clauses):
        import itertools

        def brute_force():
            for bits in itertools.product([False, True], repeat=4):
                assignment = {v: bits[v - 1] for v in range(1, 5)}
                if all(any((l > 0) == assignment[abs(l)] for l in clause) for clause in clauses):
                    return True
            return False

        solver_result = solve(4, clauses) is not None
        assert solver_result == brute_force()
