"""Distributed frontier search: one task's search fanned over a process pool.

``--jobs N`` (:mod:`repro.engine.parallel`) parallelises *across* tasks; a
single hard task still runs on one core.  This module parallelises *within*
one task: the cost-ordered frontier is split into cost-contiguous **work
units** (:meth:`repro.core.frontier.Frontier.split`) and the units are fanned
over a worker pool in bulk-synchronous rounds.

Scheduling model
----------------

* **Warm-up.**  The caller's kernel runs a short serial prefix, then drains
  to a hypothesis boundary (``run_to_boundary``) so the frontier holds only
  the cost-ordered hypothesis lane -- the state ``Frontier.split`` is
  defined on.
* **Rounds.**  Every live unit runs one bounded ``run(max_steps=...)`` slice
  per round inside its own process-hermetic
  :class:`~repro.engine.context.TaskContext` (fresh caches every slice, so
  worker count and pool reuse cannot leak state between units).  Units are
  dispatched costliest-first through ``imap_unordered``: an idle worker
  always picks up the costliest unit still queued -- work stealing without a
  shared queue.  Each unit returns its candidate programs (with provenance
  keys), its counter deltas, its lemma/OE exports, and -- when unfinished --
  a residual sub-frontier snapshot that re-enters the queue.
* **Exchange.**  Lemma and OE entries are pooled at round boundaries via the
  ``export_entries``/``import_entries`` transport and re-seeded into every
  unit next round (a unit re-imports its own exports, which is what carries
  its learned lemmas across its hermetic slices).  Lemmas rest on this one
  example's formulas, so cross-unit import is sound exactly as the KB's
  same-task lemma warm start is; OE digests are transported for KB
  persistence only and never change admission decisions.
* **Merge.**  Results merge in unit-id order (stable float sums).  Candidate
  programs are ordered by their partition-independent provenance key
  ``(priority, rank, found_index)`` -- the serial discovery order -- and a
  winner is final only once no live residual's :meth:`lower_bound` could
  still beat it.  The chosen program is therefore byte-identical to the
  serial run's on every solved task, and all deterministic counters are
  byte-identical across worker counts and repeat runs (worker count only
  moves wall-clock time).
* **Budget.**  In distributed mode the solve/timeout decision is a function
  of the deterministic step budget -- ``config.max_steps``, or ``timeout``
  converted at :data:`STEPS_PER_SECOND` -- never of the wall clock, so
  oversubscribed hosts cannot flip a task between solve and timeout.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import fields, is_dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.frontier import (
    SearchKernel,
    decode_hypothesis,
    rank_from_json,
    rank_to_json,
)
from ..core.hypothesis import component_sequence, hypothesis_size, render_program
from ..core.synthesizer import (
    Example,
    Morpheus,
    SynthesisConfig,
    SynthesisResult,
    SynthesisStats,
)
from ..dataframe.profiling import execution_stats
from ..smt.solver import formula_cache_stats
from .context import TaskContext
from .pool import pool_initializer, resolve_jobs

#: Serial steps the caller's kernel runs before the frontier is split.  Long
#: enough to grow a frontier worth partitioning, short enough that easy
#: tasks solve before any pool spins up.
WARMUP_STEPS = 512

#: Steps each work unit runs per round.  Constant and worker-count
#: independent -- the unit step allocation is part of the determinism
#: contract, so it must never depend on how many workers drain the queue.
UNIT_ROUND_STEPS = 2048

#: Upper bound on work units per task.  The split count is
#: ``min(pending, MAX_UNITS)`` -- a function of the frontier alone, never of
#: the worker count, so the partition (and every counter downstream of it)
#: is identical for any ``--workers N``.
MAX_UNITS = 16

#: Units dispatched per round: the ones with the smallest lower bounds.
#: Focusing each round on the provenance-cheapest units keeps the fleet's
#: work near the global cost frontier (close to what the serial best-first
#: pop explores) instead of burning steps in regions the serial run would
#: never reach before the winner.  Constant -- NOT the worker count -- so
#: the schedule, and every counter, is identical for any ``--workers N``.
ACTIVE_UNITS = 8

#: Steps per second assumed when converting ``config.timeout`` into the
#: deterministic step budget that replaces the wall clock in this mode.
STEPS_PER_SECOND = 1500


def merge_stats(into, delta, _top: bool = True):
    """Accumulate a unit's counter delta into *into*, recursively.

    Numeric fields add, dict fields add by key, nested stats dataclasses
    recurse; ``frontier_peak`` takes the max (units search disjoint
    sub-frontiers concurrently, so their peaks do not stack).
    """
    for spec in fields(into):
        current = getattr(into, spec.name)
        value = getattr(delta, spec.name)
        if _top and spec.name == "frontier_peak":
            setattr(into, spec.name, max(current, value))
        elif is_dataclass(current) and not isinstance(current, type):
            merge_stats(current, value, _top=False)
        elif isinstance(current, dict):
            for key, amount in value.items():
                current[key] = current.get(key, 0) + amount
        elif isinstance(current, bool):
            setattr(into, spec.name, current or value)
        elif isinstance(current, (int, float)):
            setattr(into, spec.name, current + value)
    return into


# ----------------------------------------------------------------------
# The per-unit worker
# ----------------------------------------------------------------------
#: One dispatch: (unit_id, snapshot payload, example, config, library,
#: lemma seed entries, OE seed digests, step quota for this round).
UnitTask = tuple


def _drive_unit(task: UnitTask):
    """Run one work unit's round and return the *live* kernel.

    Hermetic by construction: a fresh :class:`TaskContext` (fresh intern
    pool, formula cache, execution counters; the process-default KB, if any,
    is inherited) wraps a kernel restored from the unit's snapshot, so the
    slice behaves identically whether it runs in a pool worker, in the
    caller's process, or in a replay -- the mechanism behind worker-count
    independence.
    """
    (unit_id, payload, example, config, library, lemma_seeds, oe_seeds, quota) = task
    context = TaskContext(backend=config.backend)
    with context.active():
        morpheus = Morpheus(library=library, config=config, _sanctioned=True)
        kernel = SearchKernel.restore(
            payload, example, config, morpheus.library, morpheus.cost_model,
            SynthesisStats(),
        )
        if lemma_seeds and kernel.engine.lemma_store is not None:
            kernel.engine.lemma_store.import_entries(lemma_seeds)
        if oe_seeds and kernel.oe_store is not None:
            kernel.oe_store.import_entries(oe_seeds)
        more = kernel.run(max_steps=quota)
        if more:
            # Overshoot (deterministically) to the next hypothesis boundary:
            # a residual suspended mid-expansion would re-expand the same
            # hypothesis from scratch every round -- an expansion longer
            # than the round quota would never finish.  Draining the
            # continuation lane guarantees each round retires at least one
            # hypothesis per unit.
            kernel.run_to_boundary()
            more = bool(kernel.frontier) and len(kernel.solutions) < kernel.k
        stats = kernel.stats
        stats.frontier_peak = kernel.frontier.peak
        stats.solver_cache = (
            formula_cache_stats().snapshot().since(kernel.solver_cache_baseline)
        )
        stats.execution = (
            execution_stats().snapshot().since(kernel.execution_baseline)
        )
        kernel.export_kb_facts()
    return unit_id, kernel, more


def _run_unit(task: UnitTask):
    """Pool worker: drive one unit's round and serialise the outcome.

    Candidate programs cross the process boundary as rendered text plus
    provenance key -- never as ``Hypothesis`` objects (their components
    carry callables) -- and are rebuilt by a deterministic local replay of
    the winning unit's round (:func:`_drive_unit` with the same task).
    """
    unit_id, kernel, more = _drive_unit(task)
    residual = kernel.suspend() if more else None
    lemma_store = kernel.engine.lemma_store
    return unit_id, {
        "steps": kernel.steps_taken,
        "solutions": [
            {
                "key": rank_to_json(key),
                "program": render_program(program),
                "size": hypothesis_size(program),
            }
            for program, key in zip(kernel.solutions, kernel.solution_keys)
        ],
        "residual": residual,
        "stats": kernel.stats,
        "lemmas": lemma_store.export_entries() if lemma_store is not None else [],
        "oe": kernel.oe_store.export_entries() if kernel.oe_store is not None else [],
    }


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class DistributedScheduler:
    """Fans one task's frontier over a worker pool, deterministically.

    ``drive(example, kernel)`` takes a freshly built (or already warmed)
    kernel and drives it to a decision, returning the same
    :class:`SynthesisResult` shape the serial path produces.  The caller's
    :class:`TaskContext` must be active for the whole call (the warm-up,
    merge and replay phases run in the caller's process).

    ``workers=1`` runs every unit in-process through the identical worker
    function and round structure -- the reference schedule the pool modes
    are gated against.
    """

    def __init__(
        self,
        config: SynthesisConfig,
        library=None,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        kb_path: Optional[str] = None,
    ) -> None:
        self.config = config
        self.workers = resolve_jobs(
            workers if workers is not None else config.workers
        )
        self.start_method = start_method
        self.kb_path = kb_path
        #: The configuration shipped to unit workers: identical search knobs,
        #: distribution turned off (units are serial slices by definition).
        self._unit_config = replace(config, distributed=False, workers=None)
        self._morpheus = Morpheus(
            library=library, config=self._unit_config, _sanctioned=True
        )
        #: Whether the last :meth:`drive` drained the whole frontier (every
        #: unit exhausted or pruned past the winner's bound) rather than
        #: stopping on the step budget.  Callers map an unsolved drive to
        #: ``exhausted`` vs ``timeout`` from this.
        self.frontier_exhausted = False

    @property
    def library(self):
        return self._morpheus.library

    def kernel(self, example: Example, k: Optional[int] = None) -> SearchKernel:
        """A kernel for *example* under this scheduler's cost model."""
        return self._morpheus.kernel(example, k=k)

    # ------------------------------------------------------------------
    def step_budget(self) -> Optional[int]:
        """The deterministic step budget replacing the wall clock.

        ``config.max_steps`` verbatim when set; else ``timeout`` converted
        at :data:`STEPS_PER_SECOND`; else unbounded.  Solve/timeout in
        distributed mode is a function of this budget alone, so the
        decision cannot flip when workers oversubscribe the CPUs.
        """
        if self.config.max_steps is not None:
            return self.config.max_steps
        if self.config.timeout is not None:
            return max(WARMUP_STEPS, int(self.config.timeout * STEPS_PER_SECOND))
        return None

    def drive(self, example: Example, kernel: SearchKernel) -> SynthesisResult:
        """Drive *kernel* to a decision, fanning its frontier over the pool."""
        started = time.monotonic()
        budget = self.step_budget()
        steps_before = kernel.steps_taken

        def consumed_local() -> int:
            return kernel.steps_taken - steps_before

        # Serial warm-up to (then across) the next hypothesis boundary.
        warmup = WARMUP_STEPS if budget is None else min(WARMUP_STEPS, budget)
        kernel.run(max_steps=warmup)
        if not kernel.done:
            kernel.run_to_boundary()
        if kernel.done or (budget is not None and consumed_local() >= budget):
            self.frontier_exhausted = kernel.exhausted
            return self._package(kernel, time.monotonic() - started)

        units = min(kernel.frontier.pending_hypotheses, MAX_UNITS)
        queue: Dict[int, dict] = dict(enumerate(kernel.split_snapshots(units)))
        remaining = kernel.k - len(kernel.solutions)
        # Each active dispatch slot gets the task's step budget -- the
        # deterministic analogue of N workers each running under the task's
        # wall-clock timeout.  Scaled by schedule constants and the unit
        # count (a function of the frontier), never by the worker count, so
        # the solve/timeout decision is identical for every ``--workers N``.
        if budget is not None:
            budget *= min(units, ACTIVE_UNITS)

        lemma_pool: Dict[str, list] = {}
        oe_pool: set = set()
        self._collect_exchange(
            lemma_pool,
            oe_pool,
            kernel.engine.lemma_store.export_entries()
            if kernel.engine.lemma_store is not None
            else [],
            kernel.oe_store.export_entries() if kernel.oe_store is not None else [],
        )

        candidates: List[dict] = []
        winning_tasks: Dict[Tuple[int, int], UnitTask] = {}
        delta = SynthesisStats()
        consumed_units = 0
        round_index = 0
        next_unit_id = units
        pool = self._open_pool()
        try:
            # The queue empties when every unit is exhausted or pruned past
            # the candidate bound -- the confirmation condition.  A step
            # budget can cut the loop earlier, with contenders still live.
            while queue and (
                budget is None or consumed_local() + consumed_units < budget
            ):
                round_index += 1
                next_unit_id = self._rebalance(queue, next_unit_id)
                lemma_seeds = [entry for _key, entry in sorted(lemma_pool.items())]
                oe_seeds = sorted(oe_pool)
                # This round's active set: the ACTIVE_UNITS units with the
                # provenance-smallest lower bounds (closest to what the
                # serial pop order would explore next).  Within the set, the
                # steal policy: units are dispatched costliest-first (by
                # pending-lane size, unit id breaking ties) through
                # imap_unordered, so whichever worker goes idle next pulls
                # the costliest unit still waiting.
                active = sorted(
                    queue, key=lambda uid: (self._queue_bound(queue[uid]), uid)
                )[:ACTIVE_UNITS]
                order = sorted(
                    active, key=lambda uid: (-len(queue[uid]["pending"]), uid)
                )
                tasks = [
                    (
                        unit_id,
                        queue[unit_id],
                        example,
                        self._unit_config,
                        self.library,
                        lemma_seeds,
                        oe_seeds,
                        UNIT_ROUND_STEPS,
                    )
                    for unit_id in order
                ]
                if pool is None:
                    results = [_run_unit(task) for task in tasks]
                else:
                    results = list(pool.imap_unordered(_run_unit, tasks))
                # Deterministic merge: unit-id order, regardless of the order
                # results came back in.
                results.sort(key=lambda item: item[0])
                by_unit = {task[0]: task for task in tasks}
                # Units outside the active set carry over untouched.
                next_queue: Dict[int, dict] = {
                    unit_id: payload
                    for unit_id, payload in queue.items()
                    if unit_id not in set(active)
                }
                for unit_id, outcome in results:
                    consumed_units += outcome["steps"]
                    merge_stats(delta, outcome["stats"])
                    for solution in outcome["solutions"]:
                        candidates.append(
                            {
                                "key": rank_from_json(solution["key"]),
                                "program": solution["program"],
                                "unit": unit_id,
                                "round": round_index,
                            }
                        )
                        winning_tasks[(unit_id, round_index)] = by_unit[unit_id]
                    self._collect_exchange(
                        lemma_pool, oe_pool, outcome["lemmas"], outcome["oe"]
                    )
                    if outcome["residual"] is not None:
                        next_queue[unit_id] = outcome["residual"]
                queue = self._prune(next_queue, candidates, remaining)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        kernel.steps_taken += consumed_units
        self.frontier_exhausted = not queue
        selected = self._select(candidates, remaining)
        # A candidate only counts once no live residual could still beat it
        # (queue empty = every unit exhausted or pruned past the bound); a
        # budget cut with contenders still live reports unsolved, keeping
        # the solve/timeout decision a pure function of the step budget.
        if selected and not queue:
            self._materialize(kernel, selected, winning_tasks)
        return self._package(kernel, time.monotonic() - started, delta)

    # ------------------------------------------------------------------
    def _open_pool(self):
        if self.workers == 1:
            return None
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method is not None
            else multiprocessing
        )
        initializer, initargs = pool_initializer(self.kb_path)
        return context.Pool(
            processes=self.workers, initializer=initializer, initargs=initargs
        )

    def _entry_bound(self, entry: dict) -> tuple:
        """The (priority, rank) key of one snapshot pending-lane entry."""
        hypothesis = decode_hypothesis(entry["hypothesis"], self.library)
        priority = self._morpheus.cost_model.priority(
            hypothesis_size(hypothesis), component_sequence(hypothesis)
        )
        rank = entry.get("rank")
        return (
            priority,
            rank_from_json(rank) if rank is not None else (0, entry["tiebreak"]),
        )

    def _rebalance(self, queue: Dict[int, dict], next_unit_id: int) -> int:
        """Split the costliest units until the active set is full again.

        The frontier steal that actually redistributes load: refinements
        enqueue into the unit that generated them, so over rounds the
        provenance-cheapest unit accretes most of the serial-relevant
        frontier while its siblings retire.  Whenever fewer than
        ``ACTIVE_UNITS`` units are live, the unit with the largest pending
        lane is split in two (contiguous halves of its canonical pending
        order -- the same partition rule as ``Frontier.split``).  Purely a
        function of the queue state, so the rebalanced schedule is
        identical for every worker count.
        """
        while len(queue) < ACTIVE_UNITS:
            # Only boundary-clean payloads split (units always drain to a
            # hypothesis boundary before suspending, so this is every
            # residual; the guard keeps the rule locally obvious).
            candidates_to_split = [
                uid for uid in queue if queue[uid].get("in_flight") is None
            ]
            victim = min(
                candidates_to_split,
                key=lambda uid: (-len(queue[uid]["pending"]), uid),
            ) if candidates_to_split else None
            if victim is None or len(queue[victim]["pending"]) < 2:
                break
            payload = queue[victim]
            pending = payload["pending"]
            middle = (len(pending) + 1) // 2
            for unit_id, chunk in (
                (victim, pending[:middle]),
                (next_unit_id, pending[middle:]),
            ):
                part = dict(payload)
                part["pending"] = chunk
                part["in_flight"] = None
                part["lower_bound"] = rank_to_json(self._entry_bound(chunk[0]))
                queue[unit_id] = part
            next_unit_id += 1
        return next_unit_id

    @staticmethod
    def _queue_bound(payload: dict) -> tuple:
        """A queued unit's lower bound, parsed from its snapshot."""
        bound = payload.get("lower_bound")
        if bound is None:
            # An empty-pending payload cannot produce candidates at all;
            # order it last (it retires on its next dispatch).
            return ((float("inf"), 0), (0, 0))
        return rank_from_json(bound)

    @staticmethod
    def _collect_exchange(lemma_pool, oe_pool, lemmas, oe_digests) -> None:
        """Fold one round's lemma/OE exports into the deterministic pools."""
        for entry in lemmas:
            lemma_pool[json.dumps(entry, sort_keys=True)] = entry
        oe_pool.update(oe_digests)

    @staticmethod
    def _select(candidates: List[dict], remaining: int) -> List[dict]:
        """The *remaining* provenance-smallest distinct candidate programs."""
        chosen: List[dict] = []
        seen: set = set()
        for candidate in sorted(candidates, key=lambda item: item["key"]):
            if candidate["program"] in seen:
                continue
            seen.add(candidate["program"])
            chosen.append(candidate)
            if len(chosen) >= remaining:
                break
        return chosen

    def _prune(
        self, queue: Dict[int, dict], candidates: List[dict], remaining: int
    ) -> Dict[int, dict]:
        """Drop residual units that can no longer affect the outcome.

        Once *remaining* distinct candidates exist, a residual whose lower
        bound strictly exceeds the last selected candidate's ``(priority,
        rank)`` prefix can only produce provenance-larger programs -- it is
        retired (its counters for completed rounds are already merged).
        Units at exactly the bound stay live: they advance past it next
        round or surface the same program (ties in the key prefix are the
        same hypothesis, hence the same completion stream).
        """
        selected = self._select(candidates, remaining)
        if len(selected) < remaining:
            return queue
        bound = selected[-1]["key"][:2]
        return {
            unit_id: payload
            for unit_id, payload in queue.items()
            if self._queue_bound(payload) <= bound
        }

    def _materialize(
        self,
        kernel: SearchKernel,
        selected: List[dict],
        winning_tasks: Dict[Tuple[int, int], UnitTask],
    ) -> None:
        """Rebuild the winning ``Hypothesis`` objects by local replay.

        Winners crossed the process boundary as text + key; the program
        object the caller receives is rebuilt by re-running the winning
        unit's round in this process with the byte-identical task tuple.
        The replay trajectory matches the worker's exactly -- lemma/OE/KB
        seeds shift work between caches and the solver but never change
        verdicts, steps or programs -- and runs inside its own fresh
        ``TaskContext``, so the caller's counter slices stay unpolluted.
        """
        replayed: Dict[Tuple[int, int], dict] = {}
        for candidate in selected:
            source = (candidate["unit"], candidate["round"])
            if source not in replayed:
                _unit_id, replay_kernel, _more = _drive_unit(winning_tasks[source])
                replayed[source] = {
                    key: program
                    for program, key in zip(
                        replay_kernel.solutions, replay_kernel.solution_keys
                    )
                }
            program = replayed[source].get(candidate["key"])
            if program is None:
                raise RuntimeError(
                    "distributed replay diverged from the worker's trajectory "
                    f"for unit {candidate['unit']} round {candidate['round']}"
                )
            kernel.solutions.append(program)
            kernel.solution_keys.append(candidate["key"])

    def _package(
        self,
        kernel: SearchKernel,
        elapsed: float,
        delta: Optional[SynthesisStats] = None,
    ) -> SynthesisResult:
        """Build the final result: the caller slice plus merged unit deltas.

        ``Morpheus.finalize`` would overwrite the cache/execution slices
        from the caller's baselines, clobbering the merged unit counters --
        so the scheduler assembles the result itself, with the same slicing
        for the caller's share and an additive merge for the units'.
        """
        stats = kernel.stats
        stats.frontier_peak = kernel.frontier.peak
        stats.solver_cache = (
            formula_cache_stats().snapshot().since(kernel.solver_cache_baseline)
        )
        stats.execution = (
            execution_stats().snapshot().since(kernel.execution_baseline)
        )
        if delta is not None:
            merge_stats(stats, delta)
        kernel.export_kb_facts()
        solutions = list(kernel.solutions)
        return SynthesisResult(
            solved=bool(solutions),
            program=solutions[0] if solutions else None,
            elapsed=elapsed,
            stats=stats,
            config=self.config,
            programs=solutions,
        )
