"""Figure 16: per-category synthesis with No-deduction / Spec 1 / Spec 2.

Each pytest-benchmark target times Morpheus under one of the paper's three
configurations on one representative benchmark per category; the
``test_figure16_summary`` target runs the aggregated table on the subset and
asserts the paper's qualitative shape (deduction never solves fewer tasks).

Regenerate the full table with::

    python -m repro.benchmarks.cli figure16 --timeout 60
"""

import pytest

from repro.baselines import (
    FIGURE16_CONFIGS,
    override_config,
    spec2_config,
    spec2_no_cdcl_config,
    spec2_no_oe_config,
    spec2_no_prescreen_config,
)
from repro.benchmarks import (
    deduction_summary_table,
    execution_summary_table,
    figure16_table,
    r_benchmark_suite,
    run_benchmark,
    run_figure16,
    run_suite,
)
from conftest import BENCH_FULL, BENCH_TIMEOUT, REPRESENTATIVE_BENCHMARKS

SUITE = r_benchmark_suite()
NAMES = SUITE.names() if BENCH_FULL else REPRESENTATIVE_BENCHMARKS


@pytest.mark.parametrize("config_name", list(FIGURE16_CONFIGS))
@pytest.mark.parametrize("benchmark_name", NAMES)
def test_figure16_cell(benchmark, config_name, benchmark_name):
    """Time one (configuration, benchmark) cell of Figure 16."""
    task = SUITE.get(benchmark_name)
    config = FIGURE16_CONFIGS[config_name](BENCH_TIMEOUT)

    def run():
        return run_benchmark(task, config, label=config_name)

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["solved"] = outcome.solved
    benchmark.extra_info["category"] = outcome.category


def test_figure16_summary(capsys):
    """Aggregate the subset and check the qualitative ordering of Figure 16."""
    subset = SUITE.subset(names=NAMES)
    runs = run_figure16(timeout=BENCH_TIMEOUT, suite=subset)
    table = figure16_table(runs)
    with capsys.disabled():
        print("\n" + table)
        print(deduction_summary_table(runs))
        print(execution_summary_table(runs))
    assert runs["spec2"].solved >= runs["spec1"].solved >= 0
    assert runs["spec2"].solved >= runs["no-deduction"].solved
    # The tier-1 prescreen must decide a majority of the deduction queries it
    # sweeps on the subset (the ISSUE 4 acceptance bar is >= 50%).
    decided = sum(outcome.prescreen_decided for outcome in runs["spec2"].outcomes)
    fallback = sum(outcome.prescreen_fallback for outcome in runs["spec2"].outcomes)
    assert decided > 0
    assert decided >= fallback, (decided, fallback)
    # The columnar comparison fast path must actually fire on the subset.
    assert sum(outcome.compare_fastpath_hits for outcome in runs["spec2"].outcomes) > 0
    assert sum(outcome.tables_built for outcome in runs["spec2"].outcomes) > 0


def _outcomes(run):
    return [(o.benchmark, o.solved, o.program) for o in run.outcomes]


def test_prescreen_ablation_smoke(capsys):
    """Prescreen vs --no-prescreen on the Figure 16 subset: same programs, less work.

    The acceptance bar for the tier-1 interval prescreen (ISSUE 4): with the
    prescreen enabled the run must decide >= 50% of its deduction queries
    without the solver, issue *fewer* SMT ``check()`` calls than the
    ablation, and synthesize byte-identical programs with identical
    solve/fail outcomes.
    """
    subset = SUITE.subset(names=NAMES)
    tiered = run_suite(subset, spec2_config, timeout=BENCH_TIMEOUT, label="spec2")
    plain = run_suite(
        subset, spec2_no_prescreen_config, timeout=BENCH_TIMEOUT,
        label="spec2-no-prescreen",
    )
    decided = sum(o.prescreen_decided for o in tiered.outcomes)
    fallback = sum(o.prescreen_fallback for o in tiered.outcomes)
    with capsys.disabled():
        print(
            f"\nprescreen: decided={decided} fallback={fallback} "
            f"smt={sum(o.smt_calls for o in tiered.outcomes)} | "
            f"no-prescreen: smt={sum(o.smt_calls for o in plain.outcomes)}"
        )
    assert _outcomes(tiered) == _outcomes(plain)
    assert decided >= fallback, (decided, fallback)
    assert sum(o.smt_calls for o in tiered.outcomes) < sum(
        o.smt_calls for o in plain.outcomes
    )
    assert all(o.prescreen_decided == 0 for o in plain.outcomes)


def test_oe_ablation_smoke(capsys):
    """OE vs --no-oe on the Figure 16 subset: same programs, less completion work.

    The acceptance bar for the observational-equivalence store (ISSUE 5):
    with merging enabled the run must collapse at least one duplicate
    completion state (``oe_merged > 0``), try no *more* candidate hole
    fillings than the ablation, and synthesize byte-identical programs with
    identical solve/fail outcomes.
    """
    subset = SUITE.subset(names=NAMES)
    merged = run_suite(subset, spec2_config, timeout=BENCH_TIMEOUT, label="spec2")
    plain = run_suite(
        subset, spec2_no_oe_config, timeout=BENCH_TIMEOUT, label="spec2-no-oe"
    )
    oe_merged = sum(o.oe_merged for o in merged.outcomes)
    with capsys.disabled():
        print(
            f"\noe: candidates={sum(o.oe_candidates for o in merged.outcomes)} "
            f"merged={oe_merged} "
            f"partial={sum(o.partial_programs for o in merged.outcomes)} | "
            f"no-oe: partial={sum(o.partial_programs for o in plain.outcomes)}"
        )
    assert _outcomes(merged) == _outcomes(plain)
    assert oe_merged > 0
    assert sum(o.partial_programs for o in merged.outcomes) <= sum(
        o.partial_programs for o in plain.outcomes
    )
    assert all(o.oe_candidates == 0 for o in plain.outcomes)


def test_cdcl_ablation_smoke(capsys):
    """CDCL vs --no-cdcl on the Figure 16 subset: same outcomes, less work.

    The acceptance bar for conflict-driven lemma learning: with CDCL enabled
    the run must report lemma prunes, issue *fewer* SMT ``check()`` calls
    than the ablation, and synthesize byte-identical programs with identical
    solve/fail outcomes.  Both sides run without the tier-1 prescreen, which
    otherwise absorbs the easy conflicts before any lemma can be mined.
    """
    subset = SUITE.subset(names=NAMES)
    cdcl = run_suite(
        subset, spec2_no_prescreen_config, timeout=BENCH_TIMEOUT,
        label="spec2-no-prescreen",
    )
    plain = run_suite(
        subset,
        override_config(spec2_no_cdcl_config, prescreen=False),
        timeout=BENCH_TIMEOUT,
        label="spec2-no-cdcl-no-prescreen",
    )
    with capsys.disabled():
        print(
            f"\ncdcl: smt={sum(o.smt_calls for o in cdcl.outcomes)} "
            f"prunes={sum(o.lemma_prunes for o in cdcl.outcomes)} "
            f"mining_solves={sum(o.lemma_mining_solves for o in cdcl.outcomes)} | "
            f"no-cdcl: smt={sum(o.smt_calls for o in plain.outcomes)}"
        )
    assert _outcomes(cdcl) == _outcomes(plain)
    assert sum(o.lemma_prunes for o in cdcl.outcomes) > 0
    assert sum(o.smt_calls for o in cdcl.outcomes) < sum(
        o.smt_calls for o in plain.outcomes
    )
