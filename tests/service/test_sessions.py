"""Tests for the session store: scheduler, TTL, rate limiting, persistence."""

import json
import os
import time

import pytest

from repro import Table
from repro.api import ExamplePayload, SynthesisRequest
from repro.service import RateLimited, SessionStore, TokenBucket, UnknownSession

STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
ADULTS = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])


def filter_request(**knobs):
    knobs.setdefault("timeout", 20)
    return SynthesisRequest.from_tables([STUDENTS], ADULTS, **knobs)


def wait_until(predicate, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture
def store():
    store = SessionStore(ttl=None, rate=1000, burst=1000)
    yield store
    store.close()


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=0.001, burst=3)
        assert [bucket.allow() for _ in range(4)] == [True, True, True, False]
        assert bucket.denied == 1

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=1000, burst=1)
        assert bucket.allow()
        assert not bucket.allow()
        time.sleep(0.01)
        assert bucket.allow()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(burst=0)


class TestSessionStore:
    def test_scheduler_drives_sessions_to_completion(self, store):
        session = store.create(filter_request())
        assert wait_until(lambda: session.session.finished)
        assert session.session.status == "done"
        assert session.session.candidates

    def test_round_robin_serves_concurrent_sessions(self, store):
        sessions = [store.create(filter_request()) for _ in range(3)]
        assert wait_until(lambda: all(s.session.finished for s in sessions))
        programs = {s.session.candidates[0].program for s in sessions}
        assert len(programs) == 1  # identical tasks, identical programs

    def test_get_unknown_session_raises(self, store):
        with pytest.raises(UnknownSession):
            store.get("not-a-session")

    def test_add_example_resumes_and_reenrolls(self, store):
        session = store.create(filter_request())
        assert wait_until(lambda: session.session.finished)
        steps_before = session.session.steps
        store.add_example(
            session.id,
            ExamplePayload.make(
                [Table(["name", "age", "gpa"], [["Zoe", 8, 3.5], ["Max", 20, 2.0]])],
                Table(["name", "age", "gpa"], [["Max", 20, 2.0]]),
            ),
        )
        assert session.session.resumes == 1
        assert wait_until(lambda: session.session.finished, timeout=40.0)
        assert session.session.steps > steps_before
        assert any(c.validated for c in session.session.candidates)

    def test_finished_sessions_release_their_scheduler_slot(self, store):
        session = store.create(filter_request())
        assert wait_until(lambda: session.session.finished)
        assert wait_until(lambda: store._interleaver.unfinished == 0)
        # No task-list slot retained either: the interleaver must not keep
        # finished (and later expired) sessions reachable forever.
        assert len(store._interleaver._tasks) == 0

    def test_metrics_aggregate_counters(self, store):
        session = store.create(filter_request())
        assert wait_until(lambda: session.session.finished)
        metrics = store.metrics()
        assert metrics["sessions_live"] == 1
        assert metrics["sessions_created_total"] == 1
        assert metrics["kernel_steps_total"] > 0

    def test_rate_limited_create_raises(self):
        store = SessionStore(ttl=None, rate=0.001, burst=1)
        try:
            store.create(filter_request())
            with pytest.raises(RateLimited):
                store.create(filter_request())
            assert store.metrics()["rate_limited_total"] == 1
        finally:
            store.close()


class TestEnrollmentRace:
    def test_resume_in_the_unenroll_gap_is_not_lost(self):
        """A client adding an example right as the final slice ends must not
        strand the resumed session outside the scheduler rotation.

        The race window is after the slice releases the work lock (the
        post-slice ``notify_all``) and before the scheduler decides whether
        the session leaves the rotation.  The store is driven by hand so the
        window is hit deterministically: a proxy condition injects the
        ``add_example`` exactly there.  Before the registry-lock fix the
        session stayed ``searching`` forever (``_enrolled`` still true when
        ``_enroll`` checked, then dropped by the scheduler).
        """
        store = SessionStore(ttl=None, rate=1000, burst=1000)
        store._stop.set()
        store._wake.set()
        store._scheduler.join(timeout=5)
        try:
            session = store.create(filter_request())
            real_changed = session.changed
            injected = []

            class InjectingCondition:
                def __enter__(self):
                    return real_changed.__enter__()

                def __exit__(self, *args):
                    return real_changed.__exit__(*args)

                def wait(self, timeout=None):
                    return real_changed.wait(timeout)

                def notify_all(self):
                    real_changed.notify_all()
                    if session.session.finished and not injected:
                        injected.append(True)
                        store.add_example(
                            session.id,
                            ExamplePayload.make(
                                [Table(["name", "age", "gpa"],
                                       [["Zoe", 8, 3.5], ["Max", 20, 2.0]])],
                                Table(["name", "age", "gpa"],
                                      [["Max", 20, 2.0]]),
                            ),
                        )

            session.changed = InjectingCondition()
            while store._interleaver.pump():
                pass
            session.changed = real_changed
            assert injected
            assert session.session.resumes == 1
            # The resumed search kept its rotation slot (or was re-enrolled)
            # and ran to completion instead of hanging in 'searching'.
            assert session.session.finished
            assert any(c.validated for c in session.session.candidates)
        finally:
            store.close()


class TestTTL:
    def test_idle_sessions_expire(self):
        store = SessionStore(ttl=0.05, rate=1000, burst=1000)
        try:
            session = store.create(filter_request())
            assert wait_until(lambda: session.expired, timeout=10.0)
            assert session.status == "expired"
            with pytest.raises(UnknownSession):
                store.get(session.id)
            assert store.metrics()["sessions_expired_total"] == 1
        finally:
            store.close()


    def test_expiry_deletes_the_persisted_file(self, tmp_path):
        # The TTL sweep used to drop expired sessions from memory but leave
        # <persist_dir>/<id>.json behind forever; expiry must remove it.
        store = SessionStore(
            ttl=0.05, rate=1000, burst=1000, persist_dir=str(tmp_path)
        )
        try:
            session = store.create(filter_request())
            path = tmp_path / f"{session.id}.json"
            assert wait_until(path.exists)
            assert wait_until(lambda: session.expired, timeout=10.0)
            assert wait_until(lambda: not path.exists(), timeout=10.0)
            assert not os.path.exists(str(path) + ".tmp")
        finally:
            store.close()


class TestKnowledgeBase:
    def test_store_opens_a_shared_kb_and_reports_metrics(self, tmp_path):
        kb_path = str(tmp_path / "service.kb")
        store = SessionStore(ttl=None, rate=1000, burst=1000, kb_path=kb_path)
        try:
            first = store.create(filter_request())
            assert wait_until(lambda: first.session.finished)
            metrics = store.metrics()
            assert metrics["kb_entries"] > 0
            assert metrics["kb_stores_total"] > 0
            # A second session over the same example warm-starts from the
            # facts the first one persisted.
            second = store.create(filter_request())
            assert wait_until(lambda: second.session.finished)
            assert store.metrics()["kb_hits_total"] > 0
            assert [c.program for c in second.session.candidates] == [
                c.program for c in first.session.candidates
            ]
        finally:
            store.close()

    def test_kb_survives_store_restarts(self, tmp_path):
        kb_path = str(tmp_path / "service.kb")
        store = SessionStore(ttl=None, rate=1000, burst=1000, kb_path=kb_path)
        try:
            session = store.create(filter_request())
            assert wait_until(lambda: session.session.finished)
        finally:
            store.close()
        reopened = SessionStore(ttl=None, rate=1000, burst=1000, kb_path=kb_path)
        try:
            session = reopened.create(filter_request())
            assert wait_until(lambda: session.session.finished)
            assert reopened.metrics()["kb_hits_total"] > 0
        finally:
            reopened.close()


class TestPersistence:
    def test_finished_sessions_are_written_to_disk(self, tmp_path):
        store = SessionStore(ttl=None, rate=1000, burst=1000, persist_dir=str(tmp_path))
        try:
            session = store.create(filter_request())
            assert wait_until(lambda: session.session.finished)
            path = tmp_path / f"{session.id}.json"
            assert wait_until(path.exists)
            payload = json.loads(path.read_text())
            assert payload["id"] == session.id
            assert payload["status"] == "done"
            assert payload["state"]["candidates"]
            assert payload["snapshot"] is None  # finished: no frontier left to resume
            assert store.load_persisted(session.id) == payload
        finally:
            store.close()

    def test_suspension_persists_the_frontier_snapshot(self, tmp_path):
        store = SessionStore(ttl=None, rate=1000, burst=1000, persist_dir=str(tmp_path))
        try:
            session = store.create(filter_request())
            assert wait_until(lambda: session.session.finished)
            store.add_example(
                session.id,
                ExamplePayload.make(
                    [Table(["name", "age", "gpa"], [["Zoe", 8, 3.5], ["Max", 20, 2.0]])],
                    Table(["name", "age", "gpa"], [["Max", 20, 2.0]]),
                ),
            )
            payload = store.load_persisted(session.id)
            if payload["snapshot"] is not None:  # unless the resume already finished
                assert payload["snapshot"]["version"] == 1
                assert "pending" in payload["snapshot"]
        finally:
            store.close()

    def test_load_persisted_unknown_id_raises(self, tmp_path):
        store = SessionStore(ttl=None, persist_dir=str(tmp_path))
        try:
            with pytest.raises(UnknownSession):
                store.load_persisted("missing")
        finally:
            store.close()

    def test_close_persists_live_sessions(self, tmp_path):
        store = SessionStore(ttl=None, rate=1000, burst=1000, persist_dir=str(tmp_path))
        session = store.create(filter_request())
        store.close()
        assert os.path.exists(tmp_path / f"{session.id}.json")
