"""Per-task isolation of the process-wide execution state.

Three pieces of process-wide state feed the deterministic per-task counters
the benchmark harness diffs byte-for-byte: the value intern pool
(:mod:`repro.dataframe.interning`), the execution counter block
(:mod:`repro.dataframe.profiling`), and the SMT formula cache
(:mod:`repro.smt.solver`).  The serial harness resets all three before each
task; a process that *interleaves* several search kernels cannot reset --
each kernel needs its own copies, installed whenever that kernel runs.

:class:`TaskContext` packages the three into one swappable unit.  A kernel
constructed and stepped inside ``with context.active():`` observes exactly
the state a dedicated, freshly-reset process would have observed, so its
counters (and, because caches only affect *work*, its synthesized programs)
are byte-identical to a whole-task run.  Activation is cheap -- three module
globals are swapped, no data is copied -- which is what makes stepping many
kernels round-robin in one process affordable.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..dataframe.interning import install_intern_pool
from ..dataframe.profiling import ExecutionStats, install_execution_stats
from ..smt.solver import install_formula_cache, new_formula_cache


class TaskContext:
    """Isolated intern pool + execution counters + formula cache for one task."""

    __slots__ = ("execution", "intern_pool", "formula_cache", "_previous")

    def __init__(self) -> None:
        self.execution = ExecutionStats()
        self.intern_pool: dict = {}
        self.formula_cache = new_formula_cache()
        self._previous = None

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Swap this context's state into the process globals."""
        if self._previous is not None:
            raise RuntimeError("TaskContext is already installed")
        self._previous = (
            install_execution_stats(self.execution),
            install_intern_pool(self.intern_pool),
            install_formula_cache(self.formula_cache),
        )

    def uninstall(self) -> None:
        """Restore the state that was installed before :meth:`install`."""
        if self._previous is None:
            raise RuntimeError("TaskContext is not installed")
        execution, pool, cache = self._previous
        self._previous = None
        install_execution_stats(execution)
        install_intern_pool(pool)
        install_formula_cache(cache)

    @contextmanager
    def active(self):
        """Run a block with this context's state installed."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()
