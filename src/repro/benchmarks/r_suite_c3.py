"""Category C3 of the R benchmark suite (34 tasks).

C3 is the largest category of the paper's evaluation: *"combination of
reshaping and string manipulation of cell contents"* -- pipelines built from
``gather`` / ``spread`` / ``unite`` / ``separate``, optionally with a
projection or selection.  Each task below uses a distinct schema/domain and a
distinct reference pipeline; the expected output is computed by running the
reference pipeline on the input.
"""

from __future__ import annotations

from ..components import dplyr, tidyr
from ..dataframe.table import Table
from .suite import BenchmarkSuite


def register_c3(suite: BenchmarkSuite) -> None:
    """Register the 34 C3 benchmarks into *suite*."""

    # ------------------------------------------------------------------ 1
    suite.add(
        "c3_grades_unite_spread",
        "C3",
        "Combine subject and term into one header and widen student grades.",
        [Table(["student", "subject", "term", "grade"],
               [["ann", "math", "t1", 91], ["ann", "math", "t2", 87],
                ["bob", "math", "t1", 74], ["bob", "math", "t2", 79]])],
        lambda tables: tidyr.spread(
            tidyr.unite(tables[0], "subject_term", ["subject", "term"]), "subject_term", "grade"
        ),
        ["unite", "spread"],
    )

    # ------------------------------------------------------------------ 2
    suite.add(
        "c3_sensor_gather_separate",
        "C3",
        "Gather sensor reading columns and split the reading name into kind and unit.",
        [Table(["probe", "temp_c", "hum_pct"],
               [["p1", 20, 31], ["p2", 22, 40], ["p3", 19, 55]])],
        lambda tables: tidyr.separate(
            tidyr.gather(tables[0], "measure", "value", ["temp_c", "hum_pct"]),
            "measure", ["kind", "unit"],
        ),
        ["gather", "separate"],
    )

    # ------------------------------------------------------------------ 3
    suite.add(
        "c3_sales_gather",
        "C3",
        "Reshape quarterly sales columns into long key/value form.",
        [Table(["shop", "q1", "q2", "q3"],
               [["north", 10, 12, 9], ["south", 7, 6, 11]])],
        lambda tables: tidyr.gather(tables[0], "quarter", "sales", ["q1", "q2", "q3"]),
        ["gather"],
    )

    # ------------------------------------------------------------------ 4
    suite.add(
        "c3_visits_spread",
        "C3",
        "Widen a long table of website visits per device.",
        [Table(["site", "device", "visits"],
               [["a.com", "mobile", 120], ["a.com", "desktop", 80],
                ["b.com", "mobile", 45], ["b.com", "desktop", 60]])],
        lambda tables: tidyr.spread(tables[0], "device", "visits"),
        ["spread"],
    )

    # ------------------------------------------------------------------ 5
    suite.add(
        "c3_patient_separate",
        "C3",
        "Split a combined patient identifier into site and number.",
        [Table(["pid", "score"],
               [["mayo_001", 7], ["mayo_002", 4], ["uw_001", 9]])],
        lambda tables: tidyr.separate(tables[0], "pid", ["site", "number"]),
        ["separate"],
    )

    # ------------------------------------------------------------------ 6
    suite.add(
        "c3_flights_unite",
        "C3",
        "Concatenate carrier and flight number into a single key.",
        [Table(["carrier", "number", "dest"],
               [["AA", 11, "LAX"], ["UA", 90, "ORD"], ["DL", 5, "ATL"]])],
        lambda tables: tidyr.unite(tables[0], "flight", ["carrier", "number"]),
        ["unite"],
    )

    # ------------------------------------------------------------------ 7
    suite.add(
        "c3_weather_gather_spread",
        "C3",
        "Move min/max temperature columns into rows per element, then widen by day.",
        [Table(["city", "day", "tmin", "tmax"],
               [["austin", "mon", 15, 30], ["austin", "tue", 17, 33],
                ["dallas", "mon", 12, 28], ["dallas", "tue", 14, 29]])],
        lambda tables: tidyr.spread(
            tidyr.gather(tables[0], "element", "temp", ["tmin", "tmax"]), "day", "temp"
        ),
        ["gather", "spread"],
    )

    # ------------------------------------------------------------------ 8
    suite.add(
        "c3_exam_gather_unite_spread",
        "C3",
        "Gather exam parts, merge part with the year and widen (Example 1 idiom).",
        [Table(["id", "year", "A", "B"],
               [[1, 2007, 5, 10], [2, 2007, 3, 50], [1, 2009, 5, 17], [2, 2009, 6, 17]])],
        lambda tables: tidyr.spread(
            tidyr.unite(
                tidyr.gather(tables[0], "var", "val", ["A", "B"]), "yearvar", ["var", "year"]
            ),
            "yearvar", "val",
        ),
        ["gather", "unite", "spread"],
    )

    # ------------------------------------------------------------------ 9
    suite.add(
        "c3_stock_separate_spread",
        "C3",
        "Split a ticker_metric column and widen by metric.",
        [Table(["key", "value"],
               [["ibm_open", 140], ["ibm_close", 143], ["hp_open", 31], ["hp_close", 30]])],
        lambda tables: tidyr.spread(
            tidyr.separate(tables[0], "key", ["ticker", "metric"]), "metric", "value"
        ),
        ["separate", "spread"],
    )

    # ------------------------------------------------------------------ 10
    suite.add(
        "c3_survey_gather_select",
        "C3",
        "Gather answer columns into long form and drop the respondent age.",
        [Table(["person", "age", "q1", "q2"],
               [["ann", 33, "yes", "no"], ["bob", 41, "no", "no"], ["eve", 29, "yes", "yes"]])],
        lambda tables: dplyr.select(
            tidyr.gather(tables[0], "question", "answer", ["q1", "q2"]),
            ["person", "question", "answer"],
        ),
        ["gather", "select"],
    )

    # ------------------------------------------------------------------ 11
    suite.add(
        "c3_energy_spread_select",
        "C3",
        "Widen meter readings by period and keep only the morning column.",
        [Table(["meter", "period", "kwh"],
               [["m1", "am", 3], ["m1", "pm", 5], ["m2", "am", 2], ["m2", "pm", 7]])],
        lambda tables: dplyr.select(
            tidyr.spread(tables[0], "period", "kwh"), ["meter", "am"]
        ),
        ["spread", "select"],
    )

    # ------------------------------------------------------------------ 12
    suite.add(
        "c3_books_unite_filter",
        "C3",
        "Join author and title into one label, keeping only post-2000 books.",
        [Table(["author", "title", "year"],
               [["orwell", "novel1", 1949], ["liu", "novel2", 2008], ["chiang", "novel3", 2002]])],
        lambda tables: tidyr.unite(
            dplyr.filter_rows(tables[0], lambda row: row["year"] > 2000), "book", ["author", "title"]
        ),
        ["filter", "unite"],
    )

    # ------------------------------------------------------------------ 13
    suite.add(
        "c3_runs_gather_filter",
        "C3",
        "Gather split times and keep only the second lap.",
        [Table(["runner", "lap1", "lap2"],
               [["ann", 61, 64], ["bob", 58, 66], ["eve", 70, 69]])],
        lambda tables: dplyr.filter_rows(
            tidyr.gather(tables[0], "lap", "seconds", ["lap1", "lap2"]),
            lambda row: row["lap"] == "lap2",
        ),
        ["gather", "filter"],
    )

    # ------------------------------------------------------------------ 14
    suite.add(
        "c3_gene_separate_filter",
        "C3",
        "Split a sample label into tissue and replicate, keeping liver samples.",
        [Table(["sample", "expr"],
               [["liver_r1", 5.5], ["liver_r2", 6.1], ["brain_r1", 2.2], ["brain_r2", 2.4]])],
        lambda tables: dplyr.filter_rows(
            tidyr.separate(tables[0], "sample", ["tissue", "rep"]),
            lambda row: row["tissue"] == "liver",
        ),
        ["separate", "filter"],
    )

    # ------------------------------------------------------------------ 15
    suite.add(
        "c3_menu_spread_two_keys",
        "C3",
        "Widen menu prices by size.",
        [Table(["item", "size", "price"],
               [["latte", "small", 3], ["latte", "large", 4],
                ["tea", "small", 2], ["tea", "large", 3]])],
        lambda tables: tidyr.spread(tables[0], "size", "price"),
        ["spread"],
    )

    # ------------------------------------------------------------------ 16
    suite.add(
        "c3_city_unite_spread",
        "C3",
        "Combine country and city names, then widen population by census year.",
        [Table(["country", "city", "census", "pop"],
               [["us", "austin", 2010, 790], ["us", "austin", 2020, 960],
                ["fr", "lyon", 2010, 480], ["fr", "lyon", 2020, 520]])],
        lambda tables: tidyr.spread(
            tidyr.unite(tables[0], "place", ["country", "city"]), "census", "pop"
        ),
        ["unite", "spread"],
    )

    # ------------------------------------------------------------------ 17
    suite.add(
        "c3_hr_gather_unite",
        "C3",
        "Gather salary components and tag each with the employee name.",
        [Table(["emp", "base", "bonus"],
               [["ann", 100, 10], ["bob", 90, 5]])],
        lambda tables: tidyr.unite(
            tidyr.gather(tables[0], "component", "amount", ["base", "bonus"]),
            "emp_component", ["emp", "component"],
        ),
        ["gather", "unite"],
    )

    # ------------------------------------------------------------------ 18
    suite.add(
        "c3_lab_gather_three",
        "C3",
        "Gather three assay columns into long form.",
        [Table(["cell", "assay_a", "assay_b", "assay_c"],
               [["c1", 1, 4, 9], ["c2", 2, 5, 8]])],
        lambda tables: tidyr.gather(tables[0], "assay", "result", ["assay_a", "assay_b", "assay_c"]),
        ["gather"],
    )

    # ------------------------------------------------------------------ 19
    suite.add(
        "c3_poll_spread_filter",
        "C3",
        "Keep only the 2024 polls and widen by candidate.",
        [Table(["state", "year", "candidate", "share"],
               [["tx", 2020, "a", 46], ["tx", 2020, "b", 52],
                ["tx", 2024, "a", 48], ["tx", 2024, "b", 50],
                ["ca", 2024, "a", 61], ["ca", 2024, "b", 37]])],
        lambda tables: tidyr.spread(
            dplyr.filter_rows(tables[0], lambda row: row["year"] == 2024), "candidate", "share"
        ),
        ["filter", "spread"],
    )

    # ------------------------------------------------------------------ 20
    suite.add(
        "c3_recipe_separate_select",
        "C3",
        "Split an ingredient_unit column and drop the recipe id.",
        [Table(["rid", "ingredient", "amount"],
               [[1, "flour_g", 500], [1, "milk_ml", 250], [2, "sugar_g", 100]])],
        lambda tables: dplyr.select(
            tidyr.separate(tables[0], "ingredient", ["item", "unit"]),
            ["item", "unit", "amount"],
        ),
        ["separate", "select"],
    )

    # ------------------------------------------------------------------ 21
    suite.add(
        "c3_traffic_gather_spread_roundtrip",
        "C3",
        "Turn hourly columns into rows and widen by street instead.",
        [Table(["street", "h8", "h9"],
               [["main", 120, 180], ["oak", 40, 70], ["pine", 15, 20]])],
        lambda tables: tidyr.spread(
            tidyr.gather(tables[0], "hour", "cars", ["h8", "h9"]), "street", "cars"
        ),
        ["gather", "spread"],
    )

    # ------------------------------------------------------------------ 22
    suite.add(
        "c3_inventory_unite_select",
        "C3",
        "Build a warehouse-bin location string and keep only sku and location.",
        [Table(["sku", "warehouse", "bin", "stock"],
               [["s1", "east", "b4", 12], ["s2", "west", "a1", 3], ["s3", "east", "c2", 9]])],
        lambda tables: dplyr.select(
            tidyr.unite(tables[0], "location", ["warehouse", "bin"]), ["sku", "location"]
        ),
        ["unite", "select"],
    )

    # ------------------------------------------------------------------ 23
    suite.add(
        "c3_music_spread_strings",
        "C3",
        "Widen a long table of award results (string cells).",
        [Table(["artist", "award", "result"],
               [["ava", "best_song", "won"], ["ava", "best_album", "lost"],
                ["leo", "best_song", "lost"], ["leo", "best_album", "won"]])],
        lambda tables: tidyr.spread(tables[0], "award", "result"),
        ["spread"],
    )

    # ------------------------------------------------------------------ 24
    suite.add(
        "c3_shift_gather_separate_filter",
        "C3",
        "Gather shift columns, split the shift code, and keep night shifts.",
        [Table(["worker", "mon_day", "mon_night"],
               [["ann", 8, 0], ["bob", 4, 4], ["eve", 0, 8]])],
        lambda tables: dplyr.filter_rows(
            tidyr.separate(
                tidyr.gather(tables[0], "shift", "hours", ["mon_day", "mon_night"]),
                "shift", ["weekday", "period"],
            ),
            lambda row: row["period"] == "night",
        ),
        ["gather", "separate", "filter"],
    )

    # ------------------------------------------------------------------ 25
    suite.add(
        "c3_tickets_unite_spread_counts",
        "C3",
        "Combine venue and section, widening ticket counts by day.",
        [Table(["venue", "section", "day", "sold"],
               [["arena", "floor", "fri", 200], ["arena", "floor", "sat", 250],
                ["arena", "balcony", "fri", 90], ["arena", "balcony", "sat", 120]])],
        lambda tables: tidyr.spread(
            tidyr.unite(tables[0], "seat", ["venue", "section"]), "day", "sold"
        ),
        ["unite", "spread"],
    )

    # ------------------------------------------------------------------ 26
    suite.add(
        "c3_crops_gather_select_filter",
        "C3",
        "Gather yield columns, drop the farm size, and keep wheat rows.",
        [Table(["farm", "acres", "wheat", "corn"],
               [["f1", 120, 30, 80], ["f2", 300, 55, 140], ["f3", 80, 12, 20]])],
        lambda tables: dplyr.filter_rows(
            dplyr.select(
                tidyr.gather(tables[0], "crop", "yield", ["wheat", "corn"]),
                ["farm", "crop", "yield"],
            ),
            lambda row: row["crop"] == "wheat",
        ),
        ["gather", "select", "filter"],
    )

    # ------------------------------------------------------------------ 27
    suite.add(
        "c3_chem_separate_spread",
        "C3",
        "Split compound_phase labels and widen measured density by phase.",
        [Table(["label", "density"],
               [["water_liquid", 1.0], ["water_solid", 0.92],
                ["ethanol_liquid", 0.79], ["ethanol_solid", 0.81]])],
        lambda tables: tidyr.spread(
            tidyr.separate(tables[0], "label", ["compound", "phase"]), "phase", "density"
        ),
        ["separate", "spread"],
    )

    # ------------------------------------------------------------------ 28
    suite.add(
        "c3_league_gather_home_away",
        "C3",
        "Gather home/away goal columns into a single long table.",
        [Table(["team", "home_goals", "away_goals"],
               [["reds", 31, 22], ["blues", 28, 25], ["greens", 19, 14]])],
        lambda tables: tidyr.gather(tables[0], "venue", "goals", ["home_goals", "away_goals"]),
        ["gather"],
    )

    # ------------------------------------------------------------------ 29
    suite.add(
        "c3_device_unite_filter_strings",
        "C3",
        "Tag devices with their OS-version string, keeping only tablets.",
        [Table(["device", "os", "version", "kind"],
               [["d1", "android", 14, "phone"], ["d2", "ios", 17, "tablet"],
                ["d3", "android", 13, "tablet"]])],
        lambda tables: tidyr.unite(
            dplyr.filter_rows(tables[0], lambda row: row["kind"] == "tablet"),
            "platform", ["os", "version"],
        ),
        ["filter", "unite"],
    )

    # ------------------------------------------------------------------ 30
    suite.add(
        "c3_rainfall_spread_years",
        "C3",
        "Widen rainfall observations by year.",
        [Table(["station", "year", "mm"],
               [["s1", 2021, 700], ["s1", 2022, 650], ["s2", 2021, 820], ["s2", 2022, 790]])],
        lambda tables: tidyr.spread(tables[0], "year", "mm"),
        ["spread"],
    )

    # ------------------------------------------------------------------ 31
    suite.add(
        "c3_courses_separate_unite",
        "C3",
        "Split a course code into department and number, then re-join with the term.",
        [Table(["code", "term", "enrolled"],
               [["cs_101", "fall", 120], ["cs_301", "spring", 45], ["ee_210", "fall", 80]])],
        lambda tables: tidyr.unite(
            tidyr.separate(tables[0], "code", ["dept", "number"]), "offering", ["dept", "term"]
        ),
        ["separate", "unite"],
    )

    # ------------------------------------------------------------------ 32
    suite.add(
        "c3_support_gather_wide_strings",
        "C3",
        "Gather weekday ticket-queue columns (string severities) into long form.",
        [Table(["agent", "monday", "tuesday"],
               [["kim", "high", "low"], ["lee", "low", "low"], ["pat", "medium", "high"]])],
        lambda tables: tidyr.gather(tables[0], "day", "severity", ["monday", "tuesday"]),
        ["gather"],
    )

    # ------------------------------------------------------------------ 33
    suite.add(
        "c3_warehouse_spread_then_project",
        "C3",
        "Widen stock counts by location and keep the east-coast column only.",
        [Table(["sku", "location", "count"],
               [["s1", "east", 5], ["s1", "west", 9], ["s2", "east", 13], ["s2", "west", 2]])],
        lambda tables: dplyr.select(
            tidyr.spread(tables[0], "location", "count"), ["sku", "east"]
        ),
        ["spread", "select"],
    )

    # ------------------------------------------------------------------ 34
    suite.add(
        "c3_trial_gather_separate_spread",
        "C3",
        "Gather dose columns, split the dose label, and widen by arm.",
        [Table(["patient", "low_a", "low_b"],
               [["p1", 4, 6], ["p2", 3, 8], ["p3", 5, 5]])],
        lambda tables: tidyr.spread(
            tidyr.separate(
                tidyr.gather(tables[0], "dose_arm", "response", ["low_a", "low_b"]),
                "dose_arm", ["dose", "arm"],
            ),
            "arm", "response",
        ),
        ["gather", "separate", "spread"],
    )
