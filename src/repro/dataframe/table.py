"""The :class:`Table` data structure.

A table (Definition 1 of the paper) is a tuple ``(r, c, tau, sigma)`` where
``r`` and ``c`` are the number of rows and columns, ``tau`` is a record type
mapping column names to cell types, and ``sigma`` maps each cell to a value.

This module provides an immutable, pure-Python implementation of that
definition together with the handful of extras the rest of the system needs:

* *grouping metadata* -- ``dplyr::group_by`` does not change the contents of a
  data frame, it only attaches grouping information that later verbs
  (``summarise``, ``mutate``) consult.  ``Table.group_cols`` records that
  information, and ``Table.n_groups`` is exactly the ``T.group`` attribute used
  by Spec 2 (Table 3 of the paper).
* *value/column-name sets* -- Spec 2 constrains ``T.newCols`` / ``T.newVals``,
  the number of column names / values of a table that do not already appear in
  the input tables.  :meth:`Table.header_set` and :meth:`Table.value_set`
  expose the underlying sets.

Storage is **columnar**: cells live in one immutable tuple per column, and
every derived-table operation that keeps a column intact (projection,
renaming, grouping, appending a column) *shares* the underlying vectors
instead of copying cells.  Cell values are interned through a process-wide
pool (:mod:`repro.dataframe.interning`), every table exposes a stable
structural :meth:`fingerprint`, and the Spec-2 attributes (``n_groups``,
``header_set``, ``value_set``) are computed once per table and memoised.
The row-major views (:attr:`rows`, :meth:`row_dict`) are materialised
lazily for the call sites that still want them.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .cells import (
    CellType,
    CellValue,
    cell_token,
    coerce_value,
    column_multiset_key,
    format_value,
    infer_column_type,
    value_sort_key,
    values_equal,
)
from .errors import ColumnNotFoundError, DuplicateColumnError, SchemaError
from .interning import intern_value
from .profiling import execution_stats


def _encode_tokens(hasher, tokens: Iterable[str]) -> None:
    """Feed length-prefixed tokens into *hasher* (unambiguous framing)."""
    for token in tokens:
        data = token.encode("utf-8", "surrogatepass")
        hasher.update(b"%d:" % len(data))
        hasher.update(data)


class Table:
    """An immutable table of typed cells (columnar storage).

    Parameters
    ----------
    columns:
        Ordered column names.
    rows:
        Row-major cell values.  Every row must have exactly ``len(columns)``
        entries.
    col_types:
        Optional explicit column types.  When omitted the types are inferred
        from the data.
    group_cols:
        Names of the columns the table is currently grouped by (attached by
        ``group_by``, consumed by ``summarise``).
    """

    __slots__ = (
        "_columns",
        "_col_types",
        "_group_cols",
        "_n_rows",
        "_column_data",
        "_rows",
        "_fingerprint",
        "_multiset_digest",
        "_column_keys",
        "_n_groups",
        "_header_set",
        "_value_set",
        "_backend_cache",
    )

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[CellValue]],
        col_types: Optional[Sequence[CellType]] = None,
        group_cols: Sequence[str] = (),
    ) -> None:
        columns = tuple(str(c) for c in columns)
        if len(set(columns)) != len(columns):
            raise DuplicateColumnError(f"duplicate column names in {list(columns)}")
        materialized: List[Tuple[CellValue, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(columns):
                raise SchemaError(
                    f"row {row!r} has {len(row)} cells but the table has "
                    f"{len(columns)} columns"
                )
            materialized.append(row)

        vectors: List[Tuple[CellValue, ...]] = [
            tuple(row[index] for row in materialized) for index in range(len(columns))
        ]
        if col_types is None:
            col_types = [infer_column_type(vector) for vector in vectors]
        col_types = tuple(col_types)
        if len(col_types) != len(columns):
            raise SchemaError("col_types must have one entry per column")

        coerced = tuple(
            tuple(
                intern_value(coerce_value(value, col_types[index]))
                for value in vectors[index]
            )
            for index in range(len(columns))
        )

        for name in group_cols:
            if name not in columns:
                raise ColumnNotFoundError(name, columns)

        self._init_shared(columns, col_types, coerced, tuple(group_cols), len(materialized))

    def _init_shared(
        self,
        columns: Tuple[str, ...],
        col_types: Tuple[CellType, ...],
        column_data: Tuple[Tuple[CellValue, ...], ...],
        group_cols: Tuple[str, ...],
        n_rows: int,
    ) -> None:
        self._columns = columns
        self._col_types = col_types
        self._column_data = column_data
        self._group_cols = group_cols
        self._n_rows = n_rows
        self._rows = None
        self._fingerprint = None
        self._multiset_digest = None
        self._column_keys = None
        self._n_groups = None
        self._header_set = None
        self._value_set = None
        # Per-table array views memoised by the active execution backend
        # (:mod:`repro.dataframe.backend`); never part of table identity.
        self._backend_cache = None
        execution_stats().tables_built += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _from_shared(
        cls,
        columns: Tuple[str, ...],
        col_types: Tuple[CellType, ...],
        column_data: Tuple[Tuple[CellValue, ...], ...],
        group_cols: Tuple[str, ...],
        n_rows: int,
    ) -> "Table":
        """Trusted constructor sharing already-coerced, interned vectors.

        Internal copy-on-write fast path: callers guarantee the vectors came
        out of an existing table (or were coerced and interned by
        :meth:`from_vectors`), so no validation or per-cell work happens.
        """
        table = cls.__new__(cls)
        table._init_shared(columns, col_types, column_data, group_cols, n_rows)
        return table

    @classmethod
    def from_vectors(
        cls,
        columns: Sequence[str],
        vectors: Sequence[Sequence[CellValue]],
        col_types: Optional[Sequence[CellType]] = None,
        group_cols: Sequence[str] = (),
    ) -> "Table":
        """Build a table from parallel column vectors (validating, coercing).

        The columnar analogue of the row-major constructor: duplicate names,
        inconsistent lengths and type mismatches raise the same errors, cells
        are coerced and interned per column, but no row tuples are ever built.
        """
        columns = tuple(str(c) for c in columns)
        if len(set(columns)) != len(columns):
            raise DuplicateColumnError(f"duplicate column names in {list(columns)}")
        if len(vectors) != len(columns):
            raise SchemaError("from_vectors needs one vector per column")
        lengths = {len(vector) for vector in vectors}
        if len(lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0
        if col_types is None:
            col_types = [infer_column_type(vector) for vector in vectors]
        col_types = tuple(col_types)
        if len(col_types) != len(columns):
            raise SchemaError("col_types must have one entry per column")
        coerced = tuple(
            tuple(
                intern_value(coerce_value(value, col_types[index]))
                for value in vectors[index]
            )
            for index in range(len(columns))
        )
        for name in group_cols:
            if name not in columns:
                raise ColumnNotFoundError(name, columns)
        return cls._from_shared(columns, col_types, coerced, tuple(group_cols), n_rows)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, CellValue]],
        columns: Optional[Sequence[str]] = None,
    ) -> "Table":
        """Build a table from a list of dictionaries (one per row)."""
        if columns is None:
            if not records:
                raise SchemaError("cannot infer columns from an empty record list")
            columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(columns, rows)

    @classmethod
    def from_columns(cls, data: Mapping[str, Sequence[CellValue]]) -> "Table":
        """Build a table from a mapping of column name to column values."""
        return cls.from_vectors(list(data.keys()), list(data.values()))

    @classmethod
    def empty(cls, columns: Sequence[str], col_types: Optional[Sequence[CellType]] = None) -> "Table":
        """Build an empty table with the given schema."""
        return cls(columns, [], col_types=col_types)

    # ------------------------------------------------------------------
    # Basic accessors (Definition 1: T.row, T.col, type(T), T_{i,j})
    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """Ordered column names."""
        return self._columns

    @property
    def col_types(self) -> Tuple[CellType, ...]:
        """Column types, aligned with :attr:`columns`."""
        return self._col_types

    @property
    def rows(self) -> Tuple[Tuple[CellValue, ...], ...]:
        """All rows as tuples of cell values (materialised lazily, memoised)."""
        if self._rows is None:
            if self._column_data:
                self._rows = tuple(zip(*self._column_data))
            else:
                self._rows = tuple(() for _ in range(self._n_rows))
        return self._rows

    @property
    def group_cols(self) -> Tuple[str, ...]:
        """Columns the table is grouped by (empty when ungrouped)."""
        return self._group_cols

    @property
    def n_rows(self) -> int:
        """``T.row`` in the paper's notation."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """``T.col`` in the paper's notation."""
        return len(self._columns)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(rows, columns)``."""
        return (self._n_rows, len(self._columns))

    def schema(self) -> Dict[str, CellType]:
        """``type(T)``: mapping from column name to cell type."""
        return dict(zip(self._columns, self._col_types))

    def has_column(self, name: str) -> bool:
        """Return ``True`` if *name* is a column of this table."""
        return name in self._columns

    def column_index(self, name: str) -> int:
        """Return the position of column *name*, raising if it is absent."""
        try:
            return self._columns.index(name)
        except ValueError:
            raise ColumnNotFoundError(name, self._columns) from None

    def column_type(self, name: str) -> CellType:
        """Return the :class:`CellType` of column *name*."""
        return self._col_types[self.column_index(name)]

    def column_values(self, name: str) -> Tuple[CellValue, ...]:
        """Return all values of column *name*, in row order (shared vector)."""
        return self._column_data[self.column_index(name)]

    def cell(self, row_index: int, column: str) -> CellValue:
        """Return the value stored at ``(row_index, column)``."""
        return self._column_data[self.column_index(column)][row_index]

    def row_dict(self, row_index: int) -> Dict[str, CellValue]:
        """Return row *row_index* as an ordered ``{column: value}`` mapping."""
        return {
            name: vector[row_index]
            for name, vector in zip(self._columns, self._column_data)
        }

    def iter_records(self) -> Iterable[Dict[str, CellValue]]:
        """Iterate over all rows as dictionaries."""
        for index in range(self._n_rows):
            yield self.row_dict(index)

    # ------------------------------------------------------------------
    # Grouping (used by Spec 2's T.group attribute)
    # ------------------------------------------------------------------
    def with_grouping(self, group_cols: Sequence[str]) -> "Table":
        """Return a copy of this table grouped by *group_cols* (vectors shared)."""
        for name in group_cols:
            if name not in self._columns:
                raise ColumnNotFoundError(name, self._columns)
        return Table._from_shared(
            self._columns, self._col_types, self._column_data,
            tuple(group_cols), self._n_rows,
        )

    def ungrouped(self) -> "Table":
        """Return a copy of this table with grouping metadata removed."""
        if not self._group_cols:
            return self
        return Table._from_shared(
            self._columns, self._col_types, self._column_data, (), self._n_rows
        )

    def group_keys(self) -> List[Tuple[CellValue, ...]]:
        """Distinct values of the grouping columns, in first-appearance order."""
        if not self._group_cols:
            return [()] if self._n_rows else []
        vectors = [self._column_data[self.column_index(name)] for name in self._group_cols]
        seen: Dict[Tuple[CellValue, ...], None] = {}
        for key in zip(*vectors):
            if key not in seen:
                seen[key] = None
        return list(seen)

    def group_row_indices(self) -> List[Tuple[Tuple[CellValue, ...], List[int]]]:
        """Rows of each group as ``(key, row_indices)`` pairs."""
        if not self._group_cols:
            return [((), list(range(self._n_rows)))] if self._n_rows else []
        vectors = [self._column_data[self.column_index(name)] for name in self._group_cols]
        buckets: Dict[Tuple[CellValue, ...], List[int]] = {}
        for row_index, key in enumerate(zip(*vectors)):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row_index]
            else:
                bucket.append(row_index)
        return list(buckets.items())

    @property
    def n_groups(self) -> int:
        """``T.group``: the number of groups (memoised).

        An ungrouped non-empty table forms a single group; an empty table has
        no groups; a grouped table has one group per distinct key.
        """
        if self._n_groups is None:
            if not self._group_cols:
                self._n_groups = 1 if self._n_rows else 0
            else:
                self._n_groups = len(self.group_keys())
        return self._n_groups

    # ------------------------------------------------------------------
    # Sets used by the Spec 2 abstraction (T.newCols / T.newVals)
    # ------------------------------------------------------------------
    def header_set(self) -> frozenset:
        """The set of column names of this table (memoised)."""
        if self._header_set is None:
            self._header_set = frozenset(self._columns)
        return self._header_set

    def value_set(self) -> frozenset:
        """The set of values of this table (memoised).

        Following the appendix of the paper, the value set of a table contains
        its column names *and* its cell contents (cells are canonicalised via
        :func:`repro.dataframe.cells.format_value` so ``5`` and ``5.0`` are the
        same value).
        """
        if self._value_set is None:
            values = set(self._columns)
            for vector in self._column_data:
                for value in vector:
                    values.add(format_value(value))
            self._value_set = frozenset(values)
        return self._value_set

    # ------------------------------------------------------------------
    # Fingerprints (structural identity keys for the engine caches)
    # ------------------------------------------------------------------
    def fingerprint(self) -> bytes:
        """A stable structural digest of this table (memoised).

        Two tables share a fingerprint exactly when their column names,
        column types, grouping metadata and canonicalised cell contents all
        coincide, so the digest can key cross-hypothesis caches (attribute
        vectors, component executions).  The digest is content-derived
        (BLAKE2b over a canonical serialisation), **not** built on Python's
        randomised ``hash()``, so it is identical across processes -- the
        property ``--jobs N`` determinism rests on.
        """
        if self._fingerprint is None:
            execution_stats().fingerprint_misses += 1
            hasher = blake2b(digest_size=16)
            _encode_tokens(hasher, self._columns)
            hasher.update(b"|")
            _encode_tokens(hasher, (cell_type.value for cell_type in self._col_types))
            hasher.update(b"|")
            _encode_tokens(hasher, self._group_cols)
            hasher.update(b"|%d|" % self._n_rows)
            for vector in self._column_data:
                _encode_tokens(hasher, (cell_token(value) for value in vector))
                hasher.update(b";")
            self._fingerprint = hasher.digest()
        else:
            execution_stats().fingerprint_hits += 1
        return self._fingerprint

    def row_multiset_digest(self) -> bytes:
        """A digest of the rows as a multiset (memoised).

        Row order, grouping metadata and column types do not contribute --
        only the ordered cell contents of each row, canonicalised the same
        way :func:`~repro.dataframe.cells.values_equal` considers cells equal
        at zero float distance.  Equal digests therefore *guarantee* the two
        tables' rows match as multisets; unequal digests guarantee nothing
        (float tolerance), so comparisons use this as a positive fast path
        only.
        """
        if self._multiset_digest is None:
            row_tokens = sorted(
                tuple(cell_token(vector[index]) for vector in self._column_data)
                for index in range(self._n_rows)
            )
            hasher = blake2b(digest_size=16)
            hasher.update(b"%d|%d|" % (self._n_rows, len(self._columns)))
            for tokens in row_tokens:
                _encode_tokens(hasher, tokens)
                hasher.update(b";")
            self._multiset_digest = hasher.digest()
        return self._multiset_digest

    def column_multiset_keys(self) -> Tuple[tuple, ...]:
        """Canonical value multisets of every column (memoised).

        Used by :func:`repro.dataframe.compare.align_columns` to match
        candidate columns against expected columns without re-scanning the
        table for every comparison.
        """
        if self._column_keys is None:
            self._column_keys = tuple(
                column_multiset_key(vector) for vector in self._column_data
            )
        return self._column_keys

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def with_rows(self, rows: Iterable[Sequence[CellValue]]) -> "Table":
        """Return a table with the same schema but different rows."""
        return Table(self._columns, rows, self._col_types, self._group_cols)

    def take_rows(self, indices: Sequence[int]) -> "Table":
        """Project this table onto the given row indices (types preserved).

        The columnar analogue of ``with_rows`` for rows that already live in
        this table: each column vector is sliced directly, skipping type
        inference and coercion.
        """
        column_data = tuple(
            tuple(vector[index] for index in indices) for vector in self._column_data
        )
        return Table._from_shared(
            self._columns, self._col_types, column_data, self._group_cols, len(indices)
        )

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Project this table onto *names* (in the given order, vectors shared)."""
        names = tuple(str(name) for name in names)
        indices = [self.column_index(name) for name in names]
        column_data = tuple(self._column_data[index] for index in indices)
        col_types = tuple(self._col_types[index] for index in indices)
        group_cols = tuple(name for name in self._group_cols if name in names)
        if len(set(names)) != len(names):
            raise DuplicateColumnError(f"duplicate column names in {list(names)}")
        return Table._from_shared(names, col_types, column_data, group_cols, self._n_rows)

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Remove *names* from this table."""
        keep = [name for name in self._columns if name not in set(names)]
        return self.select_columns(keep)

    def rename_column(self, old: str, new: str) -> "Table":
        """Rename a single column (vectors shared)."""
        index = self.column_index(old)
        if new in self._columns and new != old:
            raise DuplicateColumnError(f"column {new!r} already exists")
        columns = list(self._columns)
        columns[index] = str(new)
        group_cols = tuple(new if name == old else name for name in self._group_cols)
        return Table._from_shared(
            tuple(columns), self._col_types, self._column_data, group_cols, self._n_rows
        )

    def with_column(self, name: str, values: Sequence[CellValue]) -> "Table":
        """Append a new column called *name* (existing vectors shared)."""
        if name in self._columns:
            raise DuplicateColumnError(f"column {name!r} already exists")
        if len(values) != self._n_rows:
            raise SchemaError(
                f"new column has {len(values)} values but the table has {self._n_rows} rows"
            )
        new_type = infer_column_type(values)
        new_vector = tuple(intern_value(coerce_value(value, new_type)) for value in values)
        return Table._from_shared(
            self._columns + (str(name),),
            self._col_types + (new_type,),
            self._column_data + (new_vector,),
            self._group_cols,
            self._n_rows,
        )

    def sorted_by(self, names: Sequence[str]) -> "Table":
        """Return this table sorted (ascending) by the given columns."""
        vectors = [self._column_data[self.column_index(name)] for name in names]

        def key(index):
            return tuple(value_sort_key(vector[index]) for vector in vectors)

        order = sorted(range(self._n_rows), key=key)
        return self.take_rows(order)

    def canonical_rows(self) -> Tuple[Tuple[CellValue, ...], ...]:
        """Rows sorted into a canonical order (used for order-insensitive comparison)."""
        return tuple(
            sorted(self.rows, key=lambda row: tuple(value_sort_key(value) for value in row))
        )

    # ------------------------------------------------------------------
    # Equality / rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality: schema, grouping metadata and cell contents.

        Grouping is part of a table's identity -- ``group_by`` changes how
        later verbs behave even though the cells are untouched.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self._columns != other._columns or self._n_rows != other._n_rows:
            return False
        if self._group_cols != other._group_cols:
            return False
        for left, right in zip(self._column_data, other._column_data):
            if left is right:
                continue
            for lvalue, rvalue in zip(left, right):
                if not values_equal(lvalue, rvalue):
                    return False
        return True

    def __hash__(self) -> int:
        return hash(
            (
                self._columns,
                self._group_cols,
                tuple(
                    tuple(format_value(value) for value in vector)
                    for vector in self._column_data
                ),
            )
        )

    def __len__(self) -> int:
        return self._n_rows

    def to_markdown(self) -> str:
        """Render this table as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(self._columns) + " |"
        separator = "| " + " | ".join("---" for _ in self._columns) + " |"
        lines = [header, separator]
        for row in self.rows:
            lines.append("| " + " | ".join(format_value(value) for value in row) + " |")
        return "\n".join(lines)

    def __repr__(self) -> str:
        grouped = f", grouped by {list(self._group_cols)}" if self._group_cols else ""
        return f"<Table {self.n_rows}x{self.n_cols} columns={list(self._columns)}{grouped}>"

    def __str__(self) -> str:
        return self.to_markdown()
