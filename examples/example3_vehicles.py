"""Paper Example 3: consolidating two data frames (gather + gather + join + filter).

A driving-simulator log stores vehicle identifiers and vehicle speeds in two
separate wide tables; the analyst wants a single long table with one row per
(frame, slot) pair for the slots that actually contain a vehicle.

This is the hardest of the three motivating examples (category C7 in the
paper's evaluation, where the reported median time is above two minutes), so
the default run here uses the two-slot variant from the benchmark suite.
Pass ``--full`` for the three-slot tables of the paper, and expect a runtime
of a few minutes.

Run with::

    python examples/example3_vehicles.py [--full]
"""

import sys

from repro import Table
from repro.api import SynthesisRequest, create_session


def small_variant():
    positions = Table(["frame", "X1", "X2"], [[1, 0, 0], [2, 10, 15], [3, 15, 10]])
    speeds = Table(["frame", "X1", "X2"], [[1, 0, 0], [2, 14.5, 12.5], [3, 13.9, 14.6]])
    expected = Table(
        ["frame", "pos", "carid", "speed"],
        [
            [2, "X1", 10, 14.5],
            [2, "X2", 15, 12.5],
            [3, "X1", 15, 13.9],
            [3, "X2", 10, 14.6],
        ],
    )
    return [positions, speeds], expected, 300


def full_variant():
    positions = Table(
        ["frame", "X1", "X2", "X3"],
        [[1, 0, 0, 0], [2, 10, 15, 0], [3, 15, 10, 0]],
    )
    speeds = Table(
        ["frame", "X1", "X2", "X3"],
        [[1, 0, 0, 0], [2, 14.53, 12.57, 0], [3, 13.90, 14.65, 0]],
    )
    expected = Table(
        ["frame", "pos", "carid", "speed"],
        [
            [2, "X1", 10, 14.53],
            [3, "X2", 10, 14.65],
            [2, "X2", 15, 12.57],
            [3, "X1", 15, 13.90],
        ],
    )
    return [positions, speeds], expected, 600


def main() -> None:
    inputs, expected, timeout = full_variant() if "--full" in sys.argv else small_variant()
    request = SynthesisRequest.from_tables(inputs, expected, timeout=timeout)
    result = create_session(request).solve()
    print("positions:")
    print(inputs[0].to_markdown())
    print()
    print("speeds:")
    print(inputs[1].to_markdown())
    print()
    if result.solved:
        print(f"synthesized in {result.elapsed:.2f}s:")
        print(result.render(["positions", "speeds"]))
    else:
        print("no program found within the time limit")


if __name__ == "__main__":
    main()
