"""Standalone driver for the large-table backend stress suite.

Times the backend-dispatched verbs (filter, arrange, gather, inner_join,
summarise) over deterministic 10**5-row synthetic tables on the pure-python
reference backend and, when installed, the numpy backend -- checking that
the two produce fingerprint-identical outputs.  Equivalent to
``repro-bench --stress``; this script exists so the suite can run (and be
recorded as JSON) without installing the console script::

    PYTHONPATH=src python benchmarks/stress_suite.py --rows 100000 --out stress.json

Exit status is nonzero when the backends' outputs diverge on any verb, or
when numpy is available but fewer than two verbs reach a 2x speedup (the
vectorization floor CI enforces).
"""

import argparse
import json
import sys

from repro.benchmarks.stress import (
    DEFAULT_REPEATS,
    DEFAULT_ROWS,
    run_stress,
    stress_failures,
    stress_table,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--verbs", nargs="*", default=None)
    parser.add_argument("--out", default=None, help="also write the payload as JSON")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="numpy speedup floor applied to --min-fast-verbs verbs",
    )
    parser.add_argument(
        "--min-fast-verbs", type=int, default=2,
        help="how many verbs must clear --min-speedup when numpy is available",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    note = None if args.quiet else (lambda message: print(f"  {message}", file=sys.stderr))
    payload = run_stress(
        rows=args.rows, repeats=args.repeats, verbs=args.verbs or None, progress=note
    )
    print(stress_table(payload))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    failures = stress_failures(
        payload, min_speedup=args.min_speedup, min_fast_verbs=args.min_fast_verbs
    )
    for failure in failures:
        print(f"stress: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
