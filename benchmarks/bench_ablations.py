"""Ablation benches: pruning statistics and the cost-model design choice.

* ``test_pruning_rate`` reproduces the Section 9 claim that deduction with
  partial evaluation prunes the large majority of partially-filled sketches
  before all holes are filled (72% in the paper).
* ``test_cost_model_ablation`` compares the statistical (bigram) hypothesis
  ranking against a uniform size-only ranking -- the design choice called out
  in DESIGN.md.
* ``test_smt_deduction_query`` micro-benchmarks the deduction engine itself
  (the substrate replacing Z3).
"""

import itertools

from repro.benchmarks import r_benchmark_suite, run_suite
from repro.core import SynthesisConfig, standard_library
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import initial_hypothesis, refine, table_holes
from repro.dataframe import Table
from conftest import BENCH_TIMEOUT, REPRESENTATIVE_BENCHMARKS

SUITE = r_benchmark_suite()
SUBSET = SUITE.subset(names=REPRESENTATIVE_BENCHMARKS)


def test_pruning_rate(benchmark):
    """Fraction of partially-filled sketches rejected before completion."""
    def run():
        suite_run = run_suite(
            SUBSET, lambda t: SynthesisConfig(timeout=t), timeout=BENCH_TIMEOUT, label="spec2"
        )
        rates = [outcome.prune_rate for outcome in suite_run.outcomes if outcome.prune_rate > 0]
        return sum(rates) / len(rates) if rates else 0.0

    mean_rate = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["mean_prune_rate"] = mean_rate
    assert 0.0 < mean_rate <= 1.0


def test_cost_model_ablation(benchmark):
    """Bigram ranking should solve at least as many tasks as uniform ranking."""
    def run():
        ngram = run_suite(
            SUBSET, lambda t: SynthesisConfig(timeout=t, ngram_ranking=True),
            timeout=BENCH_TIMEOUT, label="ngram",
        )
        uniform = run_suite(
            SUBSET, lambda t: SynthesisConfig(timeout=t, ngram_ranking=False),
            timeout=BENCH_TIMEOUT, label="uniform",
        )
        return ngram.solved, uniform.solved

    ngram_solved, uniform_solved = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["ngram"] = ngram_solved
    benchmark.extra_info["uniform"] = uniform_solved
    assert ngram_solved >= uniform_solved


def test_smt_deduction_query(benchmark):
    """Throughput of a single hypothesis-level deduction query."""
    students = Table(["name", "age", "gpa"],
                     [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
    output = Table(["name", "age"], [["Bob", 18], ["Tom", 12]])
    components = {component.name: component for component in standard_library()}
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in ("select", "filter"):
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, components[name], lambda: next(next_id))

    def run():
        engine = DeductionEngine(inputs=[students], output=output)
        return engine.deduce(hypothesis)

    assert benchmark(run) is True
