"""Baseline synthesizers used in the paper's evaluation (Section 9).

* :func:`no_deduction_config` / :func:`spec1_config` / ... -- configuration
  presets for the Morpheus ablations of Figure 16 and Figure 17.
* :class:`SqlSynthesizer` -- an enumerative SQL-query synthesizer in the
  spirit of SQLSynthesizer [Zhang & Sun 2013], used for Figure 18.
* :class:`Lambda2Synthesizer` -- a list-combinator synthesizer in the spirit
  of lambda2 [Feser et al. 2015], used for the qualitative comparison.
"""

from .configurations import (
    ALL_FIGURE17_CONFIGS,
    FIGURE16_CONFIGS,
    full_morpheus_config,
    no_deduction_config,
    spec1_config,
    spec1_no_partial_eval_config,
    override_config,
    spec2_config,
    spec2_no_cdcl_config,
    spec2_no_oe_config,
    spec2_no_partial_eval_config,
    spec2_no_prescreen_config,
    with_top_k,
    without_cdcl,
    without_oe,
    without_prescreen,
)
from .lambda2 import Lambda2Synthesizer
from .sql_synthesizer import SqlQuery, SqlSynthesizer

__all__ = [
    "ALL_FIGURE17_CONFIGS",
    "FIGURE16_CONFIGS",
    "Lambda2Synthesizer",
    "SqlQuery",
    "SqlSynthesizer",
    "full_morpheus_config",
    "no_deduction_config",
    "override_config",
    "spec1_config",
    "spec1_no_partial_eval_config",
    "spec2_config",
    "spec2_no_cdcl_config",
    "spec2_no_oe_config",
    "spec2_no_partial_eval_config",
    "spec2_no_prescreen_config",
    "with_top_k",
    "without_cdcl",
    "without_oe",
    "without_prescreen",
]
