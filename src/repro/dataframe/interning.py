"""A process-wide intern pool for cell values.

Every cell that enters a :class:`~repro.dataframe.table.Table` through a
validating constructor is routed through :func:`intern_value`, so equal
cells share one Python object across all live tables.  Synthesis executes
thousands of candidate programs over the same handful of example tables, and
almost every value a verb produces already occurred somewhere upstream --
interning collapses that into pointer sharing, which both bounds memory and
makes the identity-based fast paths (dict buckets, ``is`` checks inside
tuple comparison) fire far more often.

The pool maps a value to its canonical instance.  Only hashable cell values
exist (``int``/``float``/``str``/``None``), and numeric cells are already
normalised by :func:`~repro.dataframe.cells.coerce_value` before interning,
so a plain dict keyed by the value itself is sufficient.  ``None`` passes
through untouched (the runtime already has exactly one of it).

The pool is process-wide and therefore warm across tasks; the benchmark
harness clears it between tasks (see
:func:`~repro.dataframe.profiling.reset_execution_state`) so the
``cells_interned`` counter stays deterministic under ``--jobs N``.  For
long-lived library users that never reset, the pool is size-capped: once
full it keeps deduplicating against the values it already holds but admits
no new ones, so memory stays bounded while behaviour (sharing is a pure
optimisation) is unchanged.
"""

from __future__ import annotations

from typing import Dict

from .cells import CellValue
from .profiling import execution_stats

#: value -> canonical shared instance.
_POOL: Dict[CellValue, CellValue] = {}

#: Distinct values the pool may hold before it stops admitting new ones.
#: The cap is deterministic (a pure function of the insertion sequence), so
#: capped runs still report identical counters serial vs ``--jobs N``.
POOL_CAPACITY = 1 << 20


def intern_value(value: CellValue) -> CellValue:
    """Return the canonical shared instance of *value*.

    The first occurrence of a value becomes its canonical instance; later
    equal values are replaced by it (and counted as ``cells_interned``).
    ``None`` passes through untouched.
    """
    if value is None:
        return None
    canonical = _POOL.get(value)
    if canonical is None:
        if len(_POOL) < POOL_CAPACITY:
            _POOL[value] = value
        return value
    execution_stats().cells_interned += 1
    return canonical


def intern_pool_size() -> int:
    """Number of distinct values currently held by the pool."""
    return len(_POOL)


def clear_intern_pool() -> None:
    """Drop every pooled value (live tables keep their own references)."""
    _POOL.clear()


def install_intern_pool(pool: Dict[CellValue, CellValue]) -> Dict[CellValue, CellValue]:
    """Swap the process-wide pool, returning the previous one.

    Used by :class:`repro.engine.context.TaskContext` to give each
    interleaved search kernel its own pool: sharing is a pure optimisation,
    but the ``cells_interned`` counter depends on pool warmth, so per-task
    pools keep the counter byte-identical between whole-task and interleaved
    scheduling.
    """
    global _POOL
    previous = _POOL
    _POOL = pool
    return previous
