"""HTTP surface of the synthesis service (stdlib ``http.server`` only)."""

from .http import SynthesisHTTPServer, make_server, serve

__all__ = ["SynthesisHTTPServer", "make_server", "serve"]
