"""Tests for the explicit search frontier and the anytime search kernel."""

import itertools

from repro.core import Example, Morpheus, SynthesisConfig, standard_library
from repro.core.cost import CostModel
from repro.core.frontier import (
    Frontier,
    HypothesisState,
    SketchState,
    decode_hypothesis,
    encode_hypothesis,
)
from repro.core.hypothesis import (
    evaluate,
    initial_hypothesis,
    refine,
    table_holes,
)
from repro.dataframe import Table, tables_match_for_synthesis

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}

STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
ADULTS = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])


def build_hypothesis(*names):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    return hypothesis


class TestFrontier:
    def test_continuations_pop_before_hypotheses(self):
        frontier = Frontier(CostModel())
        frontier.push_hypothesis(build_hypothesis("filter"), 0)
        marker = SketchState(build_hypothesis("select"))
        frontier.push_continuation(marker)
        assert frontier.pop() is marker
        popped = frontier.pop()
        assert isinstance(popped, HypothesisState)

    def test_continuations_are_lifo(self):
        frontier = Frontier(CostModel())
        first, second = SketchState(None), SketchState(None)
        frontier.push_continuation(first)
        frontier.push_continuation(second)
        assert frontier.pop() is second
        assert frontier.pop() is first

    def test_hypotheses_pop_in_cost_order(self):
        frontier = Frontier(CostModel())
        small = build_hypothesis("filter")
        large = build_hypothesis("gather", "spread")
        frontier.push_hypothesis(large, 0)
        frontier.push_hypothesis(small, 1)
        assert frontier.pop().hypothesis == small
        assert frontier.pop().hypothesis == large

    def test_peak_tracks_maximum_size(self):
        frontier = Frontier(CostModel())
        for tiebreak in range(5):
            frontier.push_hypothesis(build_hypothesis("filter"), tiebreak)
        for _ in range(5):
            frontier.pop()
        assert frontier.peak == 5
        assert len(frontier) == 0


class TestHypothesisSerialisation:
    def test_roundtrip_preserves_structure(self):
        hypothesis = build_hypothesis("gather", "spread")
        payload = encode_hypothesis(hypothesis)
        restored = decode_hypothesis(payload, LIBRARY)
        assert repr(restored) == repr(hypothesis)

    def test_roundtrip_is_json_compatible(self):
        import json

        hypothesis = build_hypothesis("group_by", "summarise")
        payload = json.loads(json.dumps(encode_hypothesis(hypothesis)))
        restored = decode_hypothesis(payload, LIBRARY)
        assert repr(restored) == repr(hypothesis)


class TestSearchKernel:
    def example(self):
        return Example.make([STUDENTS], ADULTS)

    def test_run_finds_the_same_program_as_synthesize(self):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        result = morpheus.synthesize(self.example())
        kernel = morpheus.kernel(self.example())
        kernel.run()
        assert kernel.solved
        assert kernel.solutions[0] == result.program

    def test_anytime_stepping_reaches_the_same_program(self):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        reference = morpheus.synthesize(self.example())
        kernel = morpheus.kernel(self.example())
        # Drive the kernel in small slices, as an interleaving service would.
        while kernel.run(max_steps=7):
            pass
        assert kernel.solutions[0] == reference.program

    def test_step_advances_one_state_at_a_time(self):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        kernel = morpheus.kernel(self.example())
        steps = 0
        while not kernel.done and steps < 100_000:
            kernel.step()
            steps += 1
        assert kernel.solved
        assert steps > 1

    def test_run_resumes_after_an_expired_deadline(self):
        # A deadline firing mid-completion must not lose the in-flight
        # state: a later run() with no deadline (which also clears the
        # stale one) continues exactly where the bounded run stopped and
        # finds the same program as an uninterrupted search.
        import time

        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        reference = morpheus.synthesize(self.example())
        kernel = morpheus.kernel(self.example())
        # An already-expired deadline: the first completion step raises
        # CompletionTimeout, which must re-push the interrupted state.
        assert kernel.run(deadline=time.monotonic() - 1.0)
        assert not kernel.solved
        interrupted_pending = len(kernel.frontier)
        assert interrupted_pending > 0
        assert kernel.run() is False  # clears the stale deadline and drains
        assert kernel.solutions[0] == reference.program

    def test_intermittent_timeouts_do_not_lose_search_states(self):
        # Expire the deadline between (and inside) steps repeatedly: every
        # interrupted state -- in-flight completion frames, half-done
        # refinement fan-outs -- must be restored, so the search still finds
        # the same program an uninterrupted run finds.
        import time

        from repro.core.completion import CompletionTimeout
        from repro.core.hypothesis import render_program

        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        reference = morpheus.synthesize(self.example())
        kernel = morpheus.kernel(self.example())
        steps = 0
        while not kernel.done and steps < 100_000:
            if steps % 5 == 4:
                kernel.set_deadline(time.monotonic() - 1.0)
                try:
                    kernel.step()
                except CompletionTimeout:
                    pass
                kernel.set_deadline(None)
            kernel.step()
            steps += 1
        assert kernel.solved
        assert render_program(kernel.solutions[0]) == reference.render()

    def test_snapshot_restore_resumes_to_the_same_program(self):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        reference = morpheus.synthesize(self.example())

        kernel = morpheus.kernel(self.example())
        kernel.run(max_steps=5)
        assert not kernel.solved  # interrupted mid-search
        payload = kernel.snapshot()

        from repro.core.frontier import SearchKernel
        from repro.core.synthesizer import SynthesisStats

        restored = SearchKernel.restore(
            payload, self.example(), morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(),
        )
        restored.run()
        assert restored.solved
        assert restored.solutions[0] == reference.program

    def test_snapshot_after_a_solution_does_not_double_count_on_restore(self):
        # Snapshot taken after a solution was found but with the expansion
        # still in flight: the restored kernel re-runs that expansion and
        # re-finds the first program, which must not consume the remaining
        # top-k quota -- the caller already holds it.
        from repro.core.frontier import SearchKernel
        from repro.core.hypothesis import render_program
        from repro.core.synthesizer import SynthesisStats

        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        example = Example.make([STUDENTS], output)
        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        reference = morpheus.synthesize(example, k=2)
        assert len(reference.programs) == 2

        kernel = morpheus.kernel(example, k=2)
        while not kernel.solutions:
            kernel.step()
        payload = kernel.snapshot()
        restored = SearchKernel.restore(
            payload, example, morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(),
        )
        restored.run()
        combined = [render_program(kernel.solutions[0])] + [
            render_program(program) for program in restored.solutions
        ]
        assert len(set(combined)) == len(combined)
        assert combined == reference.render_all()

    def test_snapshot_of_a_solved_kernel_restores_to_done(self):
        from repro.core.frontier import SearchKernel
        from repro.core.synthesizer import SynthesisStats

        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        kernel = morpheus.kernel(self.example())
        kernel.run()
        assert kernel.solved
        restored = SearchKernel.restore(
            kernel.snapshot(), self.example(), morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(),
        )
        assert restored.done  # quota already met; no extra program is hunted
        assert restored.run() is False
        assert restored.solutions == []

    def test_snapshot_is_json_serialisable(self):
        import json

        morpheus = Morpheus(config=SynthesisConfig(timeout=20))
        kernel = morpheus.kernel(self.example())
        kernel.run(max_steps=5)
        payload = json.loads(json.dumps(kernel.snapshot()))
        assert payload["version"] == 1
        assert payload["pending"]

    def test_frontier_peak_is_reported(self):
        result = Morpheus(config=SynthesisConfig(timeout=20)).synthesize(self.example())
        assert result.stats.frontier_peak > 0


class TestTopK:
    def test_top_k_collects_distinct_programs(self):
        # Selecting two of three columns has several observationally distinct
        # solutions (select variants, negative selects, ...).
        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        example = Example.make([STUDENTS], output)
        result = Morpheus(config=SynthesisConfig(timeout=20)).synthesize(example, k=3)
        assert result.solved
        assert 1 <= len(result.programs) <= 3
        rendered = result.render_all()
        assert len(set(rendered)) == len(rendered)
        for program in result.programs:
            assert tables_match_for_synthesis(evaluate(program, [STUDENTS]), output)

    def test_first_solution_is_independent_of_k(self):
        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        example = Example.make([STUDENTS], output)
        single = Morpheus(config=SynthesisConfig(timeout=20)).synthesize(example)
        multi = Morpheus(config=SynthesisConfig(timeout=20, top_k=3)).synthesize(example)
        assert multi.program == single.program
        assert multi.programs[0] == multi.program

    def test_config_describe_mentions_no_oe(self):
        assert SynthesisConfig(oe=False).describe() == "spec2-no-oe"
        assert SynthesisConfig().describe() == "spec2"

class TestSnapshotValidation:
    def example(self):
        return Example.make([STUDENTS], ADULTS)

    def restore(self, payload):
        from repro.core.frontier import SearchKernel
        from repro.core.synthesizer import SynthesisStats

        morpheus = Morpheus(config=SynthesisConfig(timeout=20), _sanctioned=True)
        return SearchKernel.restore(
            payload, self.example(), morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(),
        )

    def snapshot(self):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20), _sanctioned=True)
        kernel = morpheus.kernel(self.example())
        kernel.run(max_steps=5)
        return kernel.snapshot()

    def test_wrong_version_raises_typed_error(self):
        import pytest

        from repro.core import SnapshotVersionError

        payload = self.snapshot()
        payload["version"] = 999
        with pytest.raises(SnapshotVersionError, match="version 999"):
            self.restore(payload)

    def test_missing_version_raises_typed_error(self):
        import pytest

        from repro.core import SnapshotVersionError

        payload = self.snapshot()
        del payload["version"]
        with pytest.raises(SnapshotVersionError):
            self.restore(payload)

    def test_missing_required_key_raises_typed_error_not_keyerror(self):
        import pytest

        from repro.core import SnapshotVersionError

        for key in ("k", "tiebreak", "node_counter", "visited", "pending"):
            payload = self.snapshot()
            del payload[key]
            with pytest.raises(SnapshotVersionError, match=key):
                self.restore(payload)

    def test_non_dict_payload_raises_snapshot_error(self):
        import pytest

        from repro.core import SnapshotError

        with pytest.raises(SnapshotError, match="dict"):
            self.restore([1, 2, 3])

    def test_malformed_pending_lane_raises_snapshot_error(self):
        import pytest

        from repro.core import SnapshotError

        payload = self.snapshot()
        payload["pending"] = [{"tiebreak": 0, "hypothesis": {"bogus": True}}]
        with pytest.raises(SnapshotError, match="pending"):
            self.restore(payload)

    def test_snapshot_error_is_a_value_error(self):
        from repro.core import SnapshotError, SnapshotVersionError

        assert issubclass(SnapshotVersionError, SnapshotError)
        assert issubclass(SnapshotError, ValueError)


class TestSuspendResume:
    """suspend() + the oe_store carry: resume without re-exploring merged states."""

    def example(self):
        output = Table(["name", "gpa"], [["Alice", 4.0], ["Bob", 3.2], ["Tom", 3.0]])
        return Example.make([STUDENTS], output)

    def build(self, k=3):
        morpheus = Morpheus(config=SynthesisConfig(timeout=20), _sanctioned=True)
        return morpheus, morpheus.kernel(self.example(), k=k)

    def test_suspended_kernel_resumes_to_the_same_programs(self):
        from repro.core.frontier import SearchKernel
        from repro.core.hypothesis import render_program
        from repro.core.synthesizer import SynthesisStats

        morpheus, reference = self.build()
        reference.run()
        expected = [render_program(p) for p in reference.solutions]

        morpheus2, kernel = self.build()
        while not kernel.solutions:
            kernel.step()
        found = [render_program(p) for p in kernel.solutions]
        payload = kernel.suspend()
        restored = SearchKernel.restore(
            payload, self.example(), morpheus2.config, morpheus2.library,
            morpheus2.cost_model, SynthesisStats(), oe_store=kernel.oe_store,
        )
        restored.run()
        assert found + [render_program(p) for p in restored.solutions] == expected

    def test_oe_carry_keeps_merged_states_merged(self):
        # The carried store is adopted by the successor kernel (identity,
        # not a copy), and the representatives the suspended search fully
        # explored stay in it -- an observationally equal state offered
        # after the resume merges instead of being re-enumerated.
        from repro.core.frontier import SearchKernel
        from repro.core.oe import OEStore
        from repro.core.synthesizer import SynthesisStats

        morpheus, kernel = self.build()
        while not (kernel.solutions and kernel.frontier.has_continuations):
            kernel.step()
        payload = kernel.suspend()
        assert len(kernel.oe_store) > 0  # fully-explored representatives survive
        surviving = set(kernel.oe_store._representatives)

        restored = SearchKernel.restore(
            payload, self.example(), morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(), oe_store=kernel.oe_store,
        )
        assert restored.oe_store is kernel.oe_store
        assert restored.completer.oe_store is kernel.oe_store
        # A pre-suspend state re-offered post-resume merges with the carry...
        key = next(iter(surviving))
        assert restored.oe_store.admit(key) is False
        # ...but would be re-explored from a fresh store (what a restore
        # without the carry would do).
        assert OEStore().admit(key) is True

    def test_suspend_withdraws_pending_admissions(self):
        # States still pending on the continuation lane are only partially
        # explored; suspend() must withdraw their admissions so the
        # successor's re-expansion is not wrongly suppressed.
        from repro.core.frontier import CompletionState

        morpheus, kernel = self.build()
        while not (kernel.solutions and kernel.frontier.has_continuations):
            kernel.step()
        pending_admits = sum(
            len(state.run._admitted)
            for state in kernel.frontier.continuation_states()
            if isinstance(state, CompletionState)
        )
        before = len(kernel.oe_store)
        kernel.suspend()
        assert len(kernel.oe_store) == before - pending_admits

    def test_steps_taken_counts_this_kernels_work_only(self):
        from repro.core.frontier import SearchKernel
        from repro.core.synthesizer import SynthesisStats

        morpheus, kernel = self.build(k=1)
        assert kernel.steps_taken == 0
        kernel.run(max_steps=5)
        assert kernel.steps_taken == 5
        restored = SearchKernel.restore(
            kernel.suspend(), self.example(), morpheus.config, morpheus.library,
            morpheus.cost_model, SynthesisStats(), oe_store=kernel.oe_store,
        )
        assert restored.steps_taken == 0  # accumulating across kernels is the caller's job
        restored.run(max_steps=3)
        assert restored.steps_taken == 3
