"""First-order component specifications (Tables 1, 2 and 3 of the paper).

Every table transformer is equipped with an over-approximate first-order
specification relating the attributes of its output table to the attributes
of its input table(s).  Two levels are provided:

* :data:`SpecLevel.SPEC1` -- constraints over ``row`` / ``col`` only
  (Table 2 of the paper).
* :data:`SpecLevel.SPEC2` -- additionally constrains ``group``, ``newCols``
  and ``newVals`` (Table 3).

The constraints below are *sound* for the executor in
:mod:`repro.components`; where the paper's published inequality is not sound
for faithful tidyr/dplyr semantics (e.g. ``unite`` can *remove* previously-new
column names, ``spread`` over a single key value can shrink the table), the
bound is relaxed just enough to stay an over-approximation.  DESIGN.md lists
these adjustments.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..smt.terms import Formula, Or, conjoin
from .abstraction import SpecLevel, TableVars

#: The type of a component specification: ``spec(output, inputs, level)``.
SpecFunction = Callable[[TableVars, Sequence[TableVars], SpecLevel], Formula]


def spec_gather(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``gather`` collapses >=2 columns into key/value pairs."""
    (t,) = ins
    constraints = [
        out.row >= t.row,
        out.col <= t.col,
        out.col >= 3,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals + 2,
            out.new_cols <= t.new_cols + 2,
        ]
    return conjoin(constraints)


def spec_spread(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``spread`` turns a key/value pair of columns into one column per key."""
    (t,) = ins
    constraints = [
        out.row <= t.row,
        out.col >= t.col - 1,
        out.row >= 1,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols <= t.new_vals,
        ]
    return conjoin(constraints)


def spec_separate(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``separate`` splits one column into two."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col + 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals >= t.new_vals + 2,
            out.new_cols <= t.new_cols + 2,
            out.new_cols >= 2,
        ]
    return conjoin(constraints)


def spec_unite(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``unite`` pastes two columns into one."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col - 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            # The united column gets a fresh name (+1) but the two source
            # columns disappear from the header (each may have been new).
            out.new_vals >= t.new_vals - 1,
            out.new_vals <= t.new_vals + t.row + 1,
            out.new_cols <= t.new_cols + 1,
            out.new_cols >= t.new_cols - 1,
            out.new_cols >= 1,
        ]
    return conjoin(constraints)


def spec_select(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``select`` projects onto a strict subset of the columns."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col < t.col,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols <= t.new_cols,
        ]
    return conjoin(constraints)


def spec_filter(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``filter`` keeps a strict subset of the rows."""
    (t,) = ins
    constraints = [
        out.row < t.row,
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group <= t.group,
            out.new_vals <= t.new_vals,
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_summarise(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``summarise`` collapses each group to one row with one aggregate column."""
    (t,) = ins
    constraints = [
        out.row <= t.row,
        out.col <= t.col + 1,
        out.col >= 1,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.row.equals(t.group),
            out.group <= t.group,
            out.new_vals <= t.new_vals + t.group + 1,
            out.new_cols <= t.new_cols + 1,
            out.new_cols >= 1,
        ]
    return conjoin(constraints)


def spec_group_by(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``group_by`` only attaches grouping metadata."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group >= 1,
            out.group <= t.row,
            out.new_vals.equals(t.new_vals),
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_mutate(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``mutate`` adds one computed column."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col + 1),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(t.group),
            out.new_cols.equals(t.new_cols + 1),
            out.new_vals > t.new_vals,
            out.new_vals <= t.new_vals + t.row + 1,
        ]
    return conjoin(constraints)


def spec_inner_join(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``inner_join`` performs a natural join of two tables."""
    t1, t2 = ins
    constraints = [
        # Min(r1, r2) <= out.row <= Max(r1, r2): encoded with disjunctions.
        Or(t1.row <= out.row, t2.row <= out.row),
        Or(out.row <= t1.row, out.row <= t2.row),
        out.col <= t1.col + t2.col - 1,
        out.col >= t1.col,
        out.col >= t2.col,
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(1),
            out.new_cols <= t1.new_cols + t2.new_cols,
            out.new_vals <= t1.new_vals + t2.new_vals,
        ]
    return conjoin(constraints)


def spec_arrange(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """``arrange`` reorders rows."""
    (t,) = ins
    constraints = [
        out.row.equals(t.row),
        out.col.equals(t.col),
    ]
    if level is SpecLevel.SPEC2:
        constraints += [
            out.group.equals(t.group),
            out.new_vals.equals(t.new_vals),
            out.new_cols.equals(t.new_cols),
        ]
    return conjoin(constraints)


def spec_true(out: TableVars, ins: Sequence[TableVars], level: SpecLevel) -> Formula:
    """The trivial specification ``true`` (always a valid over-approximation)."""
    return conjoin([])


#: Specification of every built-in table transformer, by component name.
SPECIFICATIONS: Dict[str, SpecFunction] = {
    "gather": spec_gather,
    "spread": spec_spread,
    "separate": spec_separate,
    "unite": spec_unite,
    "select": spec_select,
    "filter": spec_filter,
    "summarise": spec_summarise,
    "group_by": spec_group_by,
    "mutate": spec_mutate,
    "inner_join": spec_inner_join,
    "arrange": spec_arrange,
}
