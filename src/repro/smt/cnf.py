"""Tseitin conversion of formulas to CNF.

The SAT engine (:mod:`repro.smt.sat`) works on clauses over propositional
variables numbered from 1; theory atoms are mapped to propositional variables
and the mapping is returned so the DPLL(T) driver can translate boolean
assignments back into conjunctions of theory literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .terms import And, Atom, BoolVal, Formula, Not, Or


@dataclass
class CNF:
    """A CNF instance plus the mapping from atoms to propositional variables."""

    clauses: List[List[int]] = field(default_factory=list)
    num_vars: int = 0
    atom_of_var: Dict[int, Atom] = field(default_factory=dict)
    var_of_atom: Dict[Atom, int] = field(default_factory=dict)
    #: True when the input formula was trivially false (e.g. contained FALSE
    #: as a top-level conjunct); the clause set then contains the empty clause.
    trivially_false: bool = False

    def new_var(self) -> int:
        """Allocate a fresh propositional variable."""
        self.num_vars += 1
        return self.num_vars

    def var_for_atom(self, atom: Atom) -> int:
        """The propositional variable standing for *atom* (allocated on demand)."""
        if atom not in self.var_of_atom:
            var = self.new_var()
            self.var_of_atom[atom] = var
            self.atom_of_var[var] = atom
        return self.var_of_atom[atom]

    def add_clause(self, literals: List[int]) -> None:
        """Add a clause (a list of non-zero literals)."""
        self.clauses.append(list(literals))


def tseitin(formula: Formula) -> CNF:
    """Encode *formula* into CNF using the Tseitin transformation.

    Every subformula gets a definitional variable; the root variable is
    asserted as a unit clause.
    """
    cnf = CNF()

    def encode(node: Formula) -> int:
        """Return a literal equivalent to *node*."""
        if isinstance(node, BoolVal):
            var = cnf.new_var()
            cnf.add_clause([var] if node.value else [-var])
            return var
        if isinstance(node, Atom):
            return cnf.var_for_atom(node)
        if isinstance(node, Not):
            return -encode(node.operand)
        if isinstance(node, And):
            literals = [encode(operand) for operand in node.operands]
            out = cnf.new_var()
            for literal in literals:
                cnf.add_clause([-out, literal])
            cnf.add_clause([out] + [-literal for literal in literals])
            return out
        if isinstance(node, Or):
            literals = [encode(operand) for operand in node.operands]
            out = cnf.new_var()
            for literal in literals:
                cnf.add_clause([-literal, out])
            cnf.add_clause([-out] + literals)
            return out
        raise TypeError(f"cannot encode {node!r}")

    root = encode(formula)
    cnf.add_clause([root])
    return cnf
