"""Tests for hypotheses, refinement trees, sketches and partial evaluation."""

import itertools

import pytest

from repro.core import standard_library
from repro.core.arguments import Aggregation, ColumnList, Constant, Predicate
from repro.core.hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    bind_table_hole,
    component_sequence,
    evaluate,
    fill_value_hole,
    hypothesis_size,
    initial_hypothesis,
    is_complete,
    is_sketch,
    iter_nodes,
    partial_evaluate,
    refine,
    render_program,
    sketches,
    table_holes,
    unfilled_value_holes,
)
from repro.core.types import Type
from repro.dataframe import Table

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}
STUDENTS = Table(["name", "age"], [["Alice", 8], ["Bob", 18], ["Tom", 12]])


def make_counter():
    counter = itertools.count(1)
    return lambda: next(counter)


def build_chain(*names):
    """Refine the initial hypothesis into a chain of the given components."""
    next_id = make_counter()
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], next_id)
    return hypothesis


class TestRefinement:
    def test_initial_hypothesis(self):
        hypothesis = initial_hypothesis()
        assert isinstance(hypothesis, Hole)
        assert hypothesis.hole_type is Type.TABLE
        assert hypothesis_size(hypothesis) == 0
        assert not is_sketch(hypothesis)

    def test_single_refinement(self):
        hypothesis = build_chain("filter")
        assert isinstance(hypothesis, Apply)
        assert hypothesis.component.name == "filter"
        assert hypothesis_size(hypothesis) == 1
        assert len(table_holes(hypothesis)) == 1

    def test_chain_refinement(self):
        hypothesis = build_chain("select", "filter")
        assert component_sequence(hypothesis) == ("filter", "select")
        assert hypothesis_size(hypothesis) == 2

    def test_join_refinement_creates_two_table_holes(self):
        hypothesis = build_chain("inner_join")
        assert len(table_holes(hypothesis)) == 2

    def test_node_ids_are_unique(self):
        hypothesis = build_chain("select", "filter", "group_by")
        ids = [node.node_id for node in iter_nodes(hypothesis)]
        assert len(ids) == len(set(ids))

    def test_refinement_is_pure(self):
        hypothesis = initial_hypothesis()
        refined = refine(hypothesis, hypothesis, COMPONENTS["filter"], make_counter())
        assert isinstance(hypothesis, Hole)
        assert isinstance(refined, Apply)


class TestSketches:
    def test_binding_produces_sketch(self):
        hypothesis = build_chain("filter")
        hole = table_holes(hypothesis)[0]
        sketch = bind_table_hole(hypothesis, hole, 0)
        assert is_sketch(sketch)
        assert not is_complete(sketch)

    def test_sketch_enumeration_single_input(self):
        hypothesis = build_chain("filter")
        assert len(list(sketches(hypothesis, 1))) == 1

    def test_sketch_enumeration_join_two_inputs(self):
        hypothesis = build_chain("inner_join")
        candidates = list(sketches(hypothesis, 2))
        assert len(candidates) == 4
        assert all(is_sketch(candidate) for candidate in candidates)

    def test_complete_program(self):
        hypothesis = build_chain("filter")
        sketch = next(sketches(hypothesis, 1))
        hole = unfilled_value_holes(sketch)[0]
        program = fill_value_hole(sketch, hole, Predicate("age", ">", Constant(10)))
        assert is_complete(program)


class TestPartialEvaluation:
    def _program(self):
        hypothesis = build_chain("filter")
        sketch = next(sketches(hypothesis, 1))
        hole = unfilled_value_holes(sketch)[0]
        return fill_value_hole(sketch, hole, Predicate("age", ">", Constant(10)))

    def test_complete_program_evaluates(self):
        program = self._program()
        result = evaluate(program, [STUDENTS])
        assert result.n_rows == 2
        assert set(result.column_values("name")) == {"Bob", "Tom"}

    def test_partial_hypothesis_skips_unknown_nodes(self):
        hypothesis = build_chain("select", "filter")
        sketch = next(sketches(hypothesis, 1))
        # Only the filter (inner) node's predicate missing -> nothing evaluable
        # above the input leaf.
        results = partial_evaluate(sketch, [STUDENTS])
        tables = list(results.values())
        assert STUDENTS in tables
        assert len(tables) == 1

    def test_incomplete_program_cannot_fully_evaluate(self):
        hypothesis = build_chain("filter")
        sketch = next(sketches(hypothesis, 1))
        with pytest.raises(ValueError):
            evaluate(sketch, [STUDENTS])

    def test_evaluation_failure_raised(self):
        hypothesis = build_chain("filter")
        sketch = next(sketches(hypothesis, 1))
        hole = unfilled_value_holes(sketch)[0]
        # A predicate that keeps every row is rejected by the executor.
        program = fill_value_hole(sketch, hole, Predicate("age", ">", Constant(0)))
        with pytest.raises(EvaluationFailure):
            partial_evaluate(program, [STUDENTS])

    def test_memo_is_reused(self):
        program = self._program()
        memo = {}
        first = partial_evaluate(program, [STUDENTS], memo=memo)
        assert memo
        second = partial_evaluate(program, [STUDENTS], memo=memo)
        assert first[program.node_id] == second[program.node_id]


class TestRendering:
    def test_render_complete_program(self):
        hypothesis = build_chain("summarise", "group_by")
        sketch = next(sketches(hypothesis, 1))
        group_hole = [
            hole for hole in unfilled_value_holes(sketch)
            if hole.hole_type is Type.COLS
        ][0]
        sketch = fill_value_hole(sketch, group_hole, ColumnList(("name",)))
        agg_hole = unfilled_value_holes(sketch)[0]
        program = fill_value_hole(sketch, agg_hole, Aggregation("n"))
        text = render_program(program, ["students"])
        assert "group_by(students, name)" in text
        assert "summarise(df1" in text
        assert text.startswith("df1 =")

    def test_render_partial_program_shows_holes(self):
        hypothesis = build_chain("filter")
        sketch = next(sketches(hypothesis, 1))
        text = render_program(sketch, ["t"])
        assert "?" in text
