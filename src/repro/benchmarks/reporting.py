"""Text reports that mirror the paper's tables and figures."""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from .r_suite import CATEGORY_COUNTS, CATEGORY_DESCRIPTIONS
from .runner import Figure18Row, SuiteRun


def _format_time(value: Optional[float]) -> str:
    if value is None:
        return "timeout"
    return f"{value:.2f}"


def figure16_table(runs: Dict[str, SuiteRun]) -> str:
    """Render the Figure 16 summary table.

    One row per category (C1..C9) plus a Total row; for every configuration
    the number of solved benchmarks and the median time over solved
    benchmarks (the paper reports medians the same way, with a timeout marker
    when nothing in the category was solved).
    """
    labels = list(runs.keys())
    categories = sorted({outcome.category for run in runs.values() for outcome in run.outcomes})

    header = ["Category", "#"]
    for label in labels:
        header += [f"{label} #solved", f"{label} median(s)"]
    lines = ["\t".join(header)]

    for category in categories:
        first = runs[labels[0]].by_category().get(category, [])
        row = [category, str(len(first))]
        for label in labels:
            outcomes = runs[label].by_category().get(category, [])
            solved = [outcome for outcome in outcomes if outcome.solved]
            times = [outcome.elapsed for outcome in solved]
            row.append(str(len(solved)))
            row.append(_format_time(statistics.median(times) if times else None))
        lines.append("\t".join(row))

    total_row = ["Total", str(runs[labels[0]].total)]
    for label in labels:
        run = runs[label]
        total_row.append(f"{run.solved} ({100.0 * run.solved / max(run.total, 1):.1f}%)")
        total_row.append(_format_time(run.median_time()))
    lines.append("\t".join(total_row))
    return "\n".join(lines)


def figure17_series(runs: Dict[str, SuiteRun]) -> Dict[str, List[float]]:
    """Cumulative running-time series per configuration (Figure 17).

    Each series is the sorted list of per-benchmark running times; plotting
    index-vs-cumulative-sum reproduces the figure's curves.
    """
    series = {}
    for label, run in runs.items():
        times = run.cumulative_times()
        cumulative = []
        total = 0.0
        for value in times:
            total += value
            cumulative.append(round(total, 3))
        series[label] = cumulative
    return series


def figure17_table(runs: Dict[str, SuiteRun]) -> str:
    """Render the Figure 17 data as a summary table (solved count + medians)."""
    lines = ["Configuration\t#solved\tmedian time (s)\ttotal time (s)"]
    for label, run in runs.items():
        lines.append(
            "\t".join(
                [
                    label,
                    f"{run.solved}/{run.total}",
                    _format_time(run.median_time()),
                    f"{sum(run.cumulative_times()):.1f}",
                ]
            )
        )
    return "\n".join(lines)


def figure18_table(rows: Sequence[Figure18Row]) -> str:
    """Render the Figure 18 comparison (percentage solved per tool per suite)."""
    lines = ["Tool\tSuite\tSolved\tTotal\tPercent\tMedian time (s)"]
    for row in rows:
        lines.append(
            "\t".join(
                [
                    row.tool,
                    row.suite,
                    str(row.solved),
                    str(row.total),
                    f"{row.percentage:.1f}%",
                    _format_time(row.median_time),
                ]
            )
        )
    return "\n".join(lines)


def _prescreen_hit_rate(decided: int, fallback: int) -> str:
    """The prescreen hit-rate cell: deterministic (counters only), rendered
    with fixed precision so serial and ``--jobs N`` tables stay byte-identical."""
    total = decided + fallback
    if total == 0:
        return "-"
    return f"{100.0 * decided / total:.1f}%"


def deduction_summary_table(runs: Dict[str, SuiteRun]) -> str:
    """Per-configuration deduction counters (prescreen, SMT calls, lemma activity).

    Complements the Figure 16/17 tables: the prescreen columns show how many
    deduction queries the tier-1 interval sweep decided before any formula
    was built (``hit-rate`` = decided / prescreened), and with CDCL enabled
    the lemma columns show how much solver work the conflict-driven lemma
    store absorbed.  Comparing the ``SMT calls`` column against a
    ``--no-prescreen`` / ``--no-cdcl`` run quantifies each saving.  ``Mining
    solves`` is the price paid for lemmas -- incremental deletion probes,
    much cheaper apiece than a full check but reported so the comparison
    never hides the investment.  Only deterministic counters appear (no
    wall-clock values), so the table is byte-identical between serial and
    ``--jobs N`` runs.
    """
    lines = [
        "Configuration\tSMT calls\tPrescreen decided\tPrescreen fallback"
        "\tPrescreen hit-rate\tLemma prunes\tLemmas learned\tMining solves"
    ]
    for label, run in runs.items():
        decided = sum(outcome.prescreen_decided for outcome in run.outcomes)
        fallback = sum(outcome.prescreen_fallback for outcome in run.outcomes)
        lines.append(
            "\t".join(
                [
                    label,
                    str(sum(outcome.smt_calls for outcome in run.outcomes)),
                    str(decided),
                    str(fallback),
                    _prescreen_hit_rate(decided, fallback),
                    str(sum(outcome.lemma_prunes for outcome in run.outcomes)),
                    str(sum(outcome.lemmas_learned for outcome in run.outcomes)),
                    str(sum(outcome.lemma_mining_solves for outcome in run.outcomes)),
                ]
            )
        )
    return "\n".join(lines)


def execution_summary_table(runs: Dict[str, SuiteRun]) -> str:
    """Per-configuration concrete-execution counters (columnar backend).

    Complements :func:`deduction_summary_table` with the execution-side view:
    how many tables each configuration materialised, how many cells the
    intern pool deduplicated, how often fingerprint memos and the
    fingerprint-keyed execution cache answered instead of recomputing, and
    how many output comparisons the digest fast path decided without a
    cell-by-cell walk.  Only deterministic counters appear (no wall-clock
    values), so the table is byte-identical between serial and ``--jobs N``
    runs.
    """
    lines = [
        "Configuration\tTables built\tCells interned\tFingerprint hits"
        "\tExec-cache hits\tCompare fast-path"
    ]
    for label, run in runs.items():
        lines.append(
            "\t".join(
                [
                    label,
                    str(sum(outcome.tables_built for outcome in run.outcomes)),
                    str(sum(outcome.cells_interned for outcome in run.outcomes)),
                    str(sum(outcome.fingerprint_hits for outcome in run.outcomes)),
                    str(sum(outcome.exec_cache_hits for outcome in run.outcomes)),
                    str(sum(outcome.compare_fastpath_hits for outcome in run.outcomes)),
                ]
            )
        )
    return "\n".join(lines)


def search_summary_table(runs: Dict[str, SuiteRun]) -> str:
    """Per-configuration search-kernel counters (completion + OE + frontier).

    Complements the deduction and execution tables with the search-shape
    view: how many candidate hole fillings each configuration tried
    (``partial programs``), how many node-boundary states were offered to
    the observational-equivalence store, how many of those were merged into
    an earlier representative (duplicated completion work skipped -- the
    ``--no-oe`` ablation reports zeroes), and the peak number of pending
    frontier states.  Only deterministic counters appear (no wall-clock
    values), so the table is byte-identical between serial and ``--jobs N``
    runs.
    """
    lines = [
        "Configuration\tPartial programs\tOE candidates\tOE merged"
        "\tOE merge-rate\tFrontier peak"
    ]
    for label, run in runs.items():
        candidates = sum(outcome.oe_candidates for outcome in run.outcomes)
        merged = sum(outcome.oe_merged for outcome in run.outcomes)
        rate = "-" if candidates == 0 else f"{100.0 * merged / candidates:.1f}%"
        lines.append(
            "\t".join(
                [
                    label,
                    str(sum(outcome.partial_programs for outcome in run.outcomes)),
                    str(candidates),
                    str(merged),
                    rate,
                    str(max((outcome.frontier_peak for outcome in run.outcomes), default=0)),
                ]
            )
        )
    return "\n".join(lines)


def profile_table(runs: Dict[str, SuiteRun]) -> str:
    """Per-benchmark wall-clock split: deduction (SMT) vs concrete execution.

    ``deduction`` is the time inside SMT ``check()`` calls; ``execution`` is
    component execution plus output comparison; ``other`` is everything else
    (formula construction, search bookkeeping, completion enumeration).
    ``prescreen`` is the tier-1 hit rate -- the fraction of deduction
    queries the interval sweep decided without the solver, which explains a
    small ``deduction`` column.  ``oe merged`` is the number of completion
    states the observational-equivalence store collapsed, which explains a
    small ``other`` column on duplicate-heavy tasks.  Wall-clock values vary
    run to run -- this table is for profiling, not for the determinism
    diffs.
    """
    lines = [
        "Configuration\tBenchmark\ttotal (s)\tdeduction (s)\texecution (s)"
        "\tother (s)\tprescreen\toe merged"
    ]
    for label, run in runs.items():
        for outcome in run.outcomes:
            other = max(0.0, outcome.elapsed - outcome.smt_time - outcome.exec_time)
            lines.append(
                "\t".join(
                    [
                        label,
                        outcome.benchmark,
                        f"{outcome.elapsed:.3f}",
                        f"{outcome.smt_time:.3f}",
                        f"{outcome.exec_time:.3f}",
                        f"{other:.3f}",
                        _prescreen_hit_rate(
                            outcome.prescreen_decided, outcome.prescreen_fallback
                        ),
                        str(outcome.oe_merged),
                    ]
                )
            )
        total = sum(outcome.elapsed for outcome in run.outcomes)
        smt = sum(outcome.smt_time for outcome in run.outcomes)
        execution = sum(outcome.exec_time for outcome in run.outcomes)
        lines.append(
            "\t".join(
                [
                    label,
                    "TOTAL",
                    f"{total:.3f}",
                    f"{smt:.3f}",
                    f"{execution:.3f}",
                    f"{max(0.0, total - smt - execution):.3f}",
                    _prescreen_hit_rate(
                        sum(o.prescreen_decided for o in run.outcomes),
                        sum(o.prescreen_fallback for o in run.outcomes),
                    ),
                    str(sum(o.oe_merged for o in run.outcomes)),
                ]
            )
        )
    lines.append("")
    lines.append("Per-verb execution time (component runs, aggregated per configuration)")
    lines.append("Configuration\tVerb\ttime (s)\tshare of verb time")
    for label, run in runs.items():
        totals: Dict[str, float] = {}
        for outcome in run.outcomes:
            for verb, elapsed in outcome.verb_times.items():
                totals[verb] = totals.get(verb, 0.0) + elapsed
        verb_total = sum(totals.values())
        for verb, elapsed in sorted(totals.items(), key=lambda item: -item[1]):
            share = f"{elapsed / verb_total:.1%}" if verb_total else "n/a"
            lines.append(f"{label}\t{verb}\t{elapsed:.3f}\t{share}")
    return "\n".join(lines)


def outcome_record(outcome) -> Dict:
    """One benchmark outcome as a JSON-ready dict (the ``BENCH_*.json`` rows).

    Everything the perf trajectory needs per task: wall time, prune counts,
    and the prescreen / lemma / execution-cache counters.  Counter fields are
    deterministic; ``elapsed`` and the ``*_time`` splits are wall clock.
    """
    return {
        "benchmark": outcome.benchmark,
        "category": outcome.category,
        "configuration": outcome.configuration,
        "solved": outcome.solved,
        "elapsed_s": round(outcome.elapsed, 4),
        "program": outcome.program,
        "program_size": outcome.program_size,
        "prune_rate": round(outcome.prune_rate, 4),
        "smt_calls": outcome.smt_calls,
        "smt_time_s": round(outcome.smt_time, 4),
        "exec_time_s": round(outcome.exec_time, 4),
        "prescreen_decided": outcome.prescreen_decided,
        "prescreen_fallback": outcome.prescreen_fallback,
        "partial_programs": outcome.partial_programs,
        "oe_candidates": outcome.oe_candidates,
        "oe_merged": outcome.oe_merged,
        "frontier_peak": outcome.frontier_peak,
        "lemma_prunes": outcome.lemma_prunes,
        "lemmas_learned": outcome.lemmas_learned,
        "lemma_mining_solves": outcome.lemma_mining_solves,
        "tables_built": outcome.tables_built,
        "cells_interned": outcome.cells_interned,
        "fingerprint_hits": outcome.fingerprint_hits,
        "exec_cache_hits": outcome.exec_cache_hits,
        "compare_fastpath_hits": outcome.compare_fastpath_hits,
        "sibling_batches": outcome.sibling_batches,
        "batched_fills": outcome.batched_fills,
        "smt_sessions": outcome.smt_sessions,
        "smt_session_reuse": outcome.smt_session_reuse,
        "verb_times_s": {
            verb: round(elapsed, 4)
            for verb, elapsed in sorted(outcome.verb_times.items())
        },
    }


def suite_runs_json(runs: Dict[str, SuiteRun]) -> Dict:
    """A whole figure run as a JSON-ready dict, keyed by configuration label.

    Emitted by the CLI's ``--json`` flag (and the ``BENCH_figure16.json``
    recorder) so the perf trajectory is machine-readable across PRs.
    """
    payload: Dict = {}
    for label, run in runs.items():
        decided = sum(o.prescreen_decided for o in run.outcomes)
        fallback = sum(o.prescreen_fallback for o in run.outcomes)
        oe_candidates = sum(o.oe_candidates for o in run.outcomes)
        oe_merged = sum(o.oe_merged for o in run.outcomes)
        payload[label] = {
            "solved": run.solved,
            "total": run.total,
            "wall_total_s": round(sum(o.elapsed for o in run.outcomes), 4),
            "smt_calls": sum(o.smt_calls for o in run.outcomes),
            "prescreen_decided": decided,
            "prescreen_fallback": fallback,
            "prescreen_hit_rate": (
                round(decided / (decided + fallback), 4) if decided + fallback else None
            ),
            "partial_programs": sum(o.partial_programs for o in run.outcomes),
            "oe_candidates": oe_candidates,
            "oe_merged": oe_merged,
            "oe_merge_rate": (
                round(oe_merged / oe_candidates, 4) if oe_candidates else None
            ),
            "sibling_batches": sum(o.sibling_batches for o in run.outcomes),
            "batched_fills": sum(o.batched_fills for o in run.outcomes),
            "smt_sessions": sum(o.smt_sessions for o in run.outcomes),
            "smt_session_reuse": sum(o.smt_session_reuse for o in run.outcomes),
            "outcomes": [outcome_record(o) for o in run.outcomes],
        }
    return payload


def category_legend() -> str:
    """The C1-C9 category descriptions (the 'Description' column of Figure 16)."""
    lines = []
    for category, description in CATEGORY_DESCRIPTIONS.items():
        lines.append(f"{category} ({CATEGORY_COUNTS[category]} benchmarks): {description}")
    return "\n".join(lines)
