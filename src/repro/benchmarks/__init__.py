"""Benchmark suites and the harness that regenerates the paper's evaluation.

* :func:`r_benchmark_suite` -- the 80 data-preparation tasks (categories
  C1-C9 of Figure 16).
* :func:`sql_benchmark_suite` -- the 28 SQL-expressible tasks of Figure 18.
* :mod:`repro.benchmarks.runner` -- runs suites under the paper's
  configurations and aggregates Figure 16 / 17 / 18 data.
* ``python -m repro.benchmarks.cli`` -- command-line regeneration.
"""

from .r_suite import CATEGORY_COUNTS, CATEGORY_DESCRIPTIONS, r_benchmark_suite
from .runner import (
    BenchmarkOutcome,
    Figure18Row,
    SuiteRun,
    outcome_from_result,
    run_benchmark,
    run_figure16,
    run_figure17,
    run_figure18,
    run_pruning_statistics,
    run_suite,
)
from .reporting import (
    deduction_summary_table,
    execution_summary_table,
    figure16_table,
    figure17_series,
    figure17_table,
    figure18_table,
    outcome_record,
    profile_table,
    search_summary_table,
    suite_runs_json,
)
from .sql_suite import sql_benchmark_suite
from .suite import Benchmark, BenchmarkSuite

__all__ = [
    "Benchmark",
    "BenchmarkOutcome",
    "BenchmarkSuite",
    "CATEGORY_COUNTS",
    "CATEGORY_DESCRIPTIONS",
    "Figure18Row",
    "SuiteRun",
    "deduction_summary_table",
    "execution_summary_table",
    "figure16_table",
    "figure17_series",
    "figure17_table",
    "figure18_table",
    "outcome_from_result",
    "outcome_record",
    "profile_table",
    "r_benchmark_suite",
    "search_summary_table",
    "suite_runs_json",
    "run_benchmark",
    "run_figure16",
    "run_figure17",
    "run_figure18",
    "run_pruning_statistics",
    "run_suite",
    "sql_benchmark_suite",
]
