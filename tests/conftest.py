"""Shared pytest configuration."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running synthesis integration tests (deselect with '-m \"not slow\"')"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m"):
        return
    skip_slow = pytest.mark.skip(reason="slow synthesis test; run with -m slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
