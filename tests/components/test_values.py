"""Tests for the first-order value transformers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.components import EvaluationError
from repro.components.values import (
    AGGREGATORS,
    ARITHMETIC_OPERATORS,
    COMPARISON_OPERATORS,
    agg_count,
    agg_max,
    agg_mean,
    agg_min,
    agg_n_distinct,
    agg_sum,
    default_value_components,
)


class TestAggregates:
    def test_sum_mean_min_max(self):
        values = [1, 2, 3, 6]
        assert agg_sum(values) == 12
        assert agg_mean(values) == 3
        assert agg_min(values) == 1
        assert agg_max(values) == 6

    def test_missing_values_ignored(self):
        assert agg_sum([1, None, 2]) == 3
        assert agg_mean([None, 4]) == 4

    def test_count_includes_missing(self):
        assert agg_count([1, None, 2]) == 3

    def test_n_distinct(self):
        assert agg_n_distinct([1, 1.0, 2, "a", "a", None]) == 4

    def test_empty_column_rejected(self):
        with pytest.raises(EvaluationError):
            agg_sum([])
        with pytest.raises(EvaluationError):
            agg_mean([None, None])

    def test_non_numeric_rejected(self):
        with pytest.raises(EvaluationError):
            agg_sum([1, "x"])

    def test_registry_contains_all_names(self):
        assert set(AGGREGATORS) == {"sum", "mean", "min", "max", "n", "n_distinct"}


class TestComparisons:
    def test_numeric_comparisons(self):
        assert COMPARISON_OPERATORS["<"](1, 2)
        assert COMPARISON_OPERATORS[">="](2, 2)
        assert not COMPARISON_OPERATORS[">"](1, 2)

    def test_equality_with_tolerance(self):
        assert COMPARISON_OPERATORS["=="](0.1 + 0.2, 0.3)
        assert COMPARISON_OPERATORS["!="](0.1, 0.3)

    def test_string_equality(self):
        assert COMPARISON_OPERATORS["=="]("a", "a")
        assert COMPARISON_OPERATORS["!="]("a", "b")

    def test_mixed_operands_rejected_for_order(self):
        with pytest.raises(EvaluationError):
            COMPARISON_OPERATORS["<"]("a", 1)

    def test_missing_operand_rejected_for_order(self):
        with pytest.raises(EvaluationError):
            COMPARISON_OPERATORS["<"](None, 1)

    def test_missing_equality(self):
        assert COMPARISON_OPERATORS["=="](None, None)
        assert COMPARISON_OPERATORS["!="](None, 3)


class TestArithmetic:
    def test_basic_operations(self):
        assert ARITHMETIC_OPERATORS["+"](2, 3) == 5
        assert ARITHMETIC_OPERATORS["-"](2, 3) == -1
        assert ARITHMETIC_OPERATORS["*"](2, 3) == 6
        assert ARITHMETIC_OPERATORS["/"](3, 2) == 1.5

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            ARITHMETIC_OPERATORS["/"](1, 0)

    def test_non_numeric_rejected(self):
        with pytest.raises(EvaluationError):
            ARITHMETIC_OPERATORS["+"]("a", 1)

    def test_integral_results_normalise(self):
        assert ARITHMETIC_OPERATORS["/"](4, 2) == 2
        assert isinstance(ARITHMETIC_OPERATORS["/"](4, 2), int)


class TestComponentSet:
    def test_default_components_cover_the_paper(self):
        components = default_value_components()
        names = {component.name for component in components}
        assert {"==", "!=", "<", ">", "<=", ">="} <= names
        assert {"sum", "mean", "min", "max", "n"} <= names
        assert len(components) >= 10

    def test_components_are_callable(self):
        by_name = {component.name: component for component in default_value_components()}
        assert by_name["sum"]([1, 2]) == 3
        assert by_name["<"](1, 2) is True


class TestProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_sum_matches_python(self, values):
        assert agg_sum(values) == sum(values)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_min_le_mean_le_max(self, values):
        assert agg_min(values) <= agg_mean(values) <= agg_max(values)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_comparisons_are_consistent(self, a, b):
        assert COMPARISON_OPERATORS["<"](a, b) == (not COMPARISON_OPERATORS[">="](a, b))
        assert COMPARISON_OPERATORS["=="](a, b) == (not COMPARISON_OPERATORS["!="](a, b))
