"""Table equivalence used by the synthesizer's ``CHECK`` step.

Stack Overflow posters rarely care about row order, and the column order of a
``spread`` result depends on the key ordering, so the synthesizer compares the
candidate output against the expected output with configurable leniency.  The
default (:data:`DEFAULT_POLICY`) ignores row order but requires identical
column names; this matches how the paper's motivating examples are judged
(Example 3 uses an explicit ``arrange`` when the asker requested an order).

Comparisons are layered for speed, because CHECK runs on thousands of
candidate outputs per synthesis task:

1. shape prechecks (rows/columns) reject most candidates immediately;
2. a **digest fast path** -- the memoised
   :meth:`~repro.dataframe.table.Table.row_multiset_digest` and per-column
   :meth:`~repro.dataframe.table.Table.column_multiset_keys` -- decides
   shape-compatible comparisons without walking cells (equal digests
   guarantee a multiset match; a mismatched column-key multiset guarantees
   no bijection exists);
3. only float-noise edge cases fall through to the tolerant cell-by-cell
   comparison, which is unchanged and keeps the verdicts bit-identical to
   the row-major implementation.

Fast-path activity is counted in
:mod:`repro.dataframe.profiling` (``compare_fastpath_hits``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .cells import value_sort_key, values_equal
from .profiling import execution_stats
from .table import Table


@dataclass(frozen=True)
class ComparePolicy:
    """How strictly two tables are compared.

    Attributes
    ----------
    ignore_row_order:
        Treat rows as a multiset rather than a sequence.
    ignore_col_order:
        Allow columns to appear in a different order (names must still match).
    ignore_col_names:
        Compare by position only; column names are not required to match.
        (Used by the SQL baseline, whose synthesized aggregate columns have
        machine-generated names.)
    """

    ignore_row_order: bool = True
    ignore_col_order: bool = False
    ignore_col_names: bool = False


#: The policy used by the synthesizer unless a task overrides it.
DEFAULT_POLICY = ComparePolicy()

#: Strict, positional comparison (exact reproduction of Definition 1 equality).
STRICT_POLICY = ComparePolicy(ignore_row_order=False, ignore_col_order=False)

#: Lenient comparison used for the SQL baseline of Figure 18.
POSITIONAL_POLICY = ComparePolicy(ignore_row_order=True, ignore_col_order=False, ignore_col_names=True)


def _rows_equal(left, right) -> bool:
    return all(values_equal(lvalue, rvalue) for lvalue, rvalue in zip(left, right))


def _multiset_rows_equal(left_rows, right_rows) -> bool:
    def canonical(rows):
        return sorted(
            rows, key=lambda row: tuple(value_sort_key(value) for value in row)
        )

    left_sorted = canonical(left_rows)
    right_sorted = canonical(right_rows)
    return all(_rows_equal(lrow, rrow) for lrow, rrow in zip(left_sorted, right_sorted))


def _multiset_tables_equal(left: Table, right: Table) -> bool:
    """Order-insensitive row comparison with the digest fast path."""
    if left.row_multiset_digest() == right.row_multiset_digest():
        execution_stats().compare_fastpath_hits += 1
        return True
    execution_stats().compare_fastpath_misses += 1
    return _multiset_rows_equal(left.rows, right.rows)


def align_columns(actual: Table, expected: Table):
    """Find a permutation of *actual*'s columns matching *expected*.

    Synthesized programs give machine-generated names to new columns, so the
    candidate output is compared to the expected output up to a bijection
    between columns.  Returns the list of actual column names in expected
    order, or ``None`` if no alignment reproduces the expected rows (as a
    multiset).

    Columns with matching names are preferred; the remaining columns are
    matched by backtracking over columns with identical value multisets.
    """
    if actual.n_rows != expected.n_rows or actual.n_cols != expected.n_cols:
        return None

    actual_keys = actual.column_multiset_keys()
    expected_keys = expected.column_multiset_keys()

    # Prefilter: a bijection pairs every expected column with a distinct
    # actual column of equal value multiset, so unequal key multisets rule
    # out any alignment without touching cells.
    if Counter(actual_keys) != Counter(expected_keys):
        execution_stats().compare_fastpath_hits += 1
        return None

    expected_count = expected.n_cols
    candidates = []
    for expected_index in range(expected_count):
        expected_name = expected.columns[expected_index]
        fingerprint = expected_keys[expected_index]
        matching = [
            actual_index
            for actual_index in range(actual.n_cols)
            if actual_keys[actual_index] == fingerprint
        ]
        if not matching:
            return None
        # Prefer a same-named column when one exists.
        matching.sort(key=lambda index: (actual.columns[index] != expected_name, index))
        candidates.append(matching)

    assignment = [None] * expected_count
    used = set()

    def backtrack(position: int) -> bool:
        if position == expected_count:
            aligned = actual.select_columns([actual.columns[i] for i in assignment])
            return _multiset_tables_equal(aligned, expected)
        for actual_index in candidates[position]:
            if actual_index in used:
                continue
            used.add(actual_index)
            assignment[position] = actual_index
            if backtrack(position + 1):
                return True
            used.discard(actual_index)
        return False

    if backtrack(0):
        return [actual.columns[i] for i in assignment]
    return None


def tables_match_for_synthesis(actual: Table, expected: Table) -> bool:
    """The CHECK used by the synthesizer: rows as a multiset, columns up to renaming."""
    if actual.shape == expected.shape and actual.columns == expected.columns:
        # Identity alignment: equal digests prove the match outright.
        if actual.row_multiset_digest() == expected.row_multiset_digest():
            execution_stats().compare_fastpath_hits += 1
            return True
    return align_columns(actual, expected) is not None


def tables_equivalent(
    actual: Table, expected: Table, policy: ComparePolicy = DEFAULT_POLICY
) -> bool:
    """Return ``True`` if *actual* matches *expected* under *policy*."""
    if actual.n_rows != expected.n_rows or actual.n_cols != expected.n_cols:
        return False

    if policy.ignore_col_names:
        pass
    elif policy.ignore_col_order:
        if actual.header_set() != expected.header_set():
            return False
        actual = actual.select_columns(list(expected.columns))
    else:
        if actual.columns != expected.columns:
            return False

    if policy.ignore_row_order:
        if policy.ignore_col_names:
            # Positional comparison: digests include cell contents only per
            # row, so they remain sound without the column-name check.
            if actual.row_multiset_digest() == expected.row_multiset_digest():
                execution_stats().compare_fastpath_hits += 1
                return True
            execution_stats().compare_fastpath_misses += 1
            return _multiset_rows_equal(actual.rows, expected.rows)
        return _multiset_tables_equal(actual, expected)
    if actual.fingerprint() == expected.fingerprint():
        execution_stats().compare_fastpath_hits += 1
        return True
    execution_stats().compare_fastpath_misses += 1
    return all(_rows_equal(arow, erow) for arow, erow in zip(actual.rows, expected.rows))
