"""Tests for the SMT-based deduction engine (Algorithm 2)."""

import itertools

from repro.core import SpecLevel, standard_library
from repro.core.arguments import Constant, Predicate
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import (
    fill_value_hole,
    initial_hypothesis,
    refine,
    sketches,
    table_holes,
    unfilled_value_holes,
)
from repro.dataframe import Table

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}

# Figure 8 of the paper: T1 (3 students) and T2 (a selection of its rows).
T1 = Table(["id", "name", "age", "gpa"],
           [[1, "Alice", 8, 4.0], [2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]])
T2 = Table(["id", "name", "age", "gpa"],
           [[2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]])
T3 = Table(["id", "name", "age"],
           [[2, "Bob", 18], [3, "Tom", 12]])


def build_chain(*names):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    return hypothesis


class TestHypothesisLevelDeduction:
    def test_example10_rejects_select_filter_for_equal_columns(self):
        # Output has the same number of columns as the input, but the
        # hypothesis contains a projection that must drop a column: UNSAT.
        engine = DeductionEngine(inputs=[T1], output=T2)
        hypothesis = build_chain("select", "filter")
        assert engine.deduce(hypothesis) is False
        assert engine.stats.hypotheses_rejected >= 1

    def test_select_filter_accepted_when_columns_shrink(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        hypothesis = build_chain("select", "filter")
        assert engine.deduce(hypothesis) is True

    def test_filter_alone_accepted(self):
        engine = DeductionEngine(inputs=[T1], output=T2)
        assert engine.deduce(build_chain("filter")) is True

    def test_mutate_rejected_when_columns_match(self):
        engine = DeductionEngine(inputs=[T1], output=T2)
        assert engine.deduce(build_chain("mutate")) is False

    def test_spec1_weaker_than_spec2(self):
        # Spreading the Example 1 input cannot create 4 new column names; only
        # Spec 2 sees that (appendix Example 13).
        wide = Table(["id", "year", "A", "B"],
                     [[1, 2007, 5, 10], [2, 2009, 3, 50], [1, 2007, 5, 17], [2, 2009, 6, 17]])
        out = Table(["id", "A_2007", "B_2007", "A_2009", "B_2009"],
                    [[1, 5, 10, 5, 17], [2, 3, 50, 6, 17]])
        hypothesis = build_chain("spread")
        spec1 = DeductionEngine(inputs=[wide], output=out, level=SpecLevel.SPEC1)
        spec2 = DeductionEngine(inputs=[wide], output=out, level=SpecLevel.SPEC2)
        assert spec1.deduce(hypothesis) is True
        assert spec2.deduce(hypothesis) is False

    def test_disabled_engine_never_rejects(self):
        engine = DeductionEngine(inputs=[T1], output=T2, enabled=False)
        assert engine.deduce(build_chain("select", "filter")) is True
        assert engine.stats.smt_calls == 0


class TestPartialEvaluationInDeduction:
    def _sketch(self):
        hypothesis = build_chain("select", "filter")
        return next(sketches(hypothesis, 1))

    def test_example12_partially_filled_sketch_rejected(self):
        # Filling the filter predicate with age > 12 keeps a single row, which
        # cannot lead to the two-row output (Example 12 of the paper).
        engine = DeductionEngine(inputs=[T1], output=T3)
        sketch = self._sketch()
        predicate_hole = [
            hole for hole in unfilled_value_holes(sketch)
            if hole.hole_type.value == "row -> bool"
        ][0]
        candidate = fill_value_hole(sketch, predicate_hole, Predicate("age", ">", Constant(12)))
        assert engine.deduce(candidate) is False

    def test_correct_predicate_survives(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        sketch = self._sketch()
        predicate_hole = [
            hole for hole in unfilled_value_holes(sketch)
            if hole.hole_type.value == "row -> bool"
        ][0]
        candidate = fill_value_hole(sketch, predicate_hole, Predicate("age", ">", Constant(8)))
        assert engine.deduce(candidate) is True

    def test_evaluation_failure_counts_as_rejection(self):
        engine = DeductionEngine(inputs=[T1], output=T3)
        sketch = self._sketch()
        predicate_hole = [
            hole for hole in unfilled_value_holes(sketch)
            if hole.hole_type.value == "row -> bool"
        ][0]
        # age > 0 keeps every row, which the executor refuses.
        candidate = fill_value_hole(sketch, predicate_hole, Predicate("age", ">", Constant(0)))
        assert engine.deduce(candidate) is False
        assert engine.stats.evaluation_failures == 1

    def test_without_partial_evaluation_the_candidate_survives(self):
        engine = DeductionEngine(inputs=[T1], output=T3, use_partial_evaluation=False)
        sketch = self._sketch()
        predicate_hole = [
            hole for hole in unfilled_value_holes(sketch)
            if hole.hole_type.value == "row -> bool"
        ][0]
        candidate = fill_value_hole(sketch, predicate_hole, Predicate("age", ">", Constant(12)))
        assert engine.deduce(candidate) is True

    def test_verdict_cache_reuses_results(self):
        engine = DeductionEngine(inputs=[T1], output=T2)
        hypothesis = build_chain("select", "filter")
        engine.deduce(hypothesis)
        calls = engine.stats.smt_calls
        engine.deduce(hypothesis)
        assert engine.stats.smt_calls == calls


class TestStats:
    def test_stats_accumulate(self):
        engine = DeductionEngine(inputs=[T1], output=T2)
        engine.deduce(build_chain("filter"))
        engine.deduce(build_chain("mutate"))
        assert engine.stats.hypotheses_checked == 2
        assert engine.stats.smt_calls >= 1
        assert engine.stats.smt_time > 0
