"""Quickstart: synthesize a table transformation from one input-output example.

Run with::

    python examples/quickstart.py

The task: given a little table of employees, produce the head-count per
department.  We only provide the input table and the desired output table;
Morpheus figures out the ``group_by`` + ``summarise`` pipeline.
"""

from repro import SynthesisConfig, Table, synthesize

INPUT = Table(
    ["employee", "department"],
    [
        ["kim", "engineering"],
        ["lee", "engineering"],
        ["pat", "sales"],
        ["ana", "engineering"],
        ["joe", "sales"],
    ],
)

EXPECTED_OUTPUT = Table(
    ["department", "n"],
    [
        ["engineering", 3],
        ["sales", 2],
    ],
)


def main() -> None:
    result = synthesize([INPUT], EXPECTED_OUTPUT, config=SynthesisConfig(timeout=30))
    print("input table:")
    print(INPUT.to_markdown())
    print()
    print("expected output:")
    print(EXPECTED_OUTPUT.to_markdown())
    print()
    if result.solved:
        print(f"synthesized in {result.elapsed:.2f}s ({result.size} components):")
        print(result.render(["employees"]))
    else:
        print("no program found within the time limit")


if __name__ == "__main__":
    main()
