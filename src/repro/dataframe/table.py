"""The :class:`Table` data structure.

A table (Definition 1 of the paper) is a tuple ``(r, c, tau, sigma)`` where
``r`` and ``c`` are the number of rows and columns, ``tau`` is a record type
mapping column names to cell types, and ``sigma`` maps each cell to a value.

This module provides an immutable, pure-Python implementation of that
definition together with the handful of extras the rest of the system needs:

* *grouping metadata* -- ``dplyr::group_by`` does not change the contents of a
  data frame, it only attaches grouping information that later verbs
  (``summarise``, ``mutate``) consult.  ``Table.group_cols`` records that
  information, and ``Table.n_groups`` is exactly the ``T.group`` attribute used
  by Spec 2 (Table 3 of the paper).
* *value/column-name sets* -- Spec 2 constrains ``T.newCols`` / ``T.newVals``,
  the number of column names / values of a table that do not already appear in
  the input tables.  :meth:`Table.header_set` and :meth:`Table.value_set`
  expose the underlying sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .cells import (
    CellType,
    CellValue,
    coerce_value,
    format_value,
    infer_column_type,
    value_sort_key,
    values_equal,
)
from .errors import ColumnNotFoundError, DuplicateColumnError, SchemaError


class Table:
    """An immutable table of typed cells.

    Parameters
    ----------
    columns:
        Ordered column names.
    rows:
        Row-major cell values.  Every row must have exactly ``len(columns)``
        entries.
    col_types:
        Optional explicit column types.  When omitted the types are inferred
        from the data.
    group_cols:
        Names of the columns the table is currently grouped by (attached by
        ``group_by``, consumed by ``summarise``).
    """

    __slots__ = ("_columns", "_col_types", "_rows", "_group_cols")

    def __init__(
        self,
        columns: Sequence[str],
        rows: Iterable[Sequence[CellValue]],
        col_types: Optional[Sequence[CellType]] = None,
        group_cols: Sequence[str] = (),
    ) -> None:
        columns = tuple(str(c) for c in columns)
        if len(set(columns)) != len(columns):
            raise DuplicateColumnError(f"duplicate column names in {list(columns)}")
        materialized: List[Tuple[CellValue, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(columns):
                raise SchemaError(
                    f"row {row!r} has {len(row)} cells but the table has "
                    f"{len(columns)} columns"
                )
            materialized.append(row)

        if col_types is None:
            inferred = []
            for index in range(len(columns)):
                inferred.append(infer_column_type(row[index] for row in materialized))
            col_types = inferred
        col_types = tuple(col_types)
        if len(col_types) != len(columns):
            raise SchemaError("col_types must have one entry per column")

        coerced_rows = [
            tuple(coerce_value(value, col_types[index]) for index, value in enumerate(row))
            for row in materialized
        ]

        for name in group_cols:
            if name not in columns:
                raise ColumnNotFoundError(name, columns)

        self._columns = columns
        self._col_types = col_types
        self._rows = tuple(coerced_rows)
        self._group_cols = tuple(group_cols)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, CellValue]],
        columns: Optional[Sequence[str]] = None,
    ) -> "Table":
        """Build a table from a list of dictionaries (one per row)."""
        if columns is None:
            if not records:
                raise SchemaError("cannot infer columns from an empty record list")
            columns = list(records[0].keys())
        rows = [[record.get(column) for column in columns] for record in records]
        return cls(columns, rows)

    @classmethod
    def from_columns(cls, data: Mapping[str, Sequence[CellValue]]) -> "Table":
        """Build a table from a mapping of column name to column values."""
        columns = list(data.keys())
        lengths = {len(values) for values in data.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have inconsistent lengths: {sorted(lengths)}")
        n_rows = lengths.pop() if lengths else 0
        rows = [[data[column][index] for column in columns] for index in range(n_rows)]
        return cls(columns, rows)

    @classmethod
    def empty(cls, columns: Sequence[str], col_types: Optional[Sequence[CellType]] = None) -> "Table":
        """Build an empty table with the given schema."""
        return cls(columns, [], col_types=col_types)

    # ------------------------------------------------------------------
    # Basic accessors (Definition 1: T.row, T.col, type(T), T_{i,j})
    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """Ordered column names."""
        return self._columns

    @property
    def col_types(self) -> Tuple[CellType, ...]:
        """Column types, aligned with :attr:`columns`."""
        return self._col_types

    @property
    def rows(self) -> Tuple[Tuple[CellValue, ...], ...]:
        """All rows as tuples of cell values."""
        return self._rows

    @property
    def group_cols(self) -> Tuple[str, ...]:
        """Columns the table is grouped by (empty when ungrouped)."""
        return self._group_cols

    @property
    def n_rows(self) -> int:
        """``T.row`` in the paper's notation."""
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        """``T.col`` in the paper's notation."""
        return len(self._columns)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(rows, columns)``."""
        return (self.n_rows, self.n_cols)

    def schema(self) -> Dict[str, CellType]:
        """``type(T)``: mapping from column name to cell type."""
        return dict(zip(self._columns, self._col_types))

    def has_column(self, name: str) -> bool:
        """Return ``True`` if *name* is a column of this table."""
        return name in self._columns

    def column_index(self, name: str) -> int:
        """Return the position of column *name*, raising if it is absent."""
        try:
            return self._columns.index(name)
        except ValueError:
            raise ColumnNotFoundError(name, self._columns) from None

    def column_type(self, name: str) -> CellType:
        """Return the :class:`CellType` of column *name*."""
        return self._col_types[self.column_index(name)]

    def column_values(self, name: str) -> Tuple[CellValue, ...]:
        """Return all values of column *name*, in row order."""
        index = self.column_index(name)
        return tuple(row[index] for row in self._rows)

    def cell(self, row_index: int, column: str) -> CellValue:
        """Return the value stored at ``(row_index, column)``."""
        return self._rows[row_index][self.column_index(column)]

    def row_dict(self, row_index: int) -> Dict[str, CellValue]:
        """Return row *row_index* as an ordered ``{column: value}`` mapping."""
        return dict(zip(self._columns, self._rows[row_index]))

    def iter_records(self) -> Iterable[Dict[str, CellValue]]:
        """Iterate over all rows as dictionaries."""
        for index in range(self.n_rows):
            yield self.row_dict(index)

    # ------------------------------------------------------------------
    # Grouping (used by Spec 2's T.group attribute)
    # ------------------------------------------------------------------
    def with_grouping(self, group_cols: Sequence[str]) -> "Table":
        """Return a copy of this table grouped by *group_cols*."""
        for name in group_cols:
            if name not in self._columns:
                raise ColumnNotFoundError(name, self._columns)
        return Table(self._columns, self._rows, self._col_types, tuple(group_cols))

    def ungrouped(self) -> "Table":
        """Return a copy of this table with grouping metadata removed."""
        if not self._group_cols:
            return self
        return Table(self._columns, self._rows, self._col_types, ())

    def group_keys(self) -> List[Tuple[CellValue, ...]]:
        """Distinct values of the grouping columns, in first-appearance order."""
        if not self._group_cols:
            return [()] if self._rows else []
        indices = [self.column_index(name) for name in self._group_cols]
        seen: List[Tuple[CellValue, ...]] = []
        for row in self._rows:
            key = tuple(row[index] for index in indices)
            if key not in seen:
                seen.append(key)
        return seen

    def group_row_indices(self) -> List[Tuple[Tuple[CellValue, ...], List[int]]]:
        """Rows of each group as ``(key, row_indices)`` pairs."""
        if not self._group_cols:
            return [((), list(range(self.n_rows)))] if self._rows else []
        indices = [self.column_index(name) for name in self._group_cols]
        buckets: Dict[Tuple[CellValue, ...], List[int]] = {}
        order: List[Tuple[CellValue, ...]] = []
        for row_index, row in enumerate(self._rows):
            key = tuple(row[index] for index in indices)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row_index)
        return [(key, buckets[key]) for key in order]

    @property
    def n_groups(self) -> int:
        """``T.group``: the number of groups.

        An ungrouped non-empty table forms a single group; an empty table has
        no groups; a grouped table has one group per distinct key.
        """
        if not self._group_cols:
            return 1 if self._rows else 0
        return len(self.group_keys())

    # ------------------------------------------------------------------
    # Sets used by the Spec 2 abstraction (T.newCols / T.newVals)
    # ------------------------------------------------------------------
    def header_set(self) -> frozenset:
        """The set of column names of this table."""
        return frozenset(self._columns)

    def value_set(self) -> frozenset:
        """The set of values of this table.

        Following the appendix of the paper, the value set of a table contains
        its column names *and* its cell contents (cells are canonicalised via
        :func:`repro.dataframe.cells.format_value` so ``5`` and ``5.0`` are the
        same value).
        """
        values = set(self._columns)
        for row in self._rows:
            for value in row:
                values.add(format_value(value))
        return frozenset(values)

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def with_rows(self, rows: Iterable[Sequence[CellValue]]) -> "Table":
        """Return a table with the same schema but different rows."""
        return Table(self._columns, rows, self._col_types, self._group_cols)

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Project this table onto *names* (in the given order)."""
        indices = [self.column_index(name) for name in names]
        rows = [tuple(row[index] for index in indices) for row in self._rows]
        col_types = [self._col_types[index] for index in indices]
        group_cols = [name for name in self._group_cols if name in names]
        return Table(names, rows, col_types, group_cols)

    def drop_columns(self, names: Sequence[str]) -> "Table":
        """Remove *names* from this table."""
        keep = [name for name in self._columns if name not in set(names)]
        return self.select_columns(keep)

    def rename_column(self, old: str, new: str) -> "Table":
        """Rename a single column."""
        index = self.column_index(old)
        if new in self._columns and new != old:
            raise DuplicateColumnError(f"column {new!r} already exists")
        columns = list(self._columns)
        columns[index] = new
        group_cols = [new if name == old else name for name in self._group_cols]
        return Table(columns, self._rows, self._col_types, group_cols)

    def with_column(self, name: str, values: Sequence[CellValue]) -> "Table":
        """Append a new column called *name* with the given values."""
        if name in self._columns:
            raise DuplicateColumnError(f"column {name!r} already exists")
        if len(values) != self.n_rows:
            raise SchemaError(
                f"new column has {len(values)} values but the table has {self.n_rows} rows"
            )
        columns = list(self._columns) + [name]
        rows = [tuple(row) + (values[index],) for index, row in enumerate(self._rows)]
        col_types = list(self._col_types) + [infer_column_type(values)]
        return Table(columns, rows, col_types, self._group_cols)

    def sorted_by(self, names: Sequence[str]) -> "Table":
        """Return this table sorted (ascending) by the given columns."""
        indices = [self.column_index(name) for name in names]

        def key(row):
            return tuple(value_sort_key(row[index]) for index in indices)

        return self.with_rows(sorted(self._rows, key=key))

    def canonical_rows(self) -> Tuple[Tuple[CellValue, ...], ...]:
        """Rows sorted into a canonical order (used for order-insensitive comparison)."""
        return tuple(
            sorted(self._rows, key=lambda row: tuple(value_sort_key(value) for value in row))
        )

    # ------------------------------------------------------------------
    # Equality / rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality: schema, grouping metadata and cell contents.

        Grouping is part of a table's identity -- ``group_by`` changes how
        later verbs behave even though the cells are untouched.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self._columns != other._columns or self.n_rows != other.n_rows:
            return False
        if self._group_cols != other._group_cols:
            return False
        for left, right in zip(self._rows, other._rows):
            for lvalue, rvalue in zip(left, right):
                if not values_equal(lvalue, rvalue):
                    return False
        return True

    def __hash__(self) -> int:
        return hash(
            (
                self._columns,
                self._group_cols,
                tuple(tuple(format_value(v) for v in row) for row in self._rows),
            )
        )

    def __len__(self) -> int:
        return self.n_rows

    def to_markdown(self) -> str:
        """Render this table as a GitHub-flavoured markdown table."""
        header = "| " + " | ".join(self._columns) + " |"
        separator = "| " + " | ".join("---" for _ in self._columns) + " |"
        lines = [header, separator]
        for row in self._rows:
            lines.append("| " + " | ".join(format_value(value) for value in row) + " |")
        return "\n".join(lines)

    def __repr__(self) -> str:
        grouped = f", grouped by {list(self._group_cols)}" if self._group_cols else ""
        return f"<Table {self.n_rows}x{self.n_cols} columns={list(self._columns)}{grouped}>"

    def __str__(self) -> str:
        return self.to_markdown()
