"""Re-implementation of the dplyr verbs used by Morpheus.

``select``, ``filter``, ``summarise``, ``group_by``, ``mutate``,
``inner_join`` and ``arrange`` manipulate a data frame without changing its
long/wide orientation.  Grouping is carried as metadata on the table (see
:class:`repro.dataframe.Table`), exactly the information Spec 2's ``T.group``
attribute abstracts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..dataframe.cells import CellValue, value_sort_key
from ..dataframe.table import Table
from .errors import EvaluationError, InvalidArgumentError
from .values import AGGREGATORS, agg_count

#: A predicate over a single row, given as ``{column: value}``.
RowPredicate = Callable[[Dict[str, CellValue]], bool]

#: A mutate expression: receives the row and the rows of the row's group.
RowExpression = Callable[[Dict[str, CellValue], "GroupContext"], CellValue]


class GroupContext:
    """The rows of the group a ``mutate`` expression is evaluated in.

    dplyr evaluates aggregate calls inside ``mutate`` (e.g. ``sum(n)``) over
    the *group* of the current row, so expressions receive this context.
    """

    def __init__(self, table: Table, row_indices: Sequence[int]):
        self._table = table
        self._row_indices = tuple(row_indices)

    def column_values(self, column: str) -> Tuple[CellValue, ...]:
        """Values of *column* restricted to the rows of this group."""
        index = self._table.column_index(column)
        return tuple(self._table.rows[i][index] for i in self._row_indices)

    @property
    def size(self) -> int:
        """Number of rows in the group."""
        return len(self._row_indices)


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


def select(table: Table, columns: Sequence[str]) -> Table:
    """Project the table onto *columns* (a strict subset, like the paper's spec)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("select: must keep at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("select: selected columns must be distinct")
    _check_columns_exist(table, columns, "select")
    if len(columns) >= table.n_cols:
        raise EvaluationError("select: selection must drop at least one column")
    return table.select_columns(columns)


def filter_rows(table: Table, predicate: RowPredicate) -> Table:
    """Keep the rows satisfying *predicate*."""
    kept = [row for index, row in enumerate(table.rows) if predicate(table.row_dict(index))]
    if len(kept) == len(table.rows):
        # The paper's spec requires a strictly smaller table (footnote 3):
        # a filter that keeps everything is never needed for a minimal program.
        raise EvaluationError("filter: predicate keeps every row")
    return table.with_rows(kept)


def group_by(table: Table, columns: Sequence[str]) -> Table:
    """Attach grouping metadata to the table."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("group_by: must group by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("group_by: grouping columns must be distinct")
    _check_columns_exist(table, columns, "group_by")
    return table.with_grouping(columns)


def summarise(
    table: Table,
    new_column: str,
    aggregator: str,
    target_column: str = None,
) -> Table:
    """Collapse each group to a single row holding an aggregate value.

    The output contains the grouping columns (one row per group) followed by
    the new aggregate column.  Like dplyr, the result drops the *last*
    grouping level, so ``summarise(group_by(df, g), ...)`` is ungrouped and a
    later ``mutate`` aggregates over the whole table (this is what makes
    ``mutate(prop = n / sum(n))`` in the paper's Example 2 work).
    """
    if aggregator not in AGGREGATORS:
        raise InvalidArgumentError(f"summarise: unknown aggregator {aggregator!r}")
    if aggregator != "n":
        if target_column is None:
            raise InvalidArgumentError(f"summarise: aggregator {aggregator!r} needs a target column")
        _check_columns_exist(table, [target_column], "summarise")
    group_columns = list(table.group_cols)
    if new_column in group_columns:
        raise EvaluationError(f"summarise: new column {new_column!r} collides with a grouping column")

    out_rows: List[Tuple[CellValue, ...]] = []
    for key, row_indices in table.group_row_indices():
        if aggregator == "n":
            value = agg_count([None] * len(row_indices))
        else:
            column_index = table.column_index(target_column)
            values = [table.rows[i][column_index] for i in row_indices]
            value = AGGREGATORS[aggregator](values)
        out_rows.append(tuple(key) + (value,))

    out_columns = group_columns + [new_column]
    result = Table(out_columns, out_rows)
    remaining_groups = group_columns[:-1]
    if remaining_groups:
        result = result.with_grouping(remaining_groups)
    return result


def mutate(table: Table, new_column: str, expression: RowExpression) -> Table:
    """Add a new column computed from each row (and its group)."""
    if table.has_column(new_column):
        raise EvaluationError(f"mutate: column {new_column!r} already exists")
    group_of_row: Dict[int, GroupContext] = {}
    for _key, row_indices in table.group_row_indices():
        context = GroupContext(table, row_indices)
        for row_index in row_indices:
            group_of_row[row_index] = context

    values: List[CellValue] = []
    for row_index in range(table.n_rows):
        context = group_of_row.get(row_index, GroupContext(table, range(table.n_rows)))
        values.append(expression(table.row_dict(row_index), context))
    return table.with_column(new_column, values)


def inner_join(left: Table, right: Table) -> Table:
    """Natural inner join on all shared columns (like dplyr's default)."""
    shared = [name for name in left.columns if right.has_column(name)]
    if not shared:
        raise EvaluationError("inner_join: tables share no columns")
    left_indices = [left.column_index(name) for name in shared]
    right_indices = [right.column_index(name) for name in shared]
    right_extra = [name for name in right.columns if name not in shared]
    right_extra_indices = [right.column_index(name) for name in right_extra]

    # Hash the right table on the join key.
    buckets: Dict[Tuple, List[Tuple[CellValue, ...]]] = {}
    for row in right.rows:
        key = tuple(_join_key(row[index]) for index in right_indices)
        buckets.setdefault(key, []).append(row)

    out_rows: List[Tuple[CellValue, ...]] = []
    for row in left.rows:
        key = tuple(_join_key(row[index]) for index in left_indices)
        for match in buckets.get(key, ()):
            out_rows.append(tuple(row) + tuple(match[index] for index in right_extra_indices))

    out_columns = list(left.columns) + right_extra
    if not out_rows:
        raise EvaluationError("inner_join: join result is empty")
    return Table(out_columns, out_rows)


def _join_key(value: CellValue):
    if value is None:
        return (0, None)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, float(value))
    return (2, value)


def arrange(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    """Sort the table by *columns* (ascending by default, like dplyr)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("arrange: must sort by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("arrange: sort columns must be distinct")
    _check_columns_exist(table, columns, "arrange")
    indices = [table.column_index(name) for name in columns]

    def key(row):
        return tuple(value_sort_key(row[index]) for index in indices)

    return table.with_rows(sorted(table.rows, key=key, reverse=descending))
