"""Shared cold-vs-warm knowledge-base differential.

Both ``repro-bench --kb-bench`` and the ``benchmarks/record_figure16.py``
recorder measure the warm-start knowledge base the same way: run a suite
twice against one KB file -- cold (populating it) then warm (replaying the
identical task list) -- and compare wall time, KB hit statistics and the
search trajectories.  This module is that shared measurement, so the CLI
gate and the CI gate can never disagree on what "warm-start correct" means.

The two guarantees the differential checks:

* **Programs byte-identical.**  The KB only replaces concrete executions
  and attribute-vector computations with persisted copies of the same
  values, so the warm run must synthesize exactly the programs the cold
  run did.
* **Trajectory counters byte-identical.**  Every deterministic search
  counter (SMT calls, lemma prunes, prescreen decisions, partial programs,
  OE merges, exec-cache hits, ...) must match: the warm run walks the same
  search tree, it just skips re-deriving facts.  ``tables_built`` and
  ``cells_interned`` are deliberately *not* compared -- the warm run skips
  the table constructions the KB answered, which is the point of the
  cache; that saved work shows up in the KB hit count instead.

Counter identity only holds for tasks that reach their deterministic end
(a solution): a task cut off by the wall-clock timeout stops at whatever
point the clock ran out, and a warm run -- doing less work per step --
gets further down the *same* trajectory before the cut.  The counter gate
therefore compares the tasks solved in both phases; the program gate
still covers every task (a timeout in one phase and a solution in the
other is reported as a difference).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..baselines.configurations import spec2_config
from ..engine.kb import KnowledgeBase, set_default_kb
from .runner import SuiteRun, run_suite
from .suite import BenchmarkSuite

#: Per-outcome fields a warm start must reproduce exactly (the search
#: trajectory).  Execution-volume counters (``tables_built``,
#: ``cells_interned``) are excluded: the KB exists to shrink them.
TRAJECTORY_FIELDS = (
    "benchmark",
    "solved",
    "program",
    "program_size",
    "smt_calls",
    "lemma_prunes",
    "lemmas_learned",
    "lemma_mining_solves",
    "prescreen_decided",
    "prescreen_fallback",
    "partial_programs",
    "oe_candidates",
    "oe_merged",
    "frontier_peak",
    "exec_cache_hits",
)


def trajectory(run: SuiteRun, benchmarks=None) -> list:
    """The deterministic per-task counter trajectory of one suite run.

    *benchmarks* restricts the trajectory to those task names (used to
    compare only tasks that reached their deterministic end in both runs).
    """
    return [
        tuple(getattr(outcome, field) for field in TRAJECTORY_FIELDS)
        for outcome in run.outcomes
        if benchmarks is None or outcome.benchmark in benchmarks
    ]


def programs(run: SuiteRun) -> list:
    """The synthesized programs of one suite run, in suite order."""
    return [(o.benchmark, o.solved, o.program) for o in run.outcomes]


def run_kb_differential(
    suite: BenchmarkSuite,
    timeout: float,
    kb_path: str,
    progress: Optional[Callable] = None,
    label: str = "spec2",
) -> dict:
    """Run *suite* cold then warm against the KB at *kb_path*.

    Each phase opens its own :class:`~repro.engine.kb.KnowledgeBase` on the
    file (exactly what two separate processes sharing the KB would do),
    installs it as the process default, runs the suite serially under the
    plain spec2 configuration, then uninstalls and closes it.  Returns the
    ``kb_comparison`` payload block.
    """
    phase_data = {}
    for phase in ("cold", "warm"):
        kb = KnowledgeBase(kb_path)
        set_default_kb(kb)
        try:
            started = time.perf_counter()
            run = run_suite(
                suite, spec2_config, timeout=timeout,
                label=f"{label}-{phase}", progress=progress,
            )
            wall = time.perf_counter() - started
        finally:
            set_default_kb(None)
        stats = kb.stats.as_dict()
        stats["entries"] = len(kb)
        kb.close()
        phase_data[phase] = {"wall_s": round(wall, 3), "kb": stats, "run": run}
    cold, warm = phase_data["cold"], phase_data["warm"]
    # Only tasks that reached their deterministic end (a solution) in both
    # phases can promise identical counters; timeouts are wall-clock cuts.
    solved_both = {o.benchmark for o in cold["run"].outcomes if o.solved} & {
        o.benchmark for o in warm["run"].outcomes if o.solved
    }
    return {
        "suite_size": cold["run"].total,
        "timeout_s": timeout,
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "speedup": (
            round(cold["wall_s"] / warm["wall_s"], 3) if warm["wall_s"] else None
        ),
        "cold_kb": cold["kb"],
        "warm_kb": warm["kb"],
        "solved_cold": cold["run"].solved,
        "solved_warm": warm["run"].solved,
        "counters_compared": len(solved_both),
        "programs_identical": programs(cold["run"]) == programs(warm["run"]),
        "counters_identical": (
            trajectory(cold["run"], solved_both)
            == trajectory(warm["run"], solved_both)
        ),
    }
