"""Process-parallel synthesis drivers.

Three entry points fan expensive synthesis work over a ``multiprocessing``
pool:

* :class:`ParallelRunner` distributes benchmark x configuration pairs and
  collects picklable :class:`~repro.benchmarks.runner.BenchmarkOutcome`\\ s,
  reproducing exactly what the serial runner would have produced (the work
  items are independent, so only wall-clock time changes).
* :func:`synthesize_batch` serves many input-output examples concurrently and
  returns the results in input order.
* :func:`synthesize_portfolio` races several configurations on one example
  and returns as soon as any of them finds a program.

Workers are plain top-level functions so they pickle under every start
method; each worker process keeps its own deduction memo and SMT formula
cache (inherited warm under ``fork``, cold under ``spawn``).

Conflict-driven lemma state never crosses task boundaries: lemmas rest on
one example's formulas, and ``Morpheus.synthesize`` creates a fresh
:class:`~repro.core.lemmas.LemmaStore` (and incremental solver session) per
run, so every worker task mines its own lemmas from scratch and a
``--jobs N`` suite run is bit-identical to the serial one -- including the
lemma-prune and SMT-call counters on each outcome.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..benchmarks.runner import BenchmarkOutcome, SuiteRun, run_benchmark
from ..benchmarks.suite import Benchmark, BenchmarkSuite
from ..core.synthesizer import Example, Morpheus, SynthesisConfig, SynthesisResult
from ..dataframe.profiling import reset_execution_state
from ..smt.solver import clear_formula_cache

#: A unit of benchmark work: (benchmark, configuration, label, library).
BenchmarkPair = Tuple[Benchmark, SynthesisConfig, str, object]


def default_job_count() -> int:
    """Worker count used when ``jobs`` is not given (one per CPU)."""
    return max(1, os.cpu_count() or 1)


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return default_job_count()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _coerce_example(example) -> Example:
    if isinstance(example, Example):
        return example
    inputs, output = example
    return Example.make(inputs, output)


# ----------------------------------------------------------------------
# Worker functions (top-level so they pickle under the spawn start method)
# ----------------------------------------------------------------------
def _run_pair_task(task):
    index, benchmark, config, label, library = task
    return index, run_benchmark(benchmark, config, library=library, label=label)


def _synthesize_task(task):
    index, example, config, library = task
    # Start from a cold formula cache, execution counters and intern pool so
    # the outcome does not depend on what this process (or pool worker) ran
    # before -- the same independence discipline run_benchmark applies for
    # the benchmark harness.
    clear_formula_cache()
    reset_execution_state()
    result = Morpheus(library=library, config=config).synthesize(example)
    return index, result


def _map_indexed(
    worker,
    tasks: Sequence[tuple],
    jobs: int,
    start_method: Optional[str] = None,
    on_result=None,
    stop=None,
) -> Dict[int, object]:
    """Run index-prefixed *tasks* through *worker*, serially or over a pool.

    Results are collected into an index-keyed dict so callers can restore
    input order regardless of completion order.  ``on_result(index, value)``
    fires in the parent as results arrive; ``stop(index, value)`` returning
    true ends the run early (remaining pool workers are terminated).
    """
    collected: Dict[int, object] = {}

    def record(index, value) -> bool:
        collected[index] = value
        if on_result is not None:
            on_result(index, value)
        return stop is not None and stop(index, value)

    if jobs == 1 or len(tasks) <= 1:
        for task in tasks:
            index, value = worker(task)
            if record(index, value):
                break
        return collected
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing
    )
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        for index, value in pool.imap_unordered(worker, tasks):
            if record(index, value):
                # Exiting the with-block terminates the remaining workers.
                break
    return collected


# ----------------------------------------------------------------------
# ParallelRunner: benchmark x configuration fan-out
# ----------------------------------------------------------------------
@dataclass
class ParallelRunner:
    """Runs benchmark x configuration pairs over a process pool.

    ``jobs=None`` uses one worker per CPU; ``jobs=1`` degrades to a serial
    loop with identical semantics (and no pool overhead), so callers can
    thread a single ``--jobs`` value through unconditionally.
    """

    jobs: Optional[int] = None
    #: Optional multiprocessing start method ("fork", "spawn", ...).
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        self.jobs = _resolve_jobs(self.jobs)

    # ------------------------------------------------------------------
    def map_benchmarks(
        self,
        pairs: Sequence[BenchmarkPair],
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> List[BenchmarkOutcome]:
        """Run every (benchmark, config, label, library) pair; results in input order.

        ``progress`` is invoked in the parent process as outcomes arrive
        (completion order under a pool, input order when serial).
        """
        tasks = [
            (index, benchmark, config, label, library)
            for index, (benchmark, config, label, library) in enumerate(pairs)
        ]
        on_result = None if progress is None else (lambda _index, outcome: progress(outcome))
        collected = _map_indexed(
            _run_pair_task, tasks, self.jobs, self.start_method, on_result=on_result
        )
        return [collected[index] for index in range(len(tasks))]

    def run_suite(
        self,
        suite: BenchmarkSuite,
        config_factory: Callable[[Optional[float]], SynthesisConfig],
        timeout: float = 20.0,
        label: Optional[str] = None,
        library=None,
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> SuiteRun:
        """Parallel drop-in for :func:`repro.benchmarks.runner.run_suite`."""
        config = config_factory(timeout)
        resolved = label or config.describe()
        outcomes = self.map_benchmarks(
            [(benchmark, config, resolved, library) for benchmark in suite],
            progress=progress,
        )
        return SuiteRun(configuration=resolved, outcomes=outcomes)

    def run_matrix(
        self,
        suite: BenchmarkSuite,
        configurations: Mapping[str, Callable[[Optional[float]], SynthesisConfig]],
        timeout: float = 20.0,
        library=None,
        progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    ) -> Dict[str, SuiteRun]:
        """Fan the whole benchmark x configuration grid into one pool.

        Scheduling all cells together keeps every worker busy even when one
        configuration is much slower than the others (the per-configuration
        loop of the serial harness would serialise on it).
        """
        pairs: List[BenchmarkPair] = []
        for label, factory in configurations.items():
            config = factory(timeout)
            pairs.extend((benchmark, config, label, library) for benchmark in suite)
        outcomes = self.map_benchmarks(pairs, progress=progress)
        runs = {label: SuiteRun(configuration=label) for label in configurations}
        for outcome in outcomes:
            runs[outcome.configuration].outcomes.append(outcome)
        return runs


# ----------------------------------------------------------------------
# synthesize_batch: many examples, one configuration
# ----------------------------------------------------------------------
def synthesize_batch(
    examples: Sequence,
    config: Optional[SynthesisConfig] = None,
    library=None,
    jobs: Optional[int] = None,
) -> List[SynthesisResult]:
    """Synthesize a program for every example, fanning over worker processes.

    *examples* may be :class:`Example` objects or ``(inputs, output)`` pairs.
    Results come back in input order regardless of completion order, and each
    example's search is bit-for-bit the search ``Morpheus.synthesize`` would
    run serially (workers share nothing), so the outcomes are deterministic.
    The one timing-sensitive edge: an example whose solve time approaches the
    configured wall-clock timeout may time out when more workers run than
    there are CPU cores.
    """
    jobs = _resolve_jobs(jobs)
    config = config if config is not None else SynthesisConfig()
    tasks = [
        (index, _coerce_example(example), config, library)
        for index, example in enumerate(examples)
    ]
    collected = _map_indexed(_synthesize_task, tasks, jobs)
    return [collected[index] for index in range(len(tasks))]


# ----------------------------------------------------------------------
# synthesize_portfolio: one example, racing configurations
# ----------------------------------------------------------------------
@dataclass
class PortfolioResult:
    """Outcome of racing several configurations on one example."""

    #: The winning (or, if nothing solved, the first configuration's) result.
    result: SynthesisResult
    #: ``describe()`` of the configuration that produced :attr:`result`.
    winner: Optional[str]
    #: How many configurations ran to completion before the race ended.
    attempts: int

    @property
    def solved(self) -> bool:
        return self.result.solved


def synthesize_portfolio(
    example,
    configs: Sequence[SynthesisConfig],
    library=None,
    jobs: Optional[int] = None,
) -> PortfolioResult:
    """Race *configs* on one example; return the first solution found.

    With ``jobs > 1`` the configurations run concurrently and the remaining
    workers are cancelled as soon as one solves the example -- which
    configuration wins can therefore depend on timing.  With ``jobs=1`` the
    configurations run in order and the first solver wins deterministically.
    If no configuration solves the example, the first configuration's
    (unsolved) result is returned with ``winner=None``.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("synthesize_portfolio needs at least one configuration")
    jobs = _resolve_jobs(jobs)
    example = _coerce_example(example)
    tasks = [(index, example, config, library) for index, config in enumerate(configs)]

    collected = _map_indexed(
        _synthesize_task, tasks, jobs,
        stop=lambda _index, result: result.solved,
    )
    attempts = len(collected)
    for index, result in collected.items():
        if result.solved:
            return PortfolioResult(result, configs[index].describe(), attempts)
    return PortfolioResult(collected[min(collected)], None, attempts)
