"""Re-implementation of the four tidyr verbs used by Morpheus.

``gather``, ``spread``, ``separate`` and ``unite`` reshape a data frame
between its "wide" and "long" representations.  The semantics follow tidyr
closely enough for the synthesis benchmarks: the executor is what candidate
programs are run on, and the specs in :mod:`repro.core.specs` only need to
over-approximate it.

Like the dplyr verbs, every reshaping operation is columnar: outputs are
assembled as column vectors (identifier columns of ``gather`` are whole-vector
repetitions, ``spread`` cells are scattered into per-key vectors), and
grouping metadata propagates to every grouping column that survives into the
output schema.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence

from ..dataframe.backend import active_backend
from ..dataframe.cells import CellType, CellValue, format_value, value_sort_key
from ..dataframe.table import Table
from .dplyr import surviving_group_cols
from .errors import EvaluationError, InvalidArgumentError

#: Separator used by ``unite`` and (by default) by ``separate``.
DEFAULT_SEPARATOR = "_"

_SEPARATE_PATTERN = re.compile(r"[^0-9A-Za-z.]+")


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


def gather(table: Table, key: str, value: str, columns: Sequence[str]) -> Table:
    """Collapse *columns* into key/value pairs (wide to long).

    Every remaining column is duplicated for each gathered column, the *key*
    column holds the gathered column's name and the *value* column holds the
    cell value.
    """
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("gather: must gather at least two columns")
    _check_columns_exist(table, columns, "gather")
    if len(columns) >= table.n_cols:
        raise EvaluationError("gather: cannot gather every column of the table")
    id_columns = [name for name in table.columns if name not in set(columns)]
    if key in id_columns or value in id_columns or key == value:
        raise InvalidArgumentError("gather: key/value names collide with remaining columns")

    gathered_types = {table.column_type(name) for name in columns}
    value_type = CellType.NUM if gathered_types == {CellType.NUM} else CellType.STR

    repeats = len(columns)
    out_vectors: List[Sequence[CellValue]] = [
        table.column_values(name) * repeats for name in id_columns
    ]
    key_vector: List[CellValue] = []
    value_vector: List[CellValue] = []
    for gathered in columns:
        key_vector.extend([gathered] * table.n_rows)
        cells = table.column_values(gathered)
        if value_type is CellType.STR:
            cells = tuple(
                format_value(cell) if cell is not None else None for cell in cells
            )
        value_vector.extend(cells)
    out_vectors.append(key_vector)
    out_vectors.append(value_vector)

    out_types = [table.column_type(name) for name in id_columns] + [CellType.STR, value_type]
    return active_backend().build_gather(
        table, id_columns, key, value, out_vectors, out_types,
        surviving_group_cols(table, id_columns),
    )


def spread(table: Table, key: str, value: str) -> Table:
    """Spread a key/value pair across multiple columns (long to wide)."""
    if key == value:
        raise InvalidArgumentError("spread: key and value must be different columns")
    _check_columns_exist(table, [key, value], "spread")

    id_columns = [name for name in table.columns if name not in (key, value)]
    if not id_columns:
        raise EvaluationError("spread: no identifier columns remain")
    key_vector = table.column_values(key)

    # New columns are the distinct key values, in sorted order (like tidyr).
    seen: Dict[CellValue, None] = {}
    for cell in key_vector:
        if cell is None:
            raise EvaluationError("spread: key column contains a missing value")
        if cell not in seen:
            seen[cell] = None
    key_values = sorted(seen, key=value_sort_key)
    new_columns = [format_value(key_value) for key_value in key_values]
    if len(set(new_columns)) != len(new_columns):
        raise EvaluationError("spread: key values collide after formatting")
    for name in new_columns:
        if name in id_columns:
            raise EvaluationError(f"spread: new column {name!r} collides with an existing column")

    first_rows, value_vectors = active_backend().spread_scatter(
        table, id_columns, key, value, key_values, new_columns
    )

    out_vectors: List[List[CellValue]] = [
        [vector[row] for row in first_rows]
        for vector in (table.column_values(name) for name in id_columns)
    ]
    out_vectors.extend(value_vectors)

    out_columns = id_columns + new_columns
    return Table.from_vectors(
        out_columns, out_vectors,
        group_cols=surviving_group_cols(table, id_columns),
    )


def separate(
    table: Table,
    column: str,
    into: Sequence[str],
    separator: Optional[str] = None,
) -> Table:
    """Split one (string) column into two columns.

    By default the split happens at the first run of non-alphanumeric
    characters, mirroring tidyr's default separator.
    """
    _check_columns_exist(table, [column], "separate")
    into = list(into)
    if len(into) != 2:
        raise InvalidArgumentError("separate: exactly two target column names are supported")
    if len(set(into)) != len(into):
        raise InvalidArgumentError("separate: target column names must be distinct")
    for name in into:
        if name != column and table.has_column(name):
            raise EvaluationError(f"separate: column {name!r} already exists")

    left_values: List[CellValue] = []
    right_values: List[CellValue] = []
    for cell in table.column_values(column):
        if cell is None:
            left_values.append(None)
            right_values.append(None)
            continue
        text = format_value(cell)
        if separator is not None:
            parts = text.split(separator, 1)
        else:
            parts = _SEPARATE_PATTERN.split(text, maxsplit=1)
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise EvaluationError(f"separate: value {text!r} cannot be split into two pieces")
        left_values.append(parts[0])
        right_values.append(parts[1])

    out_columns: List[str] = []
    out_vectors: List[Sequence[CellValue]] = []
    for name in table.columns:
        if name == column:
            out_columns.extend(into)
            out_vectors.append(left_values)
            out_vectors.append(right_values)
        else:
            out_columns.append(name)
            out_vectors.append(table.column_values(name))

    return Table.from_vectors(
        out_columns, out_vectors,
        group_cols=surviving_group_cols(table, [c for c in table.columns if c != column]),
    )


def unite(
    table: Table,
    new_column: str,
    columns: Sequence[str],
    separator: str = DEFAULT_SEPARATOR,
) -> Table:
    """Paste several columns into one, separated by ``separator``."""
    columns = list(columns)
    if len(columns) < 2:
        raise InvalidArgumentError("unite: need at least two columns to unite")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("unite: columns to unite must be distinct")
    _check_columns_exist(table, columns, "unite")
    if table.has_column(new_column) and new_column not in columns:
        raise EvaluationError(f"unite: column {new_column!r} already exists")

    united_vectors = [table.column_values(name) for name in columns]
    united_values = [
        separator.join(format_value(vector[row_index]) for vector in united_vectors)
        for row_index in range(table.n_rows)
    ]

    first_position = min(table.column_index(name) for name in columns)
    out_columns: List[str] = []
    out_vectors: List[Sequence[CellValue]] = []
    inserted = False
    for position, name in enumerate(table.columns):
        if name in columns:
            if position == first_position and not inserted:
                out_columns.append(new_column)
                out_vectors.append(united_values)
                inserted = True
            continue
        out_columns.append(name)
        out_vectors.append(table.column_values(name))
    if not inserted:
        out_columns.insert(0, new_column)
        out_vectors.insert(0, united_values)

    return Table.from_vectors(
        out_columns, out_vectors,
        group_cols=surviving_group_cols(table, [c for c in table.columns if c not in columns]),
    )
