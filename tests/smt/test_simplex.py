"""Tests for the rational simplex feasibility solver."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.smt.simplex import LinearConstraint, solve_rational


def le(coeffs, rhs):
    return LinearConstraint(tuple((n, Fraction(c)) for n, c in coeffs), "<=", Fraction(rhs))


def eq(coeffs, rhs):
    return LinearConstraint(tuple((n, Fraction(c)) for n, c in coeffs), "==", Fraction(rhs))


def check(constraints, assignment):
    for constraint in constraints:
        value = sum(coeff * assignment[name] for name, coeff in constraint.coeffs)
        if constraint.rel == "<=":
            assert value <= constraint.rhs
        else:
            assert value == constraint.rhs


class TestFeasibleSystems:
    def test_empty_system(self):
        assert solve_rational([]) == {}

    def test_single_bound(self):
        constraints = [le([("x", 1)], 5)]
        solution = solve_rational(constraints)
        check(constraints, solution)

    def test_two_variable_system(self):
        constraints = [le([("x", 1), ("y", 1)], 10), le([("x", -1)], -3), le([("y", -1)], -4)]
        solution = solve_rational(constraints)
        check(constraints, solution)

    def test_equalities(self):
        constraints = [eq([("x", 1), ("y", 1)], 7), eq([("x", 1), ("y", -1)], 1)]
        solution = solve_rational(constraints)
        assert solution["x"] == 4
        assert solution["y"] == 3

    def test_negative_rhs(self):
        constraints = [le([("x", 1)], -5)]
        solution = solve_rational(constraints)
        assert solution["x"] <= -5

    def test_free_variables_can_be_negative(self):
        constraints = [eq([("x", 1)], -3)]
        assert solve_rational(constraints)["x"] == -3

    def test_fractional_solution(self):
        constraints = [eq([("x", 2)], 1)]
        assert solve_rational(constraints)["x"] == Fraction(1, 2)

    def test_ground_consistent(self):
        assert solve_rational([le([], 0)]) == {}


class TestInfeasibleSystems:
    def test_contradictory_bounds(self):
        assert solve_rational([le([("x", 1)], 1), le([("x", -1)], -2)]) is None

    def test_contradictory_equalities(self):
        assert solve_rational([eq([("x", 1)], 1), eq([("x", 1)], 2)]) is None

    def test_ground_contradiction(self):
        assert solve_rational([eq([], 1)]) is None

    def test_three_way_conflict(self):
        constraints = [
            le([("x", 1), ("y", -1)], -1),   # x <= y - 1
            le([("y", 1), ("z", -1)], -1),   # y <= z - 1
            le([("z", 1), ("x", -1)], -1),   # z <= x - 1 (cycle -> infeasible)
        ]
        assert solve_rational(constraints) is None


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-20, 20)),
            min_size=1,
            max_size=8,
        )
    )
    def test_solutions_satisfy_constraints(self, raw):
        constraints = [le([("x", a), ("y", b)], c) for a, b, c in raw if (a, b) != (0, 0)]
        if not constraints:
            return
        solution = solve_rational(constraints)
        if solution is not None:
            full = {"x": solution.get("x", Fraction(0)), "y": solution.get("y", Fraction(0))}
            for constraint in constraints:
                value = sum(coeff * full[name] for name, coeff in constraint.coeffs)
                assert value <= constraint.rhs

    @given(st.integers(-30, 30), st.integers(1, 10))
    def test_point_systems_are_feasible(self, value, scale):
        constraints = [eq([("x", scale)], scale * value)]
        solution = solve_rational(constraints)
        assert solution is not None
        assert solution["x"] == value
