"""Rational feasibility via the two-phase simplex method.

This is the arithmetic core of the LIA theory solver: given a conjunction of
linear equalities and non-strict inequalities over rational-valued variables,
decide feasibility and produce a witness.  The implementation is a textbook
phase-1 simplex over exact :class:`fractions.Fraction` arithmetic with Bland's
anti-cycling rule, which is more than fast enough for the small residual
systems the deduction engine produces (a handful of variables after constant
and equality propagation).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LinearConstraint:
    """``sum(coeffs[i] * vars[i]) <rel> rhs`` with ``rel`` one of ``"<="``, ``"=="``."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    rel: str
    rhs: Fraction

    def __post_init__(self):
        if self.rel not in ("<=", "=="):
            raise ValueError(f"unsupported relation {self.rel!r}")


def _build_standard_form(
    constraints: Sequence[LinearConstraint], variables: Sequence[str]
) -> Tuple[List[List[Fraction]], List[Fraction], int, int]:
    """Convert constraints to ``A x = b`` with ``b >= 0`` and slack columns.

    Free variables are split into a positive and a negative part.  Returns the
    matrix, the right-hand side, the number of structural columns (before the
    artificial block) and the number of rows.
    """
    var_index = {name: index for index, name in enumerate(variables)}
    n_free_cols = 2 * len(variables)
    n_slack = sum(1 for constraint in constraints if constraint.rel == "<=")

    n_rows = len(constraints)
    n_struct_cols = n_free_cols + n_slack
    matrix: List[List[Fraction]] = []
    rhs: List[Fraction] = []

    slack_cursor = 0
    for constraint in constraints:
        row = [Fraction(0)] * n_struct_cols
        for name, coeff in constraint.coeffs:
            column = var_index[name]
            row[2 * column] += coeff
            row[2 * column + 1] -= coeff
        b = constraint.rhs
        if constraint.rel == "<=":
            row[n_free_cols + slack_cursor] = Fraction(1)
            slack_cursor += 1
        if b < 0:
            row = [-value for value in row]
            b = -b
        matrix.append(row)
        rhs.append(b)
    return matrix, rhs, n_struct_cols, n_rows


def solve_rational(
    constraints: Sequence[LinearConstraint],
) -> Optional[Dict[str, Fraction]]:
    """Return a rational assignment satisfying *constraints*, or ``None``.

    All variables are unrestricted in sign.
    """
    variables = sorted({name for constraint in constraints for name, _ in constraint.coeffs})
    if not constraints:
        return {}
    if not variables:
        # Ground system: every constraint must hold with an empty assignment.
        for constraint in constraints:
            if constraint.rel == "<=" and not Fraction(0) <= constraint.rhs:
                return None
            if constraint.rel == "==" and constraint.rhs != 0:
                return None
        return {}

    matrix, rhs, n_struct_cols, n_rows = _build_standard_form(constraints, variables)

    # Phase 1: add one artificial variable per row and minimise their sum.
    n_cols = n_struct_cols + n_rows
    tableau = [row + [Fraction(0)] * n_rows for row in matrix]
    for row_index in range(n_rows):
        tableau[row_index][n_struct_cols + row_index] = Fraction(1)
    basis = [n_struct_cols + row_index for row_index in range(n_rows)]

    # Objective row: minimise sum of artificials == maximise -(sum of artificials).
    # Reduced costs start as the negated sum of the constraint rows on the
    # structural columns (standard phase-1 initialisation).
    objective = [Fraction(0)] * n_cols
    objective_value = Fraction(0)
    for row_index in range(n_rows):
        for column in range(n_struct_cols):
            objective[column] -= tableau[row_index][column]
        objective_value -= rhs[row_index]

    def pivot(pivot_row: int, pivot_col: int) -> None:
        nonlocal objective_value
        pivot_value = tableau[pivot_row][pivot_col]
        tableau[pivot_row] = [value / pivot_value for value in tableau[pivot_row]]
        rhs[pivot_row] /= pivot_value
        for row_index in range(n_rows):
            if row_index == pivot_row:
                continue
            factor = tableau[row_index][pivot_col]
            if factor == 0:
                continue
            tableau[row_index] = [
                value - factor * pivot_cell
                for value, pivot_cell in zip(tableau[row_index], tableau[pivot_row])
            ]
            rhs[row_index] -= factor * rhs[pivot_row]
        factor = objective[pivot_col]
        if factor != 0:
            for column in range(n_cols):
                objective[column] -= factor * tableau[pivot_row][column]
            objective_value -= factor * rhs[pivot_row]
        basis[pivot_row] = pivot_col

    max_iterations = 200 * (n_rows + n_cols)
    for _ in range(max_iterations):
        # Bland's rule: entering column is the smallest index with a negative
        # reduced cost.
        entering = None
        for column in range(n_cols):
            if objective[column] < 0:
                entering = column
                break
        if entering is None:
            break
        # Leaving row: minimum ratio, ties broken by smallest basis index.
        leaving = None
        best_ratio = None
        for row_index in range(n_rows):
            coeff = tableau[row_index][entering]
            if coeff > 0:
                ratio = rhs[row_index] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[row_index] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = row_index
        if leaving is None:
            # Unbounded phase-1 objective cannot happen (it is bounded below by 0),
            # but guard against it anyway.
            return None
        pivot(leaving, entering)
    else:  # pragma: no cover - defensive: iteration limit reached
        return None

    if objective_value < 0:
        # The artificials could not be driven to zero: infeasible.
        return None

    # Read the solution off the basis.
    solution_columns = [Fraction(0)] * n_cols
    for row_index, column in enumerate(basis):
        solution_columns[column] = rhs[row_index]

    assignment: Dict[str, Fraction] = {}
    for index, name in enumerate(variables):
        assignment[name] = solution_columns[2 * index] - solution_columns[2 * index + 1]
    return assignment
