"""The explicit search frontier and the anytime search kernel.

Algorithm 1 of the paper interleaves hypothesis ranking, sketch completion
and checking in one recursive loop; the original ``Morpheus.synthesize``
reproduced that shape, so the enumeration state was implicit in the Python
call stack -- it could not be paused, resumed, interleaved fairly across
tasks, or deduplicated across sketches.  This module makes that state
explicit:

* :class:`Frontier` -- the priority frontier of pending search states.  It
  has two lanes: a cost-ordered heap of **hypothesis** states (the worklist
  of Algorithm 1) and a LIFO lane of **continuation** states (the sketches,
  completion runs and refinement fan-out of the hypothesis currently being
  expanded).  Continuations always pop before the next hypothesis, and the
  LIFO discipline walks them depth-first, so the frontier pops in *exactly*
  the order the recursion explored -- which is what keeps the first
  synthesized program byte-identical to the recursive implementation.
* :class:`SearchKernel` -- the anytime search engine: ``step()`` processes
  one frontier state (at most one deduction query or one candidate hole
  filling), ``run(deadline)`` steps until a deadline, a solution quota, or
  exhaustion.  Kernels are cheap to hold suspended: a service can run many
  of them round-robin (see :class:`repro.engine.parallel.KernelInterleaver`)
  and a suspended kernel serialises its resume state with
  :meth:`SearchKernel.snapshot`.

Resume-state contract
---------------------

``snapshot()`` captures the search *position* at hypothesis granularity: the
pending hypothesis lane (as component-name trees), the duplicate-detection
signatures, the tie-break and node-id counters, and the hypothesis whose
expansion was in flight.  Continuation states (in-progress sketch
completions) are deliberately **not** captured -- they hold live argument
iterators -- so ``restore()`` re-expands the in-flight hypothesis from
scratch.  Resuming therefore repeats at most one hypothesis expansion;
everything before and after is identical, and the restored kernel finds the
same first program the uninterrupted kernel would have found (memo caches
start cold, so only timing and cache counters differ).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from ..components.errors import PRUNABLE_ERRORS
from ..dataframe.compare import tables_match_for_synthesis
from ..dataframe.profiling import execution_stats
from ..engine.kb import current_kb
from ..smt.solver import formula_cache_stats
from .completion import (
    CompletionBudgetExceeded,
    CompletionRun,
    CompletionTimeout,
    SketchCompleter,
)
from .cost import CostModel
from .deduction import DeductionEngine
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    component_sequence,
    evaluate,
    hypothesis_size,
    initial_hypothesis,
    is_complete,
    render_program,
    sketches,
    table_holes,
    refine,
)
from .oe import OEStore
from .types import Type

#: Snapshot format version (bump on incompatible changes).
SNAPSHOT_VERSION = 1

#: Keys every version-1 snapshot must carry (``restore`` validates the set
#: up front so stale or hand-edited payloads fail with a typed error).
SNAPSHOT_REQUIRED_KEYS = ("version", "k", "tiebreak", "node_counter", "visited", "pending")


class SnapshotError(ValueError):
    """A resume-state payload could not be interpreted."""


class SnapshotVersionError(SnapshotError):
    """The snapshot's schema version (or shape) does not match this kernel.

    Raised by :meth:`SearchKernel.restore` on a missing/mismatched ``version``
    field or a payload missing required keys -- the typed alternative to the
    raw ``KeyError`` a stale or corrupt snapshot used to produce.
    """


# ----------------------------------------------------------------------
# Search states
# ----------------------------------------------------------------------
@dataclass
class HypothesisState:
    """A pending hypothesis in the cost-ordered lane."""

    hypothesis: Hypothesis
    tiebreak: int


@dataclass
class SketchState:
    """A sketch awaiting its deduction check and completion."""

    sketch: Hypothesis


@dataclass
class CompletionState:
    """An in-progress iterative completion of one sketch."""

    run: CompletionRun


@dataclass
class RefineState:
    """The refinement fan-out of one expanded hypothesis (runs last)."""

    hypothesis: Hypothesis


class Frontier:
    """The explicit frontier of pending search states.

    Two lanes: a cost-ordered heap of :class:`HypothesisState` (ordered by
    the cost model's priority, ties broken by insertion order, exactly like
    the worklist of Algorithm 1) and a LIFO continuation lane holding the
    sketch / completion / refinement states of the hypothesis currently
    being expanded.  ``pop()`` drains the continuation lane first, so one
    hypothesis is fully expanded before the next is ranked -- the recursion
    order, made explicit.
    """

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._heap: List[Tuple[Tuple[float, int], int, Hypothesis]] = []
        self._continuations: list = []
        #: Peak number of simultaneously pending states (both lanes).
        self.peak = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._continuations)

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._continuations)

    @property
    def pending_hypotheses(self) -> int:
        """Number of hypotheses waiting in the cost-ordered lane."""
        return len(self._heap)

    @property
    def has_continuations(self) -> bool:
        """True while an expansion's sketch/completion/refine states are pending."""
        return bool(self._continuations)

    def _note_size(self) -> None:
        size = len(self)
        if size > self.peak:
            self.peak = size

    # ------------------------------------------------------------------
    def priority(self, hypothesis: Hypothesis) -> Tuple[float, int]:
        """The cost model's priority key for *hypothesis*."""
        return self._cost_model.priority(
            hypothesis_size(hypothesis), component_sequence(hypothesis)
        )

    def push_hypothesis(self, hypothesis: Hypothesis, tiebreak: int) -> None:
        """Enqueue a hypothesis under the cost model's priority."""
        heapq.heappush(self._heap, (self.priority(hypothesis), tiebreak, hypothesis))
        self._note_size()

    def push_continuation(self, state) -> None:
        """Push a sketch/completion/refinement state onto the LIFO lane."""
        self._continuations.append(state)
        self._note_size()

    def pop(self):
        """Pop the next state: continuations first (LIFO), then best hypothesis."""
        if self._continuations:
            return self._continuations.pop()
        _, tiebreak, hypothesis = heapq.heappop(self._heap)
        return HypothesisState(hypothesis, tiebreak)

    # ------------------------------------------------------------------
    def heap_entries(self) -> List[Tuple[int, Hypothesis]]:
        """The pending hypothesis lane as ``(tiebreak, hypothesis)`` pairs.

        Entries come back in canonical ``(priority, tiebreak)`` order -- the
        exact order ``pop()`` would drain them -- not raw heap-array order.
        Canonical order is what makes the snapshot of a frontier a pure
        function of its *contents*: splitting a frontier into work units and
        merging the parts back reproduces the byte-identical pending lane.
        """
        ordered = sorted(self._heap, key=lambda entry: (entry[0], entry[1]))
        return [(tiebreak, hypothesis) for _, tiebreak, hypothesis in ordered]

    def continuation_states(self) -> list:
        """The pending continuation-lane states (in push order, read-only)."""
        return list(self._continuations)

    # ------------------------------------------------------------------
    # Partitioning (distributed search)
    # ------------------------------------------------------------------
    def split(self, parts: int) -> List["Frontier"]:
        """Partition the hypothesis lane into *parts* cost-contiguous frontiers.

        The pending lane is read in canonical ``(priority, tiebreak)`` order
        and dealt into ``parts`` contiguous chunks of near-equal length (the
        first ``len % parts`` chunks take one extra entry), so part 0 holds
        the cheapest hypotheses and the last part the costliest.  The
        receiver is not mutated -- the caller decides when to retire it.

        Determinism contract: ``merge(split(n))`` restores a frontier whose
        canonical pending lane -- and therefore whose snapshot JSON -- is
        byte-identical to the original, for every ``n``.  Splitting is only
        defined at a hypothesis boundary: a frontier with pending
        continuation states (a half-expanded hypothesis) raises
        ``ValueError``, because continuations hold live iterators that cannot
        be partitioned.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        if self._continuations:
            raise ValueError(
                "cannot split a frontier with pending continuation states; "
                "drain the expansion in flight first (run_to_boundary)"
            )
        ordered = sorted(self._heap, key=lambda entry: (entry[0], entry[1]))
        chunk, extra = divmod(len(ordered), parts)
        result: List[Frontier] = []
        index = 0
        for part_index in range(parts):
            take = chunk + (1 if part_index < extra else 0)
            part = Frontier(self._cost_model)
            for entry in ordered[index : index + take]:
                heapq.heappush(part._heap, entry)
            part.peak = len(part._heap)
            index += take
            result.append(part)
        return result

    @classmethod
    def merge(cls, parts: List["Frontier"]) -> "Frontier":
        """Recombine frontiers produced by :meth:`split` (or unit residuals).

        The inverse of :meth:`split`: the merged frontier holds the union of
        the parts' hypothesis lanes under the first part's cost model, and
        its canonical order -- global ``(priority, tiebreak)`` -- is
        independent of how entries were distributed across parts, which is
        the merge-order rule the distributed scheduler's determinism rests
        on.  Parts with pending continuation states raise ``ValueError``
        (suspend them to a snapshot first).
        """
        if not parts:
            raise ValueError("merge needs at least one frontier")
        merged = cls(parts[0]._cost_model)
        for part in parts:
            if part._continuations:
                raise ValueError(
                    "cannot merge a frontier with pending continuation states"
                )
            for entry in part._heap:
                heapq.heappush(merged._heap, entry)
        merged.peak = len(merged._heap)
        return merged


# ----------------------------------------------------------------------
# Hypothesis (de)serialisation for the resume state
# ----------------------------------------------------------------------
def encode_hypothesis(hypothesis: Hypothesis) -> dict:
    """A JSON-able description of a worklist hypothesis.

    Worklist hypotheses are pure refinement trees -- their first-order holes
    are unfilled and their table holes unbound -- which is what keeps the
    resume state plain data (component *names*, not component objects).
    """
    if isinstance(hypothesis, Hole):
        return {
            "kind": "hole",
            "id": hypothesis.node_id,
            "type": hypothesis.hole_type.value,
            "binding": hypothesis.binding,
        }
    values = []
    for hole in hypothesis.value_children:
        if hole.value is not None:
            raise ValueError(
                "only worklist hypotheses (unfilled first-order holes) are serialisable"
            )
        values.append(
            {"kind": "hole", "id": hole.node_id, "type": hole.hole_type.value}
        )
    return {
        "kind": "apply",
        "id": hypothesis.node_id,
        "component": hypothesis.component.name,
        "children": [encode_hypothesis(child) for child in hypothesis.table_children],
        "values": values,
    }


def decode_hypothesis(payload: dict, library) -> Hypothesis:
    """Rebuild a hypothesis from :func:`encode_hypothesis` output."""
    if payload["kind"] == "hole":
        return Hole(
            payload["id"], Type(payload["type"]), binding=payload.get("binding")
        )
    component = library.by_name(payload["component"])
    children = tuple(
        decode_hypothesis(child, library) for child in payload["children"]
    )
    values = tuple(
        Hole(value["id"], Type(value["type"])) for value in payload["values"]
    )
    return Apply(payload["id"], component, children, values)


# ----------------------------------------------------------------------
# Provenance ranks
# ----------------------------------------------------------------------
# A hypothesis's *rank* encodes where it sits in the serial generation
# order, independently of which work unit generated it.  The seed
# hypothesis carries ``(0, tiebreak)``; the refinement produced at fan-out
# position ``j`` of a parent ``P`` carries ``(1, priority(P), rank(P), j)``.
# Because priorities strictly increase along refinement and the leading
# 0/1 discriminator keeps tuple comparisons homogeneous, rank order is
# exactly the order the serial kernel first generates hypotheses -- which
# makes ``(priority, rank, found_index)`` a total provenance key on
# candidate programs that every partition of the search agrees on.  That
# key is what the distributed scheduler's deterministic merge sorts by.


def rank_to_json(rank: tuple) -> list:
    """Encode a (nested) rank tuple as JSON-able nested lists."""
    return [rank_to_json(item) if isinstance(item, tuple) else item for item in rank]


def rank_from_json(payload: list) -> tuple:
    """Rebuild a rank tuple from :func:`rank_to_json` output."""
    return tuple(
        rank_from_json(item) if isinstance(item, list) else item for item in payload
    )


# ----------------------------------------------------------------------
# The search kernel
# ----------------------------------------------------------------------
class SearchKernel:
    """Anytime, resumable search engine for one synthesis problem.

    The kernel owns the deduction engine, the sketch completer, the
    observational-equivalence store and the frontier; ``step()`` advances
    the search by one state, ``run()`` drives it to a deadline, a solution
    quota (``k``) or exhaustion.  Found programs accumulate in
    :attr:`solutions` in discovery order (the first entry is byte-identical
    to what the recursive Algorithm 1 returned).
    """

    def __init__(
        self,
        example,
        config,
        library,
        cost_model: CostModel,
        stats,
        k: int = 1,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.example = example
        self.config = config
        self.library = library
        self.stats = stats
        self.k = k
        # Warm-start tier: bind the active knowledge base (if any) to this
        # library's version hash, so facts persisted under a different
        # component set are never found (invalidation by keying).
        kb = current_kb()
        kb_view = kb.view(library.version_hash()) if kb is not None else None
        self.engine = DeductionEngine(
            inputs=example.inputs,
            output=example.output,
            level=config.spec_level,
            use_partial_evaluation=config.partial_evaluation,
            enabled=config.deduction,
            cdcl=config.cdcl and config.deduction,
            prescreen=config.prescreen and config.deduction,
            kb_view=kb_view,
            stats=stats.deduction,
        )
        self.oe_store = OEStore() if config.oe else None
        self.completer = SketchCompleter(
            self.engine,
            deadline=None,
            budget=config.completion_budget,
            stats=stats.completion,
            oe_store=self.oe_store,
        )
        self.frontier = Frontier(cost_model)
        self.solutions: List[Hypothesis] = []
        #: Provenance key of each entry in :attr:`solutions`:
        #: ``(priority(H), rank(H), found_index)`` for the expanded
        #: hypothesis ``H`` whose completion surfaced the program.  Keys are
        #: partition-independent, so the distributed merge can order
        #: candidates from different work units exactly as the serial run
        #: discovers them.
        self.solution_keys: List[tuple] = []
        #: Rendered programs a pre-restore kernel already found: re-finding
        #: one (the re-expanded in-flight hypothesis repeats its completion
        #: work) must not consume the remaining solution quota again.
        self._already_found: set = set()
        self._deadline: Optional[float] = None
        self._visited: set = set()
        #: Plain int counters (not itertools.count) so ``snapshot()`` can
        #: read them without consuming values from the live kernel.
        self._tiebreak = 0
        self._node_counter = 1
        self._in_flight: Optional[Tuple[Hypothesis, int]] = None
        #: Provenance rank per hypothesis signature (see the module-level
        #: rank helpers).  Keyed by signature rather than object identity so
        #: ranks survive the snapshot round-trip with the visited set.
        self._ranks: dict = {}
        #: The (priority, rank) of the hypothesis being expanded, plus the
        #: number of check-passing candidates its completion has surfaced --
        #: together they mint the provenance keys in :attr:`solution_keys`.
        self._expansion_key: tuple = ((0.0, 0), (0, 0))
        self._expansion_found = 0
        #: Active time spent inside ``run()``/``step()`` (the per-task clock
        #: when many kernels share one process).
        self.active_seconds = 0.0
        #: Frontier states processed so far (one per ``step()`` call).  Not
        #: part of the resume state -- like timing, it describes work done by
        #: *this* kernel object, so a restored kernel counts from zero and
        #: long-lived callers accumulate across kernels themselves.
        self.steps_taken = 0
        self._push(initial_hypothesis())
        # Baselines for slicing the process-wide counters: taken *after* the
        # engine construction above, so the example-table fingerprinting the
        # constructor performs -- whose hit/miss split depends on whether the
        # (process-cached) example tables were fingerprinted by an earlier
        # run -- stays outside this run's counting window.  That exclusion
        # is what keeps the per-run execution counters byte-identical across
        # schedulers and repeat runs.
        self.solver_cache_baseline = formula_cache_stats().snapshot()
        self.execution_baseline = execution_stats().snapshot()

    # ------------------------------------------------------------------
    @property
    def solved(self) -> bool:
        """True once at least one program passed CHECK."""
        return bool(self.solutions)

    @property
    def done(self) -> bool:
        """True when the solution quota is met or the frontier is exhausted."""
        return len(self.solutions) >= self.k or not self.frontier

    @property
    def exhausted(self) -> bool:
        """True when no pending search state remains."""
        return not self.frontier

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Set the wall-clock deadline consulted by ``run``/``step``."""
        self._deadline = deadline
        self.completer.deadline = deadline

    def _expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    # ------------------------------------------------------------------
    def run(
        self,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> bool:
        """Step until the deadline, the step budget, the quota, or exhaustion.

        Returns ``True`` while pending work remains (call again to continue
        -- the anytime contract), ``False`` when the search is finished.
        The *deadline* parameter always (re)sets the kernel's deadline;
        passing ``None`` clears any deadline a previous call installed, so a
        bare ``run()`` after a deadline-bounded one drains the search rather
        than spinning on the stale deadline.
        """
        self.set_deadline(deadline)
        started = perf_counter()
        steps = 0
        try:
            while self.frontier and len(self.solutions) < self.k:
                if self._expired():
                    break
                if max_steps is not None and steps >= max_steps:
                    break
                try:
                    self.step()
                except CompletionTimeout:
                    break
                steps += 1
        finally:
            self.active_seconds += perf_counter() - started
        return bool(self.frontier) and len(self.solutions) < self.k

    def step(self) -> None:
        """Process one frontier state (the bounded anytime work unit)."""
        if not self.frontier:
            return
        self.steps_taken += 1
        state = self.frontier.pop()
        if isinstance(state, HypothesisState):
            self._expand_hypothesis(state)
        elif isinstance(state, SketchState):
            self._expand_sketch(state)
        elif isinstance(state, CompletionState):
            self._advance_completion(state)
        else:
            try:
                self._refine(state.hypothesis)
            except CompletionTimeout:
                # Deadline mid-fan-out: re-push so a resumed run finishes
                # the remaining refinements (already-pushed ones dedup via
                # the visited set, so re-running the state is idempotent).
                self.frontier.push_continuation(state)
                raise
            self._in_flight = None

    # ------------------------------------------------------------------
    def _push(
        self,
        hypothesis: Hypothesis,
        tiebreak: Optional[int] = None,
        rank: Optional[tuple] = None,
    ) -> None:
        signature = hypothesis_signature(hypothesis)
        if signature in self._visited:
            return
        self._visited.add(signature)
        if tiebreak is None:
            tiebreak = self._tiebreak
            self._tiebreak += 1
        self._ranks[signature] = rank if rank is not None else (0, tiebreak)
        self.frontier.push_hypothesis(hypothesis, tiebreak)
        self.stats.hypotheses_enqueued += 1

    def _next_node_id(self) -> int:
        node_id = self._node_counter
        self._node_counter += 1
        return node_id

    def _expand_hypothesis(self, state: HypothesisState) -> None:
        """Lines 9-18 of Algorithm 1, decomposed into continuation states."""
        hypothesis = state.hypothesis
        self._in_flight = (hypothesis, state.tiebreak)
        self._expansion_key = (
            self.frontier.priority(hypothesis),
            self._ranks.get(hypothesis_signature(hypothesis), (0, state.tiebreak)),
        )
        self._expansion_found = 0
        self.stats.hypotheses_expanded += 1
        feasible = self.engine.deduce(hypothesis)
        # The refinement fan-out runs after completion (it is pushed first,
        # popped last), exactly as in the recursive loop.
        self.frontier.push_continuation(RefineState(hypothesis))
        if not feasible or isinstance(hypothesis, Hole):
            # The bare hypothesis ?0 can only be "the identity program",
            # which is never the answer to a non-trivial task; skip it.
            return
        for sketch in reversed(list(sketches(hypothesis, len(self.example.inputs)))):
            self.frontier.push_continuation(SketchState(sketch))

    def _expand_sketch(self, state: SketchState) -> None:
        """Line 11-12: the sketch-level deduction check."""
        self.stats.sketches_generated += 1
        if not self.engine.deduce(state.sketch):
            self.stats.sketches_rejected += 1
            return
        self.frontier.push_continuation(
            CompletionState(self.completer.start(state.sketch))
        )

    def _advance_completion(self, state: CompletionState) -> None:
        """Advance one completion run by one frame; CHECK surfaced programs."""
        try:
            candidate = state.run.step()
        except CompletionBudgetExceeded:
            # This sketch used up its budget; withdraw its OE admissions
            # (their subtrees may be unexplored, so a later equal state must
            # be allowed to run) and move on to the next state.
            state.run.release()
            return
        except CompletionTimeout:
            # The deadline fired before the step did any work (the run
            # restored its in-flight frame); re-push so a later run() with
            # a fresh deadline resumes this completion exactly here.
            self.frontier.push_continuation(state)
            raise
        if candidate is not None:
            self.stats.programs_checked += 1
            if self._check(candidate):
                # Mint the provenance key before the re-find filter: a
                # discarded re-find still advances the found index, so key
                # numbering matches the uninterrupted serial run.
                key = (*self._expansion_key, self._expansion_found)
                self._expansion_found += 1
                if self._already_found:
                    text = render_program(candidate)
                    if text in self._already_found:
                        # A re-find of a pre-restore solution; the caller
                        # already holds it.  Discard (each program surfaces
                        # once per search) and keep looking.
                        self._already_found.discard(text)
                        if not state.run.exhausted:
                            self.frontier.push_continuation(state)
                        return
                self.solutions.append(candidate)
                self.solution_keys.append(key)
                if len(self.solutions) >= self.k:
                    return
        if not state.run.exhausted:
            self.frontier.push_continuation(state)

    def _refine(self, hypothesis: Hypothesis) -> None:
        """Lines 15-18 of Algorithm 1: replace one table hole per component.

        The deadline is re-checked inside the fan-out so a refinement step
        over a large library cannot overshoot the budget; expiry raises
        (rather than silently truncating the fan-out) so a resumed kernel
        re-runs this state and enqueues the refinements it missed.
        """
        if hypothesis_size(hypothesis) >= self.config.max_size:
            return
        parent_priority = self.frontier.priority(hypothesis)
        parent_rank = self._ranks.get(
            hypothesis_signature(hypothesis), (0, 0)
        )
        # The fan-out index is positional over the (hole x component) grid,
        # advancing even when the refinement dedups or the deadline re-runs
        # this state, so a child's rank never depends on how the fan-out was
        # interrupted.
        fanout = 0
        for hole in table_holes(hypothesis, unbound_only=True):
            for component in self.library:
                if self._expired():
                    raise CompletionTimeout()
                refined = refine(hypothesis, hole, component, self._next_node_id)
                self._push(
                    refined, rank=(1, parent_priority, parent_rank, fanout)
                )
                fanout += 1

    def _check(self, candidate: Hypothesis) -> bool:
        """CHECK(p, E): run the program and compare against the expected output.

        Evaluation goes through the engine's evaluation memo and
        fingerprint-keyed execution cache, so the sub-programs the completer
        already executed are never re-run here.
        """
        if not is_complete(candidate):
            return False
        try:
            actual = evaluate(
                candidate, self.example.inputs,
                memo=self.engine.evaluation_memo,
                exec_cache=self.engine.execution_cache,
            )
        except (EvaluationFailure, *PRUNABLE_ERRORS):
            return False
        started = perf_counter()
        matched = tables_match_for_synthesis(actual, self.example.output)
        execution_stats().compare_time += perf_counter() - started
        return matched

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The kernel's serialisable resume state (see the module docstring).

        Read-only: the live kernel can keep running afterwards.  Found
        solutions are *not* captured as programs (complete programs carry
        concrete argument objects) -- the caller keeps them.  The snapshot
        stores the *remaining* solution quota plus the found programs'
        rendered text, so a restored kernel searches for exactly the missing
        count and does not let a re-found pre-snapshot program consume it.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "k": max(0, self.k - len(self.solutions)),
            # Solutions found by this kernel, plus any pre-restore programs
            # it has not re-found yet: a restored-then-suspended kernel must
            # keep filtering them or a second resume would double-count.
            "found": [render_program(program) for program in self.solutions]
            + sorted(self._already_found),
            "tiebreak": self._tiebreak,
            "node_counter": self._node_counter,
            "visited": sorted(self._visited),
            "pending": self._encode_pending(self.frontier),
            "in_flight": (
                self._encode_entry(self._in_flight[0], self._in_flight[1])
                if self._in_flight is not None and self.frontier.has_continuations
                else None
            ),
            # Advisory (ignored by restore): the least (priority, rank) any
            # candidate from this resume state can carry, for the distributed
            # scheduler's unit selection and confirmation rule.
            "lower_bound": (
                rank_to_json(self.lower_bound())
                if self.lower_bound() is not None
                else None
            ),
        }

    def _encode_entry(self, hypothesis: Hypothesis, tiebreak: int) -> dict:
        """One pending-lane snapshot entry, with its provenance rank."""
        entry = {"tiebreak": tiebreak, "hypothesis": encode_hypothesis(hypothesis)}
        rank = self._ranks.get(hypothesis_signature(hypothesis))
        if rank is not None:
            entry["rank"] = rank_to_json(rank)
        return entry

    def _encode_pending(self, frontier: Frontier) -> List[dict]:
        """Encode *frontier*'s hypothesis lane (canonical order) for a snapshot."""
        return [
            self._encode_entry(hypothesis, tiebreak)
            for tiebreak, hypothesis in frontier.heap_entries()
        ]

    def export_kb_facts(self) -> None:
        """Flush this search's task-scoped facts to the knowledge base.

        A no-op without an attached KB view.  Called by the facade when a
        search finalizes; safe to call more than once (exports merge).
        """
        self.engine.export_kb_facts(oe_store=self.oe_store)

    def suspend(self) -> dict:
        """Snapshot the kernel and withdraw its in-flight OE admissions.

        The variant of :meth:`snapshot` for a caller that is about to stop
        stepping *this* kernel object and hand its live
        :class:`~repro.core.oe.OEStore` to a successor (see the ``oe_store``
        parameter of :meth:`restore`).  Continuation states are not captured
        by the snapshot, so the completion runs still pending on the
        continuation lane may have admitted OE representatives whose subtrees
        are not fully explored; carrying those keys over would wrongly
        suppress the successor's re-exploration of the re-expanded in-flight
        hypothesis.  ``suspend()`` releases exactly those admissions (fully
        explored representatives stay, which is what spares the successor
        from re-enumerating already-merged states).  The kernel must not be
        stepped afterwards.
        """
        payload = self.snapshot()
        for state in self.frontier.continuation_states():
            if isinstance(state, CompletionState):
                state.run.release()
        return payload

    @classmethod
    def restore(
        cls,
        payload: dict,
        example,
        config,
        library,
        cost_model: CostModel,
        stats,
        oe_store: Optional[OEStore] = None,
    ) -> "SearchKernel":
        """Rebuild a kernel from :meth:`snapshot` output.

        The restored kernel continues from the captured position: the
        in-flight hypothesis (if any) is re-expanded from scratch, then the
        pending lane drains in its original order.

        *oe_store* carries a live observational-equivalence store across an
        in-process resume (the store's keys are not JSON-able, so it rides
        outside the payload).  Pass the store of a kernel suspended with
        :meth:`suspend` -- never one still being stepped -- so the restored
        kernel skips the duplicate completion states its predecessor already
        explored instead of starting the dedup from scratch.

        Raises :class:`SnapshotVersionError` when the payload's schema
        version is missing or unsupported, or when required keys are absent
        (a stale or corrupt snapshot); malformed hypothesis encodings raise
        :class:`SnapshotError`.
        """
        if not isinstance(payload, dict):
            raise SnapshotError(
                f"snapshot payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotVersionError(
                f"unsupported snapshot version {version!r} "
                f"(this kernel reads version {SNAPSHOT_VERSION})"
            )
        missing = [key for key in SNAPSHOT_REQUIRED_KEYS if key not in payload]
        if missing:
            raise SnapshotVersionError(
                f"snapshot is missing required keys {missing} (stale or corrupt payload)"
            )
        remaining = payload.get("k", 1)
        kernel = cls(example, config, library, cost_model, stats, k=max(1, remaining))
        # A snapshot taken after the quota was met stores a remaining quota
        # of 0: the restored kernel is immediately done rather than hunting
        # for an extra, unrequested program.
        kernel.k = remaining
        # Drop the fresh initial state; the snapshot holds the real frontier.
        kernel.frontier = Frontier(cost_model)
        kernel._visited = set(payload["visited"])
        kernel._tiebreak = payload["tiebreak"]
        kernel._node_counter = payload["node_counter"]
        kernel._already_found = set(payload.get("found", ()))
        kernel._in_flight = None
        if oe_store is not None and kernel.oe_store is not None:
            kernel.oe_store = oe_store
            kernel.completer.oe_store = oe_store
        try:
            for entry in payload["pending"]:
                kernel._restore_entry(entry, library)
            in_flight = payload.get("in_flight")
            if in_flight is not None:
                # Re-expansion pops it first: it carried the smallest priority
                # when it was popped, and its refinements are not yet enqueued.
                kernel._restore_entry(in_flight, library)
        except (KeyError, TypeError) as error:
            raise SnapshotError(
                f"snapshot pending lane is malformed: {error!r}"
            ) from error
        return kernel

    def _restore_entry(self, entry: dict, library) -> None:
        """Re-enqueue one snapshot pending-lane entry (hypothesis + rank)."""
        hypothesis = decode_hypothesis(entry["hypothesis"], library)
        tiebreak = entry["tiebreak"]
        self.frontier.push_hypothesis(hypothesis, tiebreak)
        rank = entry.get("rank")
        # Pre-rank snapshots (same schema version, no "rank" field) fall
        # back to the seed form; within one snapshot generation the fallback
        # never mixes with real ranks, so ordering stays consistent.
        self._ranks[hypothesis_signature(hypothesis)] = (
            rank_from_json(rank) if rank is not None else (0, tiebreak)
        )

    # ------------------------------------------------------------------
    # Distributed-search hooks
    # ------------------------------------------------------------------
    def run_to_boundary(self) -> int:
        """Drain the continuation lane to the next hypothesis boundary.

        Steps until the expansion in flight (its sketches, completion runs
        and refinement fan-out) has fully drained, leaving only the
        cost-ordered hypothesis lane pending -- the state
        :meth:`Frontier.split` requires.  Returns the number of steps taken.
        """
        steps = 0
        while self.frontier.has_continuations and len(self.solutions) < self.k:
            self.step()
            steps += 1
        return steps

    def _head_key(self, frontier: Frontier) -> Optional[tuple]:
        """The ``(priority, rank)`` of *frontier*'s canonical head entry."""
        entries = frontier.heap_entries()
        if not entries:
            return None
        tiebreak, hypothesis = entries[0]
        return (
            frontier.priority(hypothesis),
            self._ranks.get(hypothesis_signature(hypothesis), (0, tiebreak)),
        )

    def lower_bound(self) -> Optional[tuple]:
        """The least ``(priority, rank)`` any future candidate here can carry.

        Provenance keys strictly increase from parent to refinement, so the
        key of the next state to pop -- the expansion in flight if one is
        mid-drain, else the head of the canonical pending lane -- bounds
        every program this kernel (or a unit resumed from its snapshot) can
        still surface.  ``None`` means exhausted: no future candidate at
        all.  The distributed scheduler uses this bound to decide which
        units to run next and when the best merged candidate can no longer
        be beaten by a residual unit.
        """
        if self._in_flight is not None and self.frontier.has_continuations:
            hypothesis, tiebreak = self._in_flight
            return (
                self.frontier.priority(hypothesis),
                self._ranks.get(hypothesis_signature(hypothesis), (0, tiebreak)),
            )
        return self._head_key(self.frontier)

    def split_snapshots(self, parts: int) -> List[dict]:
        """Partition the kernel's resume state into *parts* work units.

        Each returned payload is a full, independently restorable
        :meth:`snapshot` whose pending lane holds one cost-contiguous chunk
        of this kernel's frontier (see :meth:`Frontier.split`); counters,
        visited signatures and the found-program filter are shared by every
        unit, so the union of the units explores exactly this kernel's
        remaining search space with cross-unit duplicate suppression.  The
        kernel must be at a hypothesis boundary (``run_to_boundary`` first);
        a pending expansion raises ``ValueError`` via ``Frontier.split``.
        """
        base = self.snapshot()
        payloads = []
        for part in self.frontier.split(parts):
            payload = dict(base)
            payload["pending"] = self._encode_pending(part)
            payload["in_flight"] = None
            head = self._head_key(part)
            payload["lower_bound"] = rank_to_json(head) if head is not None else None
            payloads.append(payload)
        return payloads


def hypothesis_signature(hypothesis: Hypothesis) -> str:
    """A canonical string describing the tree shape (for duplicate detection)."""

    def walk(node: Hypothesis) -> str:
        if isinstance(node, Hole):
            if node.hole_type is Type.TABLE:
                return f"x{node.binding}" if node.binding is not None else "?"
            return "v"
        children = ",".join(walk(child) for child in node.table_children)
        return f"{node.component.name}({children})"

    return walk(hypothesis)
