"""Benchmark infrastructure shared by the R suite and the SQL suite.

A benchmark is an input-output example plus metadata: the category it belongs
to (C1-C9, Figure 16 of the paper), a short description, and a *reference
pipeline* written directly against the executor.  The expected output table
is produced by running the reference pipeline, which guarantees that every
benchmark is solvable by some program in the component language; the
synthesizer of course never sees the pipeline, only the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dataframe.table import Table

#: A reference solution: a function from the input tables to the output table.
ReferencePipeline = Callable[[Sequence[Table]], Table]


@dataclass(frozen=True)
class Benchmark:
    """One input-output synthesis task."""

    name: str
    category: str
    description: str
    inputs: Tuple[Table, ...]
    output: Table
    #: Names of the components the reference solution uses (documentation and
    #: difficulty metadata; the synthesizer may find a different program).
    reference_components: Tuple[str, ...] = ()

    @property
    def size(self) -> int:
        """Number of components in the reference solution."""
        return len(self.reference_components)


@dataclass
class BenchmarkSuite:
    """An ordered collection of benchmarks with category metadata."""

    name: str
    benchmarks: List[Benchmark] = field(default_factory=list)
    category_descriptions: Dict[str, str] = field(default_factory=dict)

    def add(
        self,
        name: str,
        category: str,
        description: str,
        inputs: Sequence[Table],
        pipeline: ReferencePipeline,
        components: Sequence[str],
    ) -> Benchmark:
        """Register a benchmark, computing its expected output from *pipeline*."""
        inputs = tuple(inputs)
        output = pipeline(inputs)
        benchmark = Benchmark(
            name=name,
            category=category,
            description=description,
            inputs=inputs,
            output=output,
            reference_components=tuple(components),
        )
        self.benchmarks.append(benchmark)
        return benchmark

    def by_category(self) -> Dict[str, List[Benchmark]]:
        """Benchmarks grouped by category, in registration order."""
        grouped: Dict[str, List[Benchmark]] = {}
        for benchmark in self.benchmarks:
            grouped.setdefault(benchmark.category, []).append(benchmark)
        return grouped

    def get(self, name: str) -> Benchmark:
        """Look up a benchmark by name."""
        for benchmark in self.benchmarks:
            if benchmark.name == name:
                return benchmark
        raise KeyError(f"unknown benchmark {name!r}")

    def names(self) -> List[str]:
        """All benchmark names, in registration order."""
        return [benchmark.name for benchmark in self.benchmarks]

    def subset(self, names: Optional[Sequence[str]] = None, categories: Optional[Sequence[str]] = None) -> "BenchmarkSuite":
        """A suite restricted to the given benchmark names and/or categories."""
        selected = []
        for benchmark in self.benchmarks:
            if names is not None and benchmark.name not in names:
                continue
            if categories is not None and benchmark.category not in categories:
                continue
            selected.append(benchmark)
        return BenchmarkSuite(self.name, selected, dict(self.category_descriptions))

    def __len__(self) -> int:
        return len(self.benchmarks)

    def __iter__(self):
        return iter(self.benchmarks)
