"""Re-implementation of the dplyr verbs used by Morpheus.

``select``, ``filter``, ``summarise``, ``group_by``, ``mutate``,
``inner_join`` and ``arrange`` manipulate a data frame without changing its
long/wide orientation.  Grouping is carried as metadata on the table (see
:class:`repro.dataframe.Table`), exactly the information Spec 2's ``T.group``
attribute abstracts.

Every verb is a **columnar** transform: inputs are consumed as shared column
vectors and outputs are assembled column-by-column, so verbs that keep a
column intact (``select``, ``group_by``, ``mutate``'s pass-through columns)
share its vector with the input table instead of copying cells.  Grouping
metadata propagates uniformly: a verb's output stays grouped by every
grouping column that survives into the output schema (``summarise`` keeps
its dplyr-specific rule of dropping the last grouping level).

A row-major reference implementation of the same semantics lives in
:mod:`repro.components.reference`; a differential property test keeps the
two in lock-step.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..dataframe.backend import active_backend, join_key
from ..dataframe.cells import CellValue
from ..dataframe.table import Table
from .errors import EvaluationError, InvalidArgumentError, PRUNABLE_ERRORS
from .values import AGGREGATORS

#: A predicate over a single row, given as ``{column: value}``.
RowPredicate = Callable[[Dict[str, CellValue]], bool]

#: A mutate expression: receives the row and the rows of the row's group.
RowExpression = Callable[[Dict[str, CellValue], "GroupContext"], CellValue]


class GroupContext:
    """The rows of the group a ``mutate`` expression is evaluated in.

    dplyr evaluates aggregate calls inside ``mutate`` (e.g. ``sum(n)``) over
    the *group* of the current row, so expressions receive this context.
    """

    def __init__(self, table: Table, row_indices: Sequence[int]):
        self._table = table
        self._row_indices = tuple(row_indices)

    def column_values(self, column: str) -> Tuple[CellValue, ...]:
        """Values of *column* restricted to the rows of this group."""
        vector = self._table.column_values(column)
        return tuple(vector[i] for i in self._row_indices)

    @property
    def size(self) -> int:
        """Number of rows in the group."""
        return len(self._row_indices)


def _check_columns_exist(table: Table, columns: Sequence[str], verb: str) -> None:
    for name in columns:
        if not table.has_column(name):
            raise InvalidArgumentError(f"{verb}: column {name!r} not in table {list(table.columns)}")


def surviving_group_cols(table: Table, out_columns: Sequence[str]) -> Tuple[str, ...]:
    """The grouping columns of *table* that survive into *out_columns*.

    The uniform propagation rule shared by every verb that rebuilds its
    output table: grouping metadata follows the columns that still exist.
    """
    out = set(out_columns)
    return tuple(name for name in table.group_cols if name in out)


def select(table: Table, columns: Sequence[str]) -> Table:
    """Project the table onto *columns* (a strict subset, like the paper's spec)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("select: must keep at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("select: selected columns must be distinct")
    _check_columns_exist(table, columns, "select")
    if len(columns) >= table.n_cols:
        raise EvaluationError("select: selection must drop at least one column")
    return table.select_columns(columns)


def filter_rows(table: Table, predicate: RowPredicate) -> Table:
    """Keep the rows satisfying *predicate*."""
    backend = active_backend()
    kept = backend.filter_indices(table, predicate)
    if len(kept) == table.n_rows:
        # The paper's spec requires a strictly smaller table (footnote 3):
        # a filter that keeps everything is never needed for a minimal program.
        raise EvaluationError("filter: predicate keeps every row")
    return backend.take_rows(table, kept)


def filter_rows_batch(table: Table, predicates: Sequence[RowPredicate]) -> List[object]:
    """Apply several filter predicates to one table, sharing per-table work.

    The batched-sibling-evaluation entry point: predicates filling sibling
    hypotheses of the same hole all scan the same input table, so the
    per-table setup (row views for opaque predicates, cached column arrays
    for structured ones) is paid once.  Returns one entry per predicate --
    the filtered table, or the prunable error that predicate raises under
    :func:`filter_rows` (same type, same message).
    """
    backend = active_backend()
    rows = None
    results: List[object] = []
    for predicate in predicates:
        try:
            if rows is None and not backend.has_fast_predicate(table, predicate):
                rows = backend.row_views(table)
            kept = backend.filter_indices(table, predicate, rows)
            if len(kept) == table.n_rows:
                raise EvaluationError("filter: predicate keeps every row")
            results.append(backend.take_rows(table, kept))
        except PRUNABLE_ERRORS as error:
            results.append(error)
    return results


def group_by(table: Table, columns: Sequence[str]) -> Table:
    """Attach grouping metadata to the table."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("group_by: must group by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("group_by: grouping columns must be distinct")
    _check_columns_exist(table, columns, "group_by")
    return table.with_grouping(columns)


def summarise(
    table: Table,
    new_column: str,
    aggregator: str,
    target_column: str = None,
) -> Table:
    """Collapse each group to a single row holding an aggregate value.

    The output contains the grouping columns (one row per group) followed by
    the new aggregate column.  Like dplyr, the result drops the *last*
    grouping level, so ``summarise(group_by(df, g), ...)`` is ungrouped and a
    later ``mutate`` aggregates over the whole table (this is what makes
    ``mutate(prop = n / sum(n))`` in the paper's Example 2 work).
    """
    if aggregator not in AGGREGATORS:
        raise InvalidArgumentError(f"summarise: unknown aggregator {aggregator!r}")
    if aggregator != "n":
        if target_column is None:
            raise InvalidArgumentError(f"summarise: aggregator {aggregator!r} needs a target column")
        _check_columns_exist(table, [target_column], "summarise")
    group_columns = list(table.group_cols)
    if new_column in group_columns:
        raise EvaluationError(f"summarise: new column {new_column!r} collides with a grouping column")

    keys, aggregates = active_backend().aggregate_groups(table, aggregator, target_column)

    out_columns = group_columns + [new_column]
    out_vectors = [
        [key[position] for key in keys]
        for position in range(len(group_columns))
    ]
    out_vectors.append(aggregates)
    result = Table.from_vectors(out_columns, out_vectors)
    remaining_groups = group_columns[:-1]
    if remaining_groups:
        result = result.with_grouping(remaining_groups)
    return result


def mutate(table: Table, new_column: str, expression: RowExpression) -> Table:
    """Add a new column computed from each row (and its group)."""
    if table.has_column(new_column):
        raise EvaluationError(f"mutate: column {new_column!r} already exists")
    group_of_row: Dict[int, GroupContext] = {}
    for _key, row_indices in table.group_row_indices():
        context = GroupContext(table, row_indices)
        for row_index in row_indices:
            group_of_row[row_index] = context

    values: List[CellValue] = []
    for row_index in range(table.n_rows):
        context = group_of_row.get(row_index, GroupContext(table, range(table.n_rows)))
        values.append(expression(table.row_dict(row_index), context))
    return table.with_column(new_column, values)


def inner_join(left: Table, right: Table) -> Table:
    """Natural inner join on all shared columns (like dplyr's default).

    The output keeps every left column followed by the right table's
    non-shared columns; like dplyr, the left table's grouping survives (all
    of its columns do).
    """
    shared = [name for name in left.columns if right.has_column(name)]
    if not shared:
        raise EvaluationError("inner_join: tables share no columns")
    right_extra = [name for name in right.columns if name not in shared]

    backend = active_backend()
    left_indices, right_indices = backend.join_pairs(left, right, shared)
    if not len(left_indices):
        raise EvaluationError("inner_join: join result is empty")

    out_columns = list(left.columns) + right_extra
    return backend.build_join(
        left,
        right,
        left_indices,
        right_indices,
        right_extra,
        surviving_group_cols(left, out_columns),
    )


#: Backwards-compatible alias (the key moved next to the join kernels).
_join_key = join_key


def arrange(table: Table, columns: Sequence[str], descending: bool = False) -> Table:
    """Sort the table by *columns* (ascending by default, like dplyr)."""
    columns = list(columns)
    if not columns:
        raise InvalidArgumentError("arrange: must sort by at least one column")
    if len(set(columns)) != len(columns):
        raise InvalidArgumentError("arrange: sort columns must be distinct")
    _check_columns_exist(table, columns, "arrange")
    backend = active_backend()
    order = backend.sort_order(table, columns, descending)
    return backend.take_rows(table, order)
