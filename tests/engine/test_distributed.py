"""Distributed frontier search: partition, steal, merge -- deterministically.

The distributed scheduler's contract (DESIGN.md, "Distributed search") is
that worker count moves *only* wall-clock time: the synthesized programs are
byte-identical to the serial run and every deterministic counter is
byte-identical across worker counts and repeat runs.  These tests pin the
contract at three levels: the ``Frontier.split``/``merge`` primitives, the
``merge_stats`` counter algebra, and an end-to-end differential on a real
benchmark task.
"""

import pytest

from repro.api import SynthesisRequest, solve
from repro.benchmarks.r_suite import r_benchmark_suite
from repro.core.frontier import Frontier
from repro.core.synthesizer import Example, Morpheus, SynthesisConfig, SynthesisStats
from repro.engine.context import TaskContext
from repro.engine.distributed import merge_stats

#: Splits after warm-up yet solves quickly: the cheapest task whose serial
#: search (a few thousand steps) outlives the scheduler's warm-up prefix.
TASK = "c3_poll_spread_filter"


def benchmark():
    return r_benchmark_suite().get(TASK)


def boundary_kernel(steps=600):
    """A kernel advanced past warm-up and drained to a hypothesis boundary."""
    task = benchmark()
    example = Example(tuple(task.inputs), task.output)
    context = TaskContext()
    with context.active():
        morpheus = Morpheus(config=SynthesisConfig(timeout=None), _sanctioned=True)
        kernel = morpheus.kernel(example)
        kernel.run(max_steps=steps)
        kernel.run_to_boundary()
    return context, kernel, example


def fingerprint(result):
    """Every deterministic counter of a facade result (wall clock excluded)."""
    return {
        key: value
        for key, value in result.counters.items()
        if key != "active_seconds"
    }


# ----------------------------------------------------------------------
# Frontier.split / Frontier.merge
# ----------------------------------------------------------------------
def test_split_merge_round_trip():
    context, kernel, _example = boundary_kernel()
    with context.active():
        frontier = kernel.frontier
        before = frontier.heap_entries()
        assert len(before) >= 3
        parts = frontier.split(3)
        assert len(parts) == 3
        # Cost-contiguous: concatenating the parts in order reproduces the
        # canonical (priority, tiebreak) order exactly.
        concatenated = [entry for part in parts for entry in part.heap_entries()]
        assert concatenated == before
        # Balanced: sizes differ by at most one, largest first.
        sizes = [len(part.heap_entries()) for part in parts]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)
        merged = Frontier.merge(parts)
        assert merged.heap_entries() == before
        # The receiver was read-only throughout.
        assert frontier.heap_entries() == before


def test_split_rejects_bad_part_counts_and_continuations():
    context, kernel, _example = boundary_kernel()
    with context.active():
        with pytest.raises(ValueError):
            kernel.frontier.split(0)
        with pytest.raises(ValueError):
            Frontier.merge([])
        # A frontier with a live continuation lane is mid-expansion -- not a
        # hypothesis boundary -- and must refuse to split or merge.
        kernel.frontier._continuations.append(object())
        with pytest.raises(ValueError):
            kernel.frontier.split(2)
        with pytest.raises(ValueError):
            Frontier.merge([kernel.frontier])


def test_split_snapshots_are_deterministic():
    context, kernel, _example = boundary_kernel()
    with context.active():
        first = kernel.split_snapshots(4)
        second = kernel.split_snapshots(4)
    assert first == second
    assert [part["in_flight"] for part in first] == [None] * 4
    # Each unit's advisory lower bound is its own cheapest entry's key.
    bounds = [part["lower_bound"] for part in first]
    assert bounds == sorted(bounds)


# ----------------------------------------------------------------------
# Counter-delta accumulation
# ----------------------------------------------------------------------
def test_merge_stats_accumulates_counter_deltas():
    into = SynthesisStats()
    into.hypotheses_expanded = 10
    into.frontier_peak = 7
    into.deduction.smt_calls = 3
    delta = SynthesisStats()
    delta.hypotheses_expanded = 5
    delta.frontier_peak = 4
    delta.deduction.smt_calls = 2
    delta.completion.oe_merged = 6
    merge_stats(into, delta)
    assert into.hypotheses_expanded == 15
    assert into.deduction.smt_calls == 5
    assert into.completion.oe_merged == 6
    # Units search disjoint sub-frontiers concurrently: peaks max, not add.
    assert into.frontier_peak == 7
    merge_stats(into, delta)
    assert into.hypotheses_expanded == 20


# ----------------------------------------------------------------------
# End-to-end differential: serial vs workers=1 vs workers=2
# ----------------------------------------------------------------------
def test_distributed_matches_serial_programs_and_is_worker_count_invariant():
    task = benchmark()
    serial = solve(SynthesisRequest.from_tables(task.inputs, task.output, timeout=60))
    assert serial.solved

    def distributed(workers):
        return solve(
            SynthesisRequest.from_tables(
                task.inputs, task.output,
                timeout=60, distributed=True, workers=workers,
            )
        )

    one = distributed(1)
    one_again = distributed(1)
    two = distributed(2)
    # Program identity: the distributed winner is byte-identical to serial.
    for result in (one, one_again, two):
        assert result.solved
        assert result.program == serial.program
    # Counter identity: deterministic counters are byte-identical across
    # repeat runs (steal order cannot leak into the schedule) and across
    # worker counts (the partition and round structure never see N).
    assert fingerprint(one) == fingerprint(one_again)
    assert fingerprint(one) == fingerprint(two)
    # The distributed run actually went distributed (did not solve in the
    # serial warm-up prefix).
    assert one.counters["steps"] > serial.counters["steps"]
