"""Quickstart: synthesize a table transformation from one input-output example.

Run with::

    python examples/quickstart.py

The task: given a little table of employees, produce the head-count per
department.  We only provide the input table and the desired output table;
Morpheus figures out the ``group_by`` + ``summarise`` pipeline.

Everything goes through :mod:`repro.api`, the sanctioned facade: a typed
:class:`~repro.api.SynthesisRequest` in, a JSON-able result out.  (The same
request payload, as JSON, is what the HTTP service accepts -- see
``repro-bench serve``.)
"""

from repro import Table
from repro.api import SynthesisRequest, solve

INPUT = Table(
    ["employee", "department"],
    [
        ["kim", "engineering"],
        ["lee", "engineering"],
        ["pat", "sales"],
        ["ana", "engineering"],
        ["joe", "sales"],
    ],
)

EXPECTED_OUTPUT = Table(
    ["department", "n"],
    [
        ["engineering", 3],
        ["sales", 2],
    ],
)


def main() -> None:
    request = SynthesisRequest.from_tables([INPUT], EXPECTED_OUTPUT, timeout=30)
    result = solve(request)
    print("input table:")
    print(INPUT.to_markdown())
    print()
    print("expected output:")
    print(EXPECTED_OUTPUT.to_markdown())
    print()
    if result.solved:
        best = result.candidates[0]
        print(f"synthesized in {result.elapsed:.2f}s ({best.size} components):")
        print(best.program)
    else:
        print("no program found within the time limit")


if __name__ == "__main__":
    main()
