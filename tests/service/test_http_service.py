"""End-to-end tests of the HTTP service: sessions, streaming, resume, 429s.

The concurrency test reuses the determinism invariant established for the
interleaved benchmark scheduler: a session's final counters depend only on
its own request, never on what else the process ran -- so per-session
counters from a threaded server must be byte-identical to serial runs.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import Table
from repro.api import SynthesisRequest, SynthesisSession
from repro.service import SessionStore, make_server

STUDENTS = Table(["name", "age", "gpa"],
                 [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
ADULTS = Table(["name", "age", "gpa"], [["Bob", 18, 3.2], ["Tom", 12, 3.0]])
EMPLOYEES = Table(
    ["name", "dept", "salary"],
    [["ann", "eng", 100], ["bob", "eng", 90], ["cal", "ops", 80]],
)
HEADCOUNT = Table(["dept", "n"], [["eng", 2], ["ops", 1]])

FILTER_REQUEST = {
    "examples": [
        {
            "inputs": [{"columns": ["name", "age", "gpa"],
                        "rows": [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]]}],
            "output": {"columns": ["name", "age", "gpa"],
                       "rows": [["Bob", 18, 3.2], ["Tom", 12, 3.0]]},
        }
    ],
    "config": {"timeout": 20},
}

DISTINGUISHER = {
    "inputs": [{"columns": ["name", "age", "gpa"],
                "rows": [["Zoe", 8, 3.5], ["Max", 20, 2.0]]}],
    "output": {"columns": ["name", "age", "gpa"], "rows": [["Max", 20, 2.0]]},
}

#: Timing counters excluded from byte-identity comparisons.
NONDETERMINISTIC = ("active_seconds",)


@pytest.fixture
def server():
    server = make_server(host="127.0.0.1", port=0, ttl=None, rate=1000, burst=1000)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(server, path, timeout=30):
    with urllib.request.urlopen(base_url(server) + path, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def post(server, path, payload, timeout=60):
    request = urllib.request.Request(
        base_url(server) + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_for_status(server, session_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, state = get(server, f"/v1/sessions/{session_id}")
        if state["status"] in ("done", "exhausted", "timeout"):
            return state
        time.sleep(0.05)
    return state


def drop_timing(counters):
    return {k: v for k, v in counters.items() if k not in NONDETERMINISTIC}


class TestEndpoints:
    def test_healthz(self, server):
        assert get(server, "/healthz") == (200, {"status": "ok"})

    def test_metrics_is_non_empty(self, server):
        status, metrics = get(server, "/metrics")
        assert status == 200
        assert metrics["sessions_live"] == 0
        assert "kernel_steps_total" in metrics

    def test_unknown_session_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/v1/sessions/deadbeef")
        assert excinfo.value.code == 404

    def test_malformed_request_is_400(self, server):
        status, body = post(server, "/v1/sessions", {"examples": []})
        assert status == 400
        assert "error" in body

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            base_url(server) + "/v1/sessions",
            data=b"not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_body_is_413(self, server):
        from repro.service.api.http import MAX_BODY_BYTES

        request = urllib.request.Request(
            base_url(server) + "/v1/sessions",
            data=b"{}",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413

    def test_session_round_trip(self, server):
        status, created = post(server, "/v1/sessions", FILTER_REQUEST)
        assert status == 201
        state = wait_for_status(server, created["id"])
        assert state["status"] == "done"
        assert state["candidates"][0]["validated"]
        _, metrics = get(server, "/metrics")
        assert metrics["kernel_steps_total"] > 0


class TestStreaming:
    def test_chunked_stream_yields_candidates_then_status(self, server):
        _, created = post(server, "/v1/sessions", FILTER_REQUEST)
        url = base_url(server) + f"/v1/sessions/{created['id']}/programs?stream=1&count=1&wait=20"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines() if line.strip()]
        assert len(lines) == 2
        assert lines[0]["rank"] == 1 and lines[0]["program"]
        assert lines[1]["candidates_sent"] == 1
        assert lines[1]["counters"]["steps"] > 0

    def test_polling_with_wait_blocks_until_candidates(self, server):
        _, created = post(server, "/v1/sessions", FILTER_REQUEST)
        status, state = get(
            server, f"/v1/sessions/{created['id']}/programs?count=1&wait=20"
        )
        assert status == 200
        assert state["candidates"]


class TestResume:
    def test_distinguishing_example_resumes_without_restarting(self, server):
        _, created = post(server, "/v1/sessions", FILTER_REQUEST)
        sid = created["id"]
        first = wait_for_status(server, sid)
        assert first["candidates"][0]["validated"]
        steps_before = first["counters"]["steps"]
        oe_before = first["counters"]["oe_merged"]

        status, resumed = post(server, f"/v1/sessions/{sid}/examples", DISTINGUISHER)
        assert status == 200
        # Counters continue instead of resetting: the frontier was resumed.
        assert resumed["counters"]["resumes"] == 1
        assert resumed["counters"]["steps"] >= steps_before
        assert resumed["counters"]["oe_merged"] >= oe_before
        assert not resumed["candidates"][0]["validated"]  # revalidated and overfit

        final = wait_for_status(server, sid, timeout=40.0)
        assert final["counters"]["steps"] > steps_before
        validated = [c["program"] for c in final["candidates"] if c["validated"]]
        assert validated

        # The resumed search agrees with a cold run given both examples.
        cold_payload = dict(FILTER_REQUEST)
        cold_payload["examples"] = FILTER_REQUEST["examples"] + [DISTINGUISHER]
        cold = SynthesisSession(SynthesisRequest.from_json(cold_payload))
        while not cold.finished and not cold.validated_count:
            cold.advance(max_steps=64)
        cold_validated = [c.program for c in cold.candidates if c.validated]
        assert validated[0] == cold_validated[0]


class TestRateLimiting:
    def test_burst_gets_429(self):
        server = make_server(
            host="127.0.0.1", port=0,
            store=SessionStore(ttl=None, rate=0.001, burst=2),
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            codes = [post(server, "/v1/sessions", FILTER_REQUEST)[0] for _ in range(3)]
            assert codes == [201, 201, 429]
            _, metrics = get(server, "/metrics")
            assert metrics["rate_limited_total"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestConcurrencyDeterminism:
    """N threads against one server: counters byte-identical to serial runs."""

    TASKS = {
        "filter": ([STUDENTS], ADULTS),
        "headcount": ([EMPLOYEES], HEADCOUNT),
    }

    def serial_counters(self, inputs, output):
        session = SynthesisSession(
            SynthesisRequest.from_tables(inputs, output, timeout=20)
        )
        while not session.finished:
            session.advance(max_steps=64)
        return drop_timing(session.counters())

    def test_threaded_sessions_match_serial_counters(self, server):
        reference = {
            name: self.serial_counters(inputs, output)
            for name, (inputs, output) in self.TASKS.items()
        }

        results = {}
        errors = []

        def drive(thread_id, name):
            try:
                inputs, output = self.TASKS[name]
                payload = SynthesisRequest.from_tables(inputs, output, timeout=20).to_json()
                _, created = post(server, "/v1/sessions", payload)
                state = wait_for_status(server, created["id"])
                results[thread_id] = (name, drop_timing(state["counters"]))
            except Exception as error:  # pragma: no cover - surfaced via assert
                errors.append((thread_id, error))

        names = ["filter", "headcount"] * 3
        threads = [
            threading.Thread(target=drive, args=(i, name))
            for i, name in enumerate(names)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == len(names)
        for thread_id, (name, counters) in results.items():
            assert counters == reference[name], f"thread {thread_id} ({name}) diverged"
