"""Disk-backed cross-run knowledge base (the warm-start cache tier).

Every synthesis run re-derives facts that PR 3's content-hash fingerprints
made stable *across processes*: concrete component executions, Spec-2
attribute vectors, mined blocking lemmas and observational-equivalence
representatives.  :class:`KnowledgeBase` persists those facts in one sqlite
file so a later run -- another process, another day, another replica serving
the same traffic -- starts warm instead of cold.  This is the memoized-facts
pattern of cloud-scale interprocedural analysis applied to Morpheus-style
synthesis: facts keyed by content hashes survive the process that computed
them, and reusing them yields the same verdicts as recomputing.

Keying and invalidation
-----------------------

Every fact is addressed by a BLAKE2b digest over

``(schema version, KB salt, library version hash, fact-specific tokens)``

where the fact-specific tokens are content hashes (table fingerprints) plus
the structural identity of the fact (component name, argument values, spec
level, ...).  The **library version hash**
(:meth:`repro.core.component.ComponentLibrary.version_hash`) covers every
component's name, arity and parameter signature: changing a component's
definition changes the hash, so facts computed under the old library are
simply never *found* again -- stale entries are ignored, not silently
replayed, and eventually fall out through LRU eviction.

Safety tiers
------------

* **Executions and attribute vectors** are pure functions of table content
  (plus, for attribute vectors, the example baseline).  Reusing them changes
  *where* a table comes from, never what it contains, so a warm run's search
  trajectory -- programs, verdicts and every search counter -- is
  byte-identical to a cold run.  These are consulted whenever a KB is
  attached.
* **Lemmas** rest on one example's formula: they are exported per task key
  (input/output fingerprints + spec level) and re-imported only for the
  *identical* task, and only when the KB was opened with
  ``reuse_lemmas=True``.  Imported lemmas are sound (they block only
  infeasible hypotheses, so synthesized programs are unchanged) but they
  shift work between the lemma store and the SMT tier, so the
  counter-differential harness keeps them off.
* **OE representatives** are exported per task key for observability and
  corpus analysis.  They are *never* pre-loaded into a live search: a fresh
  search that merged a state against a previous run's representative would
  skip exploring it -- the previous run's solutions are not in this run's
  frontier, so the merge argument does not apply.

Concurrency: one :class:`KnowledgeBase` may be shared by many
:class:`~repro.engine.context.TaskContext`\\ s (threads) -- all sqlite access
is serialised on an internal lock -- and many *processes* may open the same
file (WAL journaling + a busy timeout).  The KB only ever affects how much
work a search performs, never its outcome, so ``--jobs N`` determinism is
preserved no matter how entries race in.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from hashlib import blake2b
from typing import Optional, Tuple

from ..dataframe.cells import CellType
from ..dataframe.profiling import ExecutionStats, install_execution_stats
from ..dataframe.table import Table

#: Bumping this invalidates every existing KB file's entries (the digest
#: prefix changes), e.g. when the serialisation format evolves.
SCHEMA_VERSION = 1

#: Default size cap (rows) before LRU-by-last-used eviction kicks in.
DEFAULT_MAX_ENTRIES = 200_000

#: Upper bounds on the per-task lemma / OE blobs (entries, not bytes).
MAX_LEMMAS_PER_TASK = 512
MAX_OE_PER_TASK = 8192


@dataclass
class KBStats:
    """Hit/miss/store/eviction counters of one :class:`KnowledgeBase`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the KB (0.0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


# ----------------------------------------------------------------------
# Canonical token hashing (the key side of every fact)
# ----------------------------------------------------------------------
def _feed(hasher, token) -> None:
    """Feed one key token into *hasher* with an unambiguous type tag."""
    if token is None:
        hasher.update(b"\x00N")
    elif isinstance(token, bytes):
        hasher.update(b"\x00B" + len(token).to_bytes(4, "big"))
        hasher.update(token)
    elif isinstance(token, str):
        data = token.encode("utf-8")
        hasher.update(b"\x00S" + len(data).to_bytes(4, "big"))
        hasher.update(data)
    elif isinstance(token, bool):
        hasher.update(b"\x00b" + (b"1" if token else b"0"))
    elif isinstance(token, int):
        data = str(token).encode("ascii")
        hasher.update(b"\x00I" + len(data).to_bytes(4, "big"))
        hasher.update(data)
    elif isinstance(token, float):
        data = repr(token).encode("ascii")
        hasher.update(b"\x00F" + len(data).to_bytes(4, "big"))
        hasher.update(data)
    elif isinstance(token, (tuple, list)):
        hasher.update(b"\x00T" + len(token).to_bytes(4, "big"))
        for item in token:
            _feed(hasher, item)
        hasher.update(b"\x00t")
    else:
        # Value arguments (frozen dataclasses) and enums: stable repr.
        data = repr(token).encode("utf-8")
        hasher.update(b"\x00R" + len(data).to_bytes(4, "big"))
        hasher.update(data)


def digest_tokens(*tokens) -> bytes:
    """A 16-byte BLAKE2b digest over canonically encoded *tokens*."""
    hasher = blake2b(digest_size=16)
    for token in tokens:
        _feed(hasher, token)
    return hasher.digest()


# ----------------------------------------------------------------------
# Table / failure (de)serialisation (the value side of execution facts)
# ----------------------------------------------------------------------
def _serialize_result(result) -> bytes:
    """Encode an execution result (table or ``EvaluationFailure``) as JSON."""
    from ..core.hypothesis import EvaluationFailure

    if isinstance(result, EvaluationFailure):
        payload = {"f": str(result)}
    else:
        payload = {
            "t": {
                "columns": list(result.columns),
                "col_types": [col_type.value for col_type in result.col_types],
                "rows": [list(row) for row in result.rows],
                "group_cols": list(result.group_cols),
            }
        }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _deserialize_result(blob: bytes):
    """Rebuild a table (or failure) from :func:`_serialize_result` output.

    Table construction normally feeds the installed execution counters
    (``tables_built``, ``cells_interned``); a KB restore must not -- a cold
    run builds the table *inside* ``component.execute`` under live counters,
    and the restore replaces that execution wholesale, so restored work is
    counted by the KB's own stats instead.  The cells are still interned
    into the *installed* pool (exactly the values the skipped execution
    would have interned), only the counting is suppressed.
    """
    from ..core.hypothesis import EvaluationFailure

    payload = json.loads(blob.decode("utf-8"))
    if "f" in payload:
        return EvaluationFailure(payload["f"])
    spec = payload["t"]
    scratch = install_execution_stats(ExecutionStats())
    try:
        table = Table(
            spec["columns"],
            [tuple(row) for row in spec["rows"]],
            col_types=[CellType(value) for value in spec["col_types"]],
            group_cols=tuple(spec["group_cols"]),
        )
    finally:
        install_execution_stats(scratch)
    return table


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class KnowledgeBase:
    """A sqlite-backed, LRU-evicted store of cross-run synthesis facts.

    One row per fact: ``(scope, key digest) -> value blob`` plus a
    ``last_used`` stamp refreshed on every hit.  ``max_entries`` caps the
    table; overflow evicts the least-recently-used rows.  All access is
    thread-safe (one internal lock); the file itself may be shared across
    processes (WAL + busy timeout).

    *version_salt* is mixed into every key digest -- tests use it to
    simulate a library/version bump without rebuilding component objects.
    *reuse_lemmas* opts searches into importing previously mined lemmas for
    byte-identical task keys (see the module docstring's safety tiers).
    """

    def __init__(
        self,
        path: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        version_salt: bytes = b"",
        reuse_lemmas: bool = False,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = path
        self.max_entries = max_entries
        self.version_salt = version_salt
        self.reuse_lemmas = reuse_lemmas
        self.stats = KBStats()
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None, timeout=30.0
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS facts ("
                " scope TEXT NOT NULL,"
                " key BLOB NOT NULL,"
                " value BLOB NOT NULL,"
                " last_used REAL NOT NULL,"
                " PRIMARY KEY (scope, key))"
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS facts_lru ON facts (last_used)"
            )
            self._count = self._conn.execute(
                "SELECT COUNT(*) FROM facts"
            ).fetchone()[0]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._count

    def close(self) -> None:
        """Close the underlying connection (the object is dead afterwards)."""
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    def get(self, scope: str, key: bytes) -> Optional[bytes]:
        """The stored blob for ``(scope, key)``, refreshing its LRU stamp."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM facts WHERE scope = ? AND key = ?", (scope, key)
            ).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            self._conn.execute(
                "UPDATE facts SET last_used = ? WHERE scope = ? AND key = ?",
                (time.time(), scope, key),
            )
            self.stats.hits += 1
            return row[0]

    def put(self, scope: str, key: bytes, value: bytes) -> None:
        """Insert or refresh a fact, evicting LRU rows past ``max_entries``."""
        with self._lock:
            now = time.time()
            updated = self._conn.execute(
                "UPDATE facts SET value = ?, last_used = ?"
                " WHERE scope = ? AND key = ?",
                (value, now, scope, key),
            ).rowcount
            if not updated:
                # ON CONFLICT covers the cross-process race between the
                # update miss above and this insert.
                self._conn.execute(
                    "INSERT INTO facts (scope, key, value, last_used)"
                    " VALUES (?, ?, ?, ?)"
                    " ON CONFLICT (scope, key) DO UPDATE"
                    " SET value = excluded.value, last_used = excluded.last_used",
                    (scope, key, value, now),
                )
                self._count += 1
            self.stats.stores += 1
            if self._count > self.max_entries:
                # Writers in other processes make the tracked count an
                # undercount; the true size is re-read before evicting.
                self._count = self._conn.execute(
                    "SELECT COUNT(*) FROM facts"
                ).fetchone()[0]
                excess = self._count - self.max_entries
                if excess > 0:
                    self._conn.execute(
                        "DELETE FROM facts WHERE rowid IN ("
                        " SELECT rowid FROM facts ORDER BY last_used ASC LIMIT ?)",
                        (excess,),
                    )
                    self.stats.evictions += excess
                    self._count -= excess

    # ------------------------------------------------------------------
    def view(self, library_hash: bytes) -> "KBView":
        """A handle binding this KB to one component library's version hash."""
        return KBView(self, library_hash)


class KBView:
    """A :class:`KnowledgeBase` scoped to one library version.

    This is what the search stack holds: every digest it computes mixes in
    the schema version, the KB salt and the library version hash, so facts
    written under a different library (or salt) are never found.
    """

    __slots__ = ("kb", "_prefix")

    def __init__(self, kb: KnowledgeBase, library_hash: bytes) -> None:
        self.kb = kb
        self._prefix = digest_tokens(SCHEMA_VERSION, kb.version_salt, library_hash)

    @property
    def reuse_lemmas(self) -> bool:
        return self.kb.reuse_lemmas

    def _digest(self, *tokens) -> bytes:
        return digest_tokens(self._prefix, *tokens)

    # -- execution facts ----------------------------------------------
    def get_execution(self, key: tuple):
        """The persisted result for one execution-cache key, or ``None``."""
        blob = self.kb.get("exec", self._digest(*key))
        if blob is None:
            return None
        try:
            return _deserialize_result(blob)
        except (ValueError, KeyError, TypeError):
            # A corrupt/legacy row behaves like a miss (and will be
            # overwritten by the write-back after re-execution).
            return None

    def put_execution(self, key: tuple, result) -> None:
        """Persist one execution result (table or failure)."""
        self.kb.put("exec", self._digest(*key), _serialize_result(result))

    # -- attribute vectors --------------------------------------------
    def get_attributes(
        self, fingerprint: bytes, level, baseline_digest: bytes
    ) -> Optional[Tuple[int, int, int, int, int]]:
        """A persisted ``(row, col, group, newCols, newVals)`` vector."""
        blob = self.kb.get(
            "attr", self._digest(fingerprint, level.value, baseline_digest)
        )
        if blob is None:
            return None
        try:
            vector = json.loads(blob.decode("utf-8"))
            if isinstance(vector, list) and len(vector) == 5:
                return tuple(int(item) for item in vector)
        except (ValueError, TypeError):
            pass
        return None

    def put_attributes(
        self, fingerprint: bytes, level, baseline_digest: bytes, attributes
    ) -> None:
        self.kb.put(
            "attr",
            self._digest(fingerprint, level.value, baseline_digest),
            json.dumps(list(attributes)).encode("utf-8"),
        )

    # -- per-task fact blobs (lemmas / OE representatives) ------------
    def task_key(self, inputs, output, level) -> bytes:
        """The fingerprint-derived identity of one synthesis task."""
        return self._digest(
            "task",
            tuple(table.fingerprint() for table in inputs),
            output.fingerprint(),
            level.value,
        )

    def get_lemmas(self, task_key: bytes) -> list:
        """Previously mined lemma entries for this exact task (may be [])."""
        return self._get_json_list("lemmas", task_key)

    def put_lemmas(self, task_key: bytes, entries: list) -> None:
        """Merge mined lemma entries into the task's stored set."""
        self._merge_json_list("lemmas", task_key, entries, MAX_LEMMAS_PER_TASK)

    def get_oe_entries(self, task_key: bytes) -> list:
        """Previously exported OE representative digests for this task."""
        return self._get_json_list("oe", task_key)

    def put_oe_entries(self, task_key: bytes, entries: list) -> None:
        """Merge exported OE representative digests into the task's set."""
        self._merge_json_list("oe", task_key, entries, MAX_OE_PER_TASK)

    # ------------------------------------------------------------------
    def _get_json_list(self, scope: str, key: bytes) -> list:
        blob = self.kb.get(scope, key)
        if blob is None:
            return []
        try:
            payload = json.loads(blob.decode("utf-8"))
            return payload if isinstance(payload, list) else []
        except ValueError:
            return []

    def _merge_json_list(self, scope: str, key: bytes, entries: list, cap: int) -> None:
        if not entries:
            return
        existing = self._get_json_list(scope, key)
        seen = {json.dumps(entry, sort_keys=True) for entry in existing}
        merged = list(existing)
        for entry in entries:
            marker = json.dumps(entry, sort_keys=True)
            if marker not in seen:
                seen.add(marker)
                merged.append(entry)
        self.kb.put(scope, key, json.dumps(merged[:cap]).encode("utf-8"))


# ----------------------------------------------------------------------
# The installed per-task handle
# ----------------------------------------------------------------------
_ACTIVE: Optional[KnowledgeBase] = None


def install_kb(kb: Optional[KnowledgeBase]) -> Optional[KnowledgeBase]:
    """Swap the active knowledge base; returns the previous one.

    Mirrors ``install_intern_pool``/``install_execution_stats``: a
    :class:`~repro.engine.context.TaskContext` installs its handle while
    active, so kernels constructed inside the context pick it up without
    any plumbing through the call stack.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = kb
    return previous


def current_kb() -> Optional[KnowledgeBase]:
    """The active knowledge base (``None`` when warm-start is off)."""
    return _ACTIVE


def set_default_kb(kb: Optional[KnowledgeBase]) -> None:
    """Set the process-default KB (inherited by new :class:`TaskContext`\\ s)."""
    install_kb(kb)


def baseline_digest(inputs) -> bytes:
    """The identity of an example baseline (order-independent: it is a union)."""
    return digest_tokens(
        "baseline", tuple(sorted(table.fingerprint() for table in inputs))
    )
