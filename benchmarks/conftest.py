"""Shared configuration for the benchmark harness.

The pytest-benchmark targets in this directory regenerate the paper's tables
and figures on a *representative subset* of the suites so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes.  Set the
environment variable ``MORPHEUS_BENCH_FULL=1`` (and be prepared to wait) to
run every benchmark, or use ``python -m repro.benchmarks.cli`` for the
complete command-line harness with configurable timeouts.
"""

import os

import pytest

#: Per-task synthesis timeout used by the benchmark targets (seconds).
BENCH_TIMEOUT = float(os.environ.get("MORPHEUS_BENCH_TIMEOUT", "15"))

#: Whether to run the full 80-task suite instead of the representative subset.
BENCH_FULL = os.environ.get("MORPHEUS_BENCH_FULL", "0") == "1"

#: One representative benchmark per category (fast enough for CI timing runs).
REPRESENTATIVE_BENCHMARKS = [
    "c1_prices_long_to_wide",        # C1: long -> wide reshaping
    "c2_orders_count_by_region",     # C2: arithmetic (group_by + summarise)
    "c3_exam_gather_unite_spread",   # C3: reshaping + string manipulation (Example 1)
    "c4_spread_then_difference",     # C4: reshaping + arithmetic
    "c5_join_filter_large_orders",   # C5: consolidation + arithmetic
    "c6_unite_after_ratio",          # C6: arithmetic + strings
    "c8_split_then_count",           # C8: reshaping + arithmetic + strings
]

#: Representative SQL-expressible tasks for Figure 18 timing.
REPRESENTATIVE_SQL_BENCHMARKS = [
    "sql_filter_high_salary",
    "sql_count_per_dept",
    "sql_join_project_floor",
    "sql_spend_per_country",
]


@pytest.fixture(scope="session")
def bench_timeout():
    return BENCH_TIMEOUT
