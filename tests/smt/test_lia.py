"""Tests for the integer (LIA) theory solver."""

from hypothesis import given
from hypothesis import strategies as st

from repro.smt import Int, check_conjunction


def sat(atoms):
    return check_conjunction(atoms).satisfiable


class TestEqualityPropagation:
    def test_constants_propagate(self):
        x, y = Int("x"), Int("y")
        result = check_conjunction([x.equals(3), y.equals(x + 2)])
        assert result.satisfiable
        assert result.model["x"] == 3
        assert result.model["y"] == 5

    def test_chain_of_equalities(self):
        a, b, c, d = Int("a"), Int("b"), Int("c"), Int("d")
        result = check_conjunction([a.equals(b), b.equals(c), c.equals(d), d.equals(7)])
        assert result.model["a"] == 7

    def test_conflicting_constants(self):
        x = Int("x")
        assert not sat([x.equals(1), x.equals(2)])

    def test_integrality_of_equalities(self):
        x = Int("x")
        assert not sat([(x * 2).equals(3)])
        assert sat([(x * 2).equals(4)])

    def test_equality_with_negative_coefficient(self):
        x, y = Int("x"), Int("y")
        result = check_conjunction([(y - x).equals(0), x.equals(5)])
        assert result.model["y"] == 5


class TestBoundReasoning:
    def test_empty_interval(self):
        x = Int("x")
        assert not sat([x >= 3, x <= 2])

    def test_tight_interval(self):
        x = Int("x")
        result = check_conjunction([x >= 3, x <= 3])
        assert result.satisfiable
        assert result.model["x"] == 3

    def test_strict_bounds_over_integers(self):
        x = Int("x")
        assert not sat([x > 2, x < 3])

    def test_interval_propagation_through_sum(self):
        x, y = Int("x"), Int("y")
        # x + y <= 3, x >= 2, y >= 2 is infeasible over the integers.
        assert not sat([x + y <= 3, x >= 2, y >= 2])

    def test_difference_chain_conflict(self):
        a, b, c = Int("a"), Int("b"), Int("c")
        assert not sat([a < b, b < c, c < a])

    def test_difference_chain_feasible(self):
        a, b, c = Int("a"), Int("b"), Int("c")
        result = check_conjunction([a < b, b < c, a >= 0, c <= 10])
        assert result.satisfiable
        model = result.model
        assert model["a"] < model["b"] < model["c"]

    def test_scaled_bounds_round_correctly(self):
        x = Int("x")
        # 2x <= 5  ->  x <= 2 over the integers.
        result = check_conjunction([x * 2 <= 5, x >= 2])
        assert result.satisfiable
        assert result.model["x"] == 2
        assert not sat([x * 2 <= 5, x >= 3])


class TestMixedSystems:
    def test_example10_from_the_paper(self):
        # select/filter hypothesis vs. a 3x4 -> 2x4 example: UNSAT.
        r1, c1, r3, c3, r0, c0 = (Int(name) for name in ("r1", "c1", "r3", "c3", "r0", "c0"))
        atoms = [
            r1 < r3, c1.equals(c3), r0.equals(r1), c0 < c1,
            r3.equals(3), c3.equals(4), r0.equals(2), c0.equals(4),
        ]
        assert not sat(atoms)

    def test_example10_satisfiable_variant(self):
        r1, c1, r3, c3, r0, c0 = (Int(name) for name in ("r1", "c1", "r3", "c3", "r0", "c0"))
        atoms = [
            r1 < r3, c1.equals(c3), r0.equals(r1), c0 < c1,
            r3.equals(3), c3.equals(4), r0.equals(2), c0.equals(3),
        ]
        assert sat(atoms)

    def test_branch_and_bound_detects_parity_conflicts(self):
        x, y = Int("x"), Int("y")
        assert not sat([(x * 2 + y * 2).equals(3), x >= 0, y >= 0, x <= 5, y <= 5])

    def test_model_satisfies_all_atoms(self):
        x, y, z = Int("x"), Int("y"), Int("z")
        atoms = [x + y <= 10, y.equals(z + 1), z >= 2, x >= 1]
        result = check_conjunction(atoms)
        assert result.satisfiable
        for atom in atoms:
            assert atom.holds(result.model)


class TestProperties:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_two_constants_consistency(self, a, b):
        x = Int("x")
        result = check_conjunction([x.equals(a), x.equals(b)])
        assert result.satisfiable == (a == b)

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_interval_feasibility(self, low, high):
        x = Int("x")
        result = check_conjunction([x >= low, x <= high])
        assert result.satisfiable == (low <= high)
        if result.satisfiable:
            assert low <= result.model["x"] <= high

    @given(
        st.lists(
            st.tuples(st.integers(-4, 4), st.integers(-4, 4), st.integers(-12, 12)),
            min_size=1,
            max_size=6,
        ),
        st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-3, 3), min_size=2, max_size=2),
    )
    def test_no_false_unsat(self, raw, witness):
        # Build a system that the witness satisfies by construction; the
        # solver must never report UNSAT for it (soundness of pruning).
        x, y = Int("x"), Int("y")
        atoms = []
        for a, b, c in raw:
            expr = x * a + y * b
            value = a * witness["x"] + b * witness["y"]
            atoms.append(expr <= max(c, value))
        result = check_conjunction(atoms)
        assert result.satisfiable
