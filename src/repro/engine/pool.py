"""Shared worker-pool plumbing for the process-parallel schedulers.

Both process-level schedulers -- :mod:`repro.engine.parallel` (inter-task
fan-out: many benchmarks over a pool) and :mod:`repro.engine.distributed`
(intra-task fan-out: one search's frontier split into work units) -- need the
same three pieces:

* job-count resolution (``jobs=None`` means one worker per CPU),
* the knowledge-base pool initializer (sqlite connections must not cross
  ``fork``/``spawn`` boundaries, so each worker opens its own handle), and
* the generic index-preserving pool map helpers.

They live here once so the two schedulers can never drift apart on pool
semantics (``repro.engine.parallel`` re-exports them under its historical
names for backward compatibility).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Optional, Sequence


def default_job_count() -> int:
    """Worker count used when ``jobs`` is not given (one per CPU)."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Validate an explicit worker count, or default to one per CPU."""
    if jobs is None:
        return default_job_count()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def init_worker_kb(kb_path: str) -> None:
    """Pool initializer: open this worker's own warm-start knowledge base.

    sqlite connections must not cross ``fork``/``spawn`` boundaries, so each
    worker process opens the shared file itself (WAL journaling arbitrates
    the concurrent writers).  The handle is installed as the process default,
    which freshly created :class:`~repro.engine.context.TaskContext` objects
    inherit.
    """
    from .kb import KnowledgeBase, set_default_kb

    set_default_kb(KnowledgeBase(kb_path))


def pool_initializer(kb_path: Optional[str]) -> tuple:
    """The ``(initializer, initargs)`` pair for worker pools.

    ``kb_path=None`` (no warm-start KB) yields ``(None, ())`` -- the shape
    ``multiprocessing.Pool`` accepts for "no initializer".
    """
    if kb_path is None:
        return None, ()
    return init_worker_kb, (kb_path,)


def map_indexed(
    worker,
    tasks: Sequence[tuple],
    jobs: int,
    start_method: Optional[str] = None,
    on_result=None,
    stop=None,
    initializer=None,
    initargs=(),
) -> Dict[int, object]:
    """Run index-prefixed *tasks* through *worker*, serially or over a pool.

    Results are collected into an index-keyed dict so callers can restore
    input order regardless of completion order.  ``on_result(index, value)``
    fires in the parent as results arrive; ``stop(index, value)`` returning
    true ends the run early (remaining pool workers are terminated).
    """
    collected: Dict[int, object] = {}

    def record(index, value) -> bool:
        collected[index] = value
        if on_result is not None:
            on_result(index, value)
        return stop is not None and stop(index, value)

    if jobs == 1 or len(tasks) <= 1:
        for task in tasks:
            index, value = worker(task)
            if record(index, value):
                break
        return collected
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing
    )
    with context.Pool(
        processes=min(jobs, len(tasks)), initializer=initializer, initargs=initargs
    ) as pool:
        for index, value in pool.imap_unordered(worker, tasks):
            if record(index, value):
                # Exiting the with-block terminates the remaining workers.
                break
    return collected


def map_batched(
    worker,
    batch_tasks: Sequence[tuple],
    jobs: int,
    start_method: Optional[str] = None,
    on_result=None,
    initializer=None,
    initargs=(),
) -> Dict[int, object]:
    """Run batch workers (each returning ``[(index, value), ...]``) and flatten."""
    collected: Dict[int, object] = {}

    def record(results) -> None:
        for index, value in results:
            collected[index] = value
            if on_result is not None:
                on_result(index, value)

    if jobs == 1 or len(batch_tasks) <= 1:
        for task in batch_tasks:
            record(worker(task))
        return collected
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing
    )
    with context.Pool(
        processes=min(jobs, len(batch_tasks)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        for results in pool.imap_unordered(worker, batch_tasks):
            record(results)
    return collected
