"""Tests for the conflict-driven lemma store and its deduction integration."""

import itertools

import pytest

from repro.core import standard_library
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import initial_hypothesis, refine, table_holes
from repro.core.lemmas import LemmaStore
from repro.dataframe import Table

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}

T1 = Table(["id", "name", "age", "gpa"],
           [[1, "Alice", 8, 4.0], [2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]])
T3 = Table(["id", "name", "age"],
           [[2, "Bob", 18], [3, "Tom", 12]])


def build_chain(*names):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    return hypothesis


class TestLemmaStore:
    def test_blocks_requires_subset(self):
        store = LemmaStore()
        store.add([("spec", (), "gather")])
        assert store.blocks(frozenset({("spec", (), "gather"), ("bind", (0,), None)}))
        assert not store.blocks(frozenset({("spec", (), "spread")}))

    def test_superset_lemma_is_subsumed(self):
        store = LemmaStore()
        assert store.add([("spec", (), "gather")])
        assert not store.add([("spec", (), "gather"), ("bind", (0,), None)])
        assert len(store) == 1
        assert store.stats.subsumed == 1

    def test_more_general_lemma_retires_specific_ones(self):
        store = LemmaStore()
        store.add([("spec", (), "gather"), ("bind", (0,), None)])
        store.add([("spec", (), "gather"), ("bind", (0,), 0)])
        assert len(store) == 2
        assert store.add([("spec", (), "gather")])
        assert len(store) == 1
        assert store.stats.retired == 2
        assert store.lemmas() == [frozenset({("spec", (), "gather")})]

    def test_maxsize_overflow_is_counted_not_fatal(self):
        store = LemmaStore(maxsize=1)
        assert store.add([("spec", (), "gather")])
        assert not store.add([("spec", (), "spread")])
        assert len(store) == 1
        assert store.stats.overflow == 1

    def test_empty_lemma_is_rejected(self):
        store = LemmaStore()
        with pytest.raises(ValueError):
            store.add([])

    def test_clear_drops_lemmas_but_keeps_counters(self):
        store = LemmaStore()
        store.add([("spec", (), "gather")])
        assert store.blocks(frozenset({("spec", (), "gather")}))
        store.clear()
        assert len(store) == 0
        assert not store.blocks(frozenset({("spec", (), "gather")}))
        assert store.stats.learned == 1


class TestEngineIntegration:
    # These tests pin the tier-2 (CDCL) machinery in isolation: the tier-1
    # interval prescreen would decide the simple UNSAT chains below before
    # any lemma could be mined, so it is disabled here.
    def test_rejection_mines_a_lemma_and_blocks_the_replay(self):
        engine = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        hypothesis = build_chain("select")  # select must drop a column: UNSAT
        assert engine.deduce(hypothesis) is False
        assert engine.stats.lemmas_learned >= 1
        assert engine.stats.cores_extracted >= 1
        assert engine.deduce(hypothesis) is False
        assert engine.stats.lemma_prunes == 1

    def test_learn_false_skips_mining_but_still_consults_the_store(self):
        engine = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        assert engine.deduce(build_chain("select"), learn=False) is False
        assert engine.stats.lemmas_learned == 0
        # Mine via a learning call (the verdict cache is cleared first: a
        # cached rejection short-circuits before the mining step), then
        # verify a later learn=False call is answered by the store.
        engine._verdict_cache.clear()
        assert engine.deduce(build_chain("select")) is False
        assert engine.stats.lemmas_learned >= 1
        engine._verdict_cache.clear()
        assert engine.deduce(build_chain("select"), learn=False) is False
        assert engine.stats.lemma_prunes >= 1

    def test_cdcl_disabled_engine_never_touches_lemma_state(self):
        engine = DeductionEngine(inputs=[T1], output=T1, cdcl=False, prescreen=False)
        assert engine.deduce(build_chain("select")) is False
        assert engine.lemma_store is None
        assert engine.stats.lemmas_learned == 0
        assert engine.stats.lemma_prunes == 0
        assert engine.stats.lemma_mining_solves == 0

    def test_lemma_generalizes_across_sibling_hypotheses(self):
        # mutate at the root must introduce values the (unchanged) output
        # table does not have, whatever its subtree computes: the mined core
        # is the root spec alone, so every deeper hypothesis keeping mutate
        # at the root is rejected without a new SMT call.
        engine = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        assert engine.deduce(build_chain("mutate")) is False
        assert frozenset({("spec", (), "mutate")}) in engine.lemma_store.lemmas()
        calls = engine.stats.smt_calls
        assert engine.deduce(build_chain("mutate", "filter")) is False
        assert engine.deduce(build_chain("mutate", "select")) is False
        assert engine.stats.smt_calls == calls
        assert engine.stats.lemma_prunes == 2

    def test_lemma_prunes_agree_with_monolithic_verdicts(self):
        # Soundness differential: every verdict of the CDCL engine (lemma
        # prunes included) must coincide with the plain Algorithm 2 verdict.
        names = ["select", "filter", "mutate", "gather", "spread", "group_by"]
        cdcl = DeductionEngine(inputs=[T1], output=T3, prescreen=False)
        plain = DeductionEngine(inputs=[T1], output=T3, cdcl=False, prescreen=False)
        hypotheses = [build_chain(name) for name in names]
        hypotheses += [
            build_chain(first, second)
            for first in names
            for second in ("select", "filter", "gather")
        ]
        for hypothesis in hypotheses:
            assert cdcl.deduce(hypothesis) is plain.deduce(hypothesis), (
                f"CDCL verdict diverged on {hypothesis!r}"
            )
        assert cdcl.stats.lemma_prunes > 0
        assert cdcl.stats.smt_calls < plain.stats.smt_calls

    def test_stats_merge_accumulates_lemma_counters(self):
        first = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        second = DeductionEngine(inputs=[T1], output=T1, prescreen=False)
        first.deduce(build_chain("select"))
        second.deduce(build_chain("select"))
        merged = first.stats
        learned = merged.lemmas_learned
        merged.merge(second.stats)
        assert merged.lemmas_learned == learned + second.stats.lemmas_learned
        assert merged.lemma_mining_solves >= second.stats.lemma_mining_solves
