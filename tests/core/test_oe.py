"""Tests for the observational-equivalence store (repro.core.oe).

The load-bearing invariants:

* **Soundness** -- two completion states that the store merges are
  observationally equal: every completed subtree of one evaluates to a table
  that is cell-for-cell equal to its counterpart in the other (the
  fingerprint invariant of DESIGN.md makes key equality imply table
  equality).
* **Positivity** -- merging happens only on *exact* fingerprint equality.
  Tables that are merely tolerantly equal (sub-tolerance float noise) have
  different fingerprints, different keys, and never merge, so verdicts stay
  exact.
* **Ablation neutrality** -- the synthesized programs are byte-identical
  with the store enabled and disabled (``--no-oe``); only the amount of
  duplicated completion work changes.
"""

import itertools
import random

import pytest

from repro.benchmarks import r_benchmark_suite, run_suite
from repro.baselines import spec2_config, spec2_no_oe_config
from repro.core import Example, Morpheus, OEStore, SynthesisConfig, standard_library
from repro.core.completion import SketchCompleter
from repro.core.deduction import DeductionEngine
from repro.core.hypothesis import (
    initial_hypothesis,
    refine,
    sketches,
    table_holes,
)
from repro.dataframe import Table
from repro.dataframe.compare import STRICT_POLICY, tables_equivalent

LIBRARY = standard_library()
COMPONENTS = {component.name: component for component in LIBRARY}


def build_sketch(*names, inputs=1, which=0):
    next_id = itertools.count(1)
    hypothesis = initial_hypothesis()
    for name in names:
        hole = table_holes(hypothesis)[0]
        hypothesis = refine(hypothesis, hole, COMPONENTS[name], lambda: next(next_id))
    bound = list(sketches(hypothesis, inputs))
    return bound[which]


class TestOEStoreBasics:
    def test_first_admission_wins(self):
        store = OEStore()
        assert store.admit(("r", 1, ("t", b"abc")))
        assert not store.admit(("r", 1, ("t", b"abc")))
        assert len(store) == 1

    def test_unequal_digests_never_merge(self):
        store = OEStore()
        assert store.admit(("r", 1, ("t", b"abc")))
        assert store.admit(("r", 1, ("t", b"abd")))
        assert len(store) == 2

    def test_none_keys_are_always_admitted(self):
        store = OEStore()
        assert store.admit(None)
        assert store.admit(None)
        assert len(store) == 0

    def test_remaining_count_distinguishes_states(self):
        store = OEStore()
        assert store.admit(("r", 2, ("t", b"abc")))
        assert store.admit(("r", 1, ("t", b"abc")))
        assert len(store) == 2


class TestStateKeys:
    def test_equal_tables_share_a_key(self):
        left = Table(["a", "b"], [[1, "x"], [2, "y"]])
        right = Table(["a", "b"], [[1, "x"], [2, "y"]])
        sketch = build_sketch("filter")
        key_left = OEStore.state_key(sketch, {0: left}, remaining=1)
        key_right = OEStore.state_key(sketch, {0: right}, remaining=1)
        assert key_left == key_right

    def test_positivity_sub_tolerance_noise_does_not_merge(self):
        # values_equal treats these cells as equal (tolerant float compare),
        # but their canonical tokens differ, so the fingerprints -- and the
        # OE keys -- differ: the states are explored separately and verdicts
        # stay exact.
        left = Table(["a"], [[1.0]])
        right = Table(["a"], [[1.0 + 1e-7]])
        from repro.dataframe.cells import values_equal

        assert values_equal(left.rows[0][0], right.rows[0][0])
        assert left.fingerprint() != right.fingerprint()
        sketch = build_sketch("filter")
        assert (
            OEStore.state_key(sketch, {0: left}, remaining=1)
            != OEStore.state_key(sketch, {0: right}, remaining=1)
        )

    def test_missing_evaluation_yields_none(self):
        sketch = build_sketch("filter")
        # The bound table hole (node id of the hole) is absent from the map.
        assert OEStore.state_key(sketch, {}, remaining=1) is None

    def test_key_depends_on_unfilled_structure(self):
        table = Table(["a"], [[1]])
        filter_sketch = build_sketch("filter")
        select_sketch = build_sketch("select")
        evaluated = {0: table}
        assert (
            OEStore.state_key(filter_sketch, evaluated, remaining=1)
            == OEStore.state_key(select_sketch, evaluated, remaining=1)
        )
        # With the root *not* evaluated, the component name separates them.
        hole_id = table_holes(filter_sketch, unbound_only=False)[0].node_id
        partial = {hole_id: table}
        assert (
            OEStore.state_key(filter_sketch, partial, remaining=1)
            != OEStore.state_key(select_sketch, partial, remaining=1)
        )


class _RecordingCompleter(SketchCompleter):
    """Records, per OE key, the evaluated tables of every offered state."""

    def _admit(self, sketch, remaining, admitted=None):
        if not hasattr(self, "observations"):
            self.observations = {}
        evaluated = self.engine.evaluate_if_possible(sketch)
        if evaluated is not None:
            key = OEStore.state_key(sketch, evaluated, remaining)
            if key is not None:
                tables = tuple(
                    evaluated[node_id] for node_id in sorted(evaluated)
                )
                self.observations.setdefault(key, []).append(tables)
        return super()._admit(sketch, remaining, admitted=admitted)


class TestMergedStatesAreObservationallyEqual:
    def check_sketch(self, sketch, inputs, output):
        engine = DeductionEngine(inputs=inputs, output=output)
        completer = _RecordingCompleter(engine, oe_store=OEStore())
        for _program in completer.fill_sketch(sketch):
            pass
        merged_classes = 0
        for key, observations in completer.observations.items():
            for left, right in zip(observations, observations[1:]):
                merged_classes += 1
                assert len(left) == len(right), key
                for table_left, table_right in zip(left, right):
                    assert table_left.fingerprint() == table_right.fingerprint()
                    assert table_left.columns == table_right.columns
                    assert table_left.n_groups == table_right.n_groups
                    assert tables_equivalent(table_left, table_right, STRICT_POLICY)
        return merged_classes

    def test_property_random_tables_filter_chains(self):
        rng = random.Random(20260727)
        total_merged = 0
        for _trial in range(6):
            n_rows = rng.randint(3, 6)
            table = Table(
                ["g", "v", "w"],
                [
                    [rng.choice(["a", "b"]), rng.randint(0, 2), rng.randint(0, 1)]
                    for _ in range(n_rows)
                ],
            )
            output = Table(["g"], [["a"]])
            for shape in (("filter", "select"), ("select", "filter")):
                sketch = build_sketch(*shape)
                total_merged += self.check_sketch(sketch, [table], output)
        # The duplicate-rich value space must actually produce equal-key
        # states, otherwise this test is vacuous.
        assert total_merged > 0

    def test_property_on_gather_heavy_benchmark(self):
        benchmark = r_benchmark_suite().get("c3_exam_gather_unite_spread")
        inputs, output = list(benchmark.inputs), benchmark.output
        sketch = build_sketch("gather")
        merged = self.check_sketch(sketch, inputs, output)
        assert merged >= 0  # soundness assertions above are the substance


class TestBudgetRelease:
    def test_budget_aborted_runs_withdraw_their_admissions(self):
        # A run cut short by its per-sketch budget may have admitted states
        # whose subtrees were never explored; those keys must be withdrawn
        # so a later observationally equal state (here: the same sketch
        # retried with a fresh budget) is explored rather than merged --
        # otherwise merging could lose programs that --no-oe finds.
        from repro.core.completion import CompletionBudgetExceeded

        students = Table(["name", "age", "gpa"],
                         [["Alice", 8, 4.0], ["Bob", 18, 3.2], ["Tom", 12, 3.0]])
        target = Table(["name", "age"], [["Bob", 18], ["Tom", 12]])
        store = OEStore()

        engine = DeductionEngine(inputs=[students], output=target)
        starved = SketchCompleter(engine, budget=2, oe_store=store)
        with pytest.raises(CompletionBudgetExceeded):
            list(starved.fill_sketch(build_sketch("select", "filter")))
        assert len(store) == 0  # every admission of the aborted run withdrawn

        # With the released store, a retry over the same sketch behaves
        # exactly as it would against a brand-new store: the aborted run's
        # admissions suppress nothing (intra-run merges still happen).
        def retry(retry_store):
            engine = DeductionEngine(inputs=[students], output=target)
            completer = SketchCompleter(engine, oe_store=retry_store)
            programs = list(completer.fill_sketch(build_sketch("select", "filter")))
            return programs, completer.stats

        released_programs, released_stats = retry(store)
        fresh_programs, fresh_stats = retry(OEStore())
        assert released_programs
        assert [repr(p) for p in released_programs] == [repr(p) for p in fresh_programs]
        assert released_stats == fresh_stats

    def test_release_is_scoped_to_the_aborted_run(self):
        store = OEStore()
        assert store.admit(("r", 1, ("t", b"other-run")))
        store.release([("r", 1, ("t", b"not-present"))])  # harmless no-op
        assert len(store) == 1
        store.release([("r", 1, ("t", b"other-run"))])
        assert len(store) == 0


class TestAblationDifferential:
    NAMES = [
        "c1_prices_long_to_wide",
        "c2_orders_count_by_region",
        "c3_exam_gather_unite_spread",
        "c5_join_filter_large_orders",
    ]

    def fresh_suite(self):
        return r_benchmark_suite().subset(names=self.NAMES)

    def test_programs_are_byte_identical_with_and_without_oe(self):
        merged = run_suite(self.fresh_suite(), spec2_config, timeout=30, label="spec2")
        plain = run_suite(
            self.fresh_suite(), spec2_no_oe_config, timeout=30, label="spec2-no-oe"
        )
        programs = lambda run: [  # noqa: E731
            (o.benchmark, o.solved, o.program) for o in run.outcomes
        ]
        assert programs(merged) == programs(plain)
        assert sum(o.oe_merged for o in merged.outcomes) > 0
        assert all(o.oe_candidates == 0 for o in plain.outcomes)
        assert all(o.oe_merged == 0 for o in plain.outcomes)
        # Merging skips duplicated completion work, never adds any.
        assert sum(o.partial_programs for o in merged.outcomes) <= sum(
            o.partial_programs for o in plain.outcomes
        )

    def test_oe_counters_surface_through_synthesis_stats(self):
        benchmark = r_benchmark_suite().get("c3_exam_gather_unite_spread")
        example = Example.make(benchmark.inputs, benchmark.output)
        result = Morpheus(config=SynthesisConfig(timeout=30)).synthesize(example)
        assert result.solved
        assert result.stats.oe_candidates > 0
        assert result.stats.oe_merged > 0
        assert result.stats.oe_merged <= result.stats.oe_candidates
        plain = Morpheus(config=SynthesisConfig(timeout=30, oe=False)).synthesize(example)
        assert plain.stats.oe_candidates == 0
        assert plain.render() == result.render()
