"""Tier 1 of the two-tier deduction pipeline: compiled attribute prescreen.

Once partial evaluation has run, most deduction queries are conjunctions of
concrete integer inequalities: every evaluated node's ``row`` / ``col`` /
``group`` / ``newCols`` / ``newVals`` is a known integer, the example tables
pin the input and output attribute vectors, and only the un-evaluated spine
of the hypothesis carries genuinely unknown attributes.  Building ``Formula``
terms, Tseitin CNF and a SAT + simplex run for such a query wastes the bulk
of the deduction budget.

This module decides those queries with plain interval arithmetic instead.
Every hypothesis node gets an *attribute box* -- one ``[lo, hi]`` interval
per attribute -- and every component specification has a second, compiled
interpretation (see ``TRANSFERS`` in :mod:`repro.core.specs`): a transfer
function that tightens the boxes of a node and its table children exactly as
the first-order spec constrains their SMT variables.  A root-to-leaves sweep
(then leaves-to-root, then root-to-leaves again) propagates the ground facts
through the spine; if any box empties, the query is UNSAT and the SMT stack
is skipped entirely.

**The tier-1 invariant** (see DESIGN.md): the prescreen is *conservative*.
Every refinement below is implied by a constraint the SMT query asserts, so
an empty box proves the query UNSAT -- the prescreen may answer UNSAT, never
SAT.  Inconclusive sweeps fall through to the solver, which keeps verdicts
bit-identical with and without the prescreen by construction.  The property
tests in ``tests/core/test_propagation.py`` pin both directions: transfer
functions over-approximate their ``Formula`` twins, and prescreen-UNSAT
implies solver-UNSAT on random sketches.
"""

from __future__ import annotations

from math import inf
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .abstraction import SpecLevel

#: Attribute indices into a box (the order of the attribute vectors produced
#: by :meth:`repro.core.deduction.DeductionEngine.table_attributes`).
ROW, COL, GROUP, NEW_COLS, NEW_VALS = range(5)

#: An attribute box: one mutable ``[lo, hi]`` interval per attribute
#: (``hi`` may be ``math.inf`` for "unbounded").
Box = List[List[float]]

#: The compiled interpretation of one component spec: tightens the output
#: and input boxes in place, raising :class:`Infeasible` when a box empties.
TransferFunction = Callable[[Box, Sequence[Box], SpecLevel], None]


class Infeasible(Exception):
    """An attribute box became empty: the deduction query is UNSAT."""


def top_box() -> Box:
    """The unconstrained box (before normalisation)."""
    return [[0, inf], [0, inf], [0, inf], [0, inf], [0, inf]]


def point_box(attributes: Sequence[int]) -> Box:
    """The singleton box of a concrete attribute vector."""
    return [[value, value] for value in attributes]


def hull_box(attribute_vectors: Sequence[Sequence[int]]) -> Box:
    """The smallest box containing every given attribute vector.

    Used for unbound table holes: :math:`\\varphi_{in}` says the hole equals
    *one of* the input tables, and the hull is the box over-approximation of
    that disjunction.
    """
    return [
        [min(vector[i] for vector in attribute_vectors),
         max(vector[i] for vector in attribute_vectors)]
        for i in range(5)
    ]


def contains(box: Box, attributes: Sequence[int]) -> bool:
    """Whether a concrete attribute vector lies inside the box."""
    return all(lo <= value <= hi for (lo, hi), value in zip(box, attributes))


# ----------------------------------------------------------------------
# Interval refinement primitives (the compiled inequality vocabulary)
# ----------------------------------------------------------------------
def _lo(box: Box, i: int, bound: float) -> None:
    interval = box[i]
    if bound > interval[0]:
        interval[0] = bound
        if bound > interval[1]:
            raise Infeasible()


def _hi(box: Box, i: int, bound: float) -> None:
    interval = box[i]
    if bound < interval[1]:
        interval[1] = bound
        if bound < interval[0]:
            raise Infeasible()


def at_least(box: Box, i: int, value: float) -> None:
    """Enforce ``box[i] >= value``."""
    _lo(box, i, value)


def at_most(box: Box, i: int, value: float) -> None:
    """Enforce ``box[i] <= value``."""
    _hi(box, i, value)


def exact(box: Box, i: int, value: float) -> None:
    """Enforce ``box[i] == value``."""
    _lo(box, i, value)
    _hi(box, i, value)


def le(a: Box, i: int, b: Box, j: int, offset: float = 0) -> None:
    """Enforce ``a[i] <= b[j] + offset`` (tightens both boxes)."""
    _hi(a, i, b[j][1] + offset)
    _lo(b, j, a[i][0] - offset)


def ge(a: Box, i: int, b: Box, j: int, offset: float = 0) -> None:
    """Enforce ``a[i] >= b[j] + offset``."""
    _lo(a, i, b[j][0] + offset)
    _hi(b, j, a[i][1] - offset)


def lt(a: Box, i: int, b: Box, j: int, offset: float = 0) -> None:
    """Enforce ``a[i] < b[j] + offset`` (integer attributes: ``<= - 1``)."""
    le(a, i, b, j, offset - 1)


def gt(a: Box, i: int, b: Box, j: int, offset: float = 0) -> None:
    """Enforce ``a[i] > b[j] + offset``."""
    ge(a, i, b, j, offset + 1)


def eq(a: Box, i: int, b: Box, j: int, offset: float = 0) -> None:
    """Enforce ``a[i] == b[j] + offset``."""
    le(a, i, b, j, offset)
    ge(a, i, b, j, offset)


def le_sum(a: Box, i: int, b: Box, j: int, c: Box, k: int, offset: float = 0) -> None:
    """Enforce ``a[i] <= b[j] + c[k] + offset``."""
    _hi(a, i, b[j][1] + c[k][1] + offset)
    _lo(b, j, a[i][0] - c[k][1] - offset)
    _lo(c, k, a[i][0] - b[j][1] - offset)


def ge_min(a: Box, i: int, pairs: Sequence[Tuple[Box, int]]) -> None:
    """Enforce ``a[i] >= min(b[j] for (b, j) in pairs)``.

    Mirrors the ``Or(t1.row <= out.row, t2.row <= out.row)`` disjunction of
    the ``inner_join`` spec: the output's lower bound rises to the smallest
    input lower bound, and when all but one operand already exceeds the
    output's upper bound, the remaining operand must stay below it.
    """
    _lo(a, i, min(b[j][0] for b, j in pairs))
    feasible = [(b, j) for b, j in pairs if b[j][0] <= a[i][1]]
    if not feasible:
        raise Infeasible()
    if len(feasible) == 1:
        b, j = feasible[0]
        _hi(b, j, a[i][1])


def le_max(a: Box, i: int, pairs: Sequence[Tuple[Box, int]]) -> None:
    """Enforce ``a[i] <= max(b[j] for (b, j) in pairs)`` (dual of ge_min)."""
    _hi(a, i, max(b[j][1] for b, j in pairs))
    feasible = [(b, j) for b, j in pairs if b[j][1] >= a[i][0]]
    if not feasible:
        raise Infeasible()
    if len(feasible) == 1:
        b, j = feasible[0]
        _lo(b, j, a[i][0])


def normalize(box: Box, level: SpecLevel) -> None:
    """The per-node sanity constraints of :func:`repro.core.abstraction.nonnegativity`.

    The SMT query asserts these for every node variable, so applying them to
    every box preserves the tier-1 invariant.
    """
    _lo(box, ROW, 0)
    _lo(box, COL, 1)
    if level is SpecLevel.SPEC2:
        _lo(box, GROUP, 0)
        le(box, GROUP, box, ROW)
        _lo(box, NEW_COLS, 0)
        _lo(box, NEW_VALS, 0)
        le(box, NEW_COLS, box, COL)
        le(box, NEW_COLS, box, NEW_VALS)


# ----------------------------------------------------------------------
# The prescreen sweep
# ----------------------------------------------------------------------
#: Root-to-leaves, leaves-to-root, root-to-leaves.  Three alternating sweeps
#: push the ground facts (output attributes, evaluated subterms, input
#: bindings) through the un-evaluated spine in both directions; more rounds
#: would only matter for propagation chains longer than any hypothesis the
#: synthesizer builds (max_size bounds the spine), and a missed refinement
#: is conservative -- the query simply falls through to the solver.
SWEEP_ROUNDS = 3


def prescreen_infeasible(
    hypothesis,
    evaluated: Dict[int, object],
    attributes_of: Callable[[object], Tuple[int, ...]],
    input_attributes: Sequence[Tuple[int, ...]],
    output_attributes: Tuple[int, ...],
    level: SpecLevel,
) -> bool:
    """Decide the deduction query of *hypothesis* by interval propagation.

    Returns ``True`` when the query is certainly UNSAT (some attribute box
    emptied) and ``False`` when the sweep is inconclusive.  The walk mirrors
    :meth:`DeductionEngine.specification` / :meth:`~DeductionEngine.build_query`
    exactly: evaluated subterms become singleton boxes (their subtree
    contributes no further constraints), table holes become input boxes, and
    each un-evaluated application contributes its compiled transfer function.

    *hypothesis* nodes are duck-typed (``component`` attribute present for
    applications, ``binding`` for table holes) so this module stays
    import-cycle-free below :mod:`repro.core.hypothesis`.
    """
    boxes: Dict[int, Box] = {}
    #: (output box, input boxes, transfer) per un-evaluated application,
    #: collected parent-first so iterating forwards sweeps root-to-leaves.
    edges: List[Tuple[Box, List[Box], TransferFunction]] = []

    def build(node) -> Box:
        if node.node_id in evaluated:
            box = point_box(attributes_of(evaluated[node.node_id]))
        elif getattr(node, "component", None) is None:
            # A table hole: phi_in binds it to one input (or any of them).
            if node.binding is not None:
                box = point_box(input_attributes[node.binding])
            else:
                box = hull_box(input_attributes)
        else:
            box = top_box()
            boxes[node.node_id] = box
            child_boxes: List[Box] = []
            transfer = node.component.transfer
            if transfer is not None:
                edges.append((box, child_boxes, transfer))
            for child in node.table_children:
                child_boxes.append(build(child))
            return box
        boxes[node.node_id] = box
        return box

    try:
        root_box = build(hypothesis)
        # phi_out: the root equals the output table.  The output's group
        # attribute is symbolic (the example output carries no grouping
        # metadata), bounded exactly as ``abstract_attributes`` bounds it.
        rows = output_attributes[ROW]
        exact(root_box, ROW, rows)
        exact(root_box, COL, output_attributes[COL])
        if level is SpecLevel.SPEC2:
            at_least(root_box, GROUP, 1)
            at_most(root_box, GROUP, max(rows, 1))
            exact(root_box, NEW_COLS, output_attributes[NEW_COLS])
            exact(root_box, NEW_VALS, output_attributes[NEW_VALS])
        for box in boxes.values():
            normalize(box, level)
        for sweep in range(SWEEP_ROUNDS):
            ordered = edges if sweep % 2 == 0 else reversed(edges)
            for out_box, in_boxes, transfer in ordered:
                transfer(out_box, in_boxes, level)
                normalize(out_box, level)
                for in_box in in_boxes:
                    normalize(in_box, level)
    except Infeasible:
        return True
    return False


def ground_check(
    transfer: Optional[TransferFunction],
    output_attributes: Sequence[int],
    input_attribute_vectors: Sequence[Sequence[int]],
    level: SpecLevel,
) -> bool:
    """The ground evaluator: plug concrete attribute tuples into one spec.

    Singleton boxes make every transfer refinement an exact inequality test,
    so this decides whether the concrete attribute vectors satisfy the
    component's first-order specification (plus the per-node sanity
    constraints) without constructing a single ``Formula``.  Returns ``True``
    when the ground instance is consistent.
    """
    if transfer is None:
        return True
    out_box = point_box(output_attributes)
    in_boxes = [point_box(vector) for vector in input_attribute_vectors]
    try:
        normalize(out_box, level)
        for box in in_boxes:
            normalize(box, level)
        transfer(out_box, in_boxes, level)
    except Infeasible:
        return False
    return True
