"""Statistical cost model for hypothesis ranking (Section 8 of the paper).

Morpheus orders the worklist of hypotheses by a cost metric: hypotheses are
explored in increasing size (Occam's razor) and, within the same size, in
decreasing likelihood under a 2-gram model of component sequences trained on
existing code.  :class:`NGramModel` is a Laplace-smoothed bigram model over
component names; :class:`CostModel` combines it with the size ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from .corpus import training_sentences

#: Sentence delimiters used by the bigram model.
SENTENCE_START = "<s>"
SENTENCE_END = "</s>"


class NGramModel:
    """A bigram language model with Laplace (add-one) smoothing."""

    def __init__(self, vocabulary: Iterable[str]) -> None:
        self.vocabulary = tuple(sorted(set(vocabulary)))
        self._unigram_counts: Dict[str, int] = {}
        self._bigram_counts: Dict[Tuple[str, str], int] = {}

    def train(self, sentences: Iterable[Sequence[str]]) -> None:
        """Count unigrams and bigrams over the training sentences."""
        for sentence in sentences:
            tokens = [SENTENCE_START] + [token for token in sentence] + [SENTENCE_END]
            for left, right in zip(tokens, tokens[1:]):
                self._unigram_counts[left] = self._unigram_counts.get(left, 0) + 1
                self._bigram_counts[(left, right)] = self._bigram_counts.get((left, right), 0) + 1

    def bigram_log_probability(self, left: str, right: str) -> float:
        """``log P(right | left)`` with add-one smoothing."""
        vocabulary_size = len(self.vocabulary) + 2  # plus <s> and </s>
        bigram = self._bigram_counts.get((left, right), 0)
        unigram = self._unigram_counts.get(left, 0)
        return math.log((bigram + 1) / (unigram + vocabulary_size))

    def sequence_log_probability(self, sequence: Sequence[str], closed: bool = False) -> float:
        """Log probability of a component sequence.

        ``closed`` adds the end-of-sentence transition, which is appropriate
        for complete programs but not for partial hypotheses that may still
        be extended.
        """
        tokens = [SENTENCE_START] + list(sequence)
        if closed:
            tokens.append(SENTENCE_END)
        total = 0.0
        for left, right in zip(tokens, tokens[1:]):
            total += self.bigram_log_probability(left, right)
        return total


@dataclass
class CostModel:
    """Scores hypotheses by size and by the bigram likelihood of their components.

    Lower scores are explored first.  The score is
    ``size_weight * size - log P(sequence)``: every additional component costs
    ``size_weight`` (Occam's razor) plus however unlikely the new bigram is
    under the statistical model.  A small ``size_weight`` lets a very
    idiomatic large pipeline be explored before an exotic small one, which is
    the single-core analogue of the paper's one-search-thread-per-size
    strategy.
    """

    model: NGramModel = None
    size_weight: float = 1.0

    def __post_init__(self):
        if self.model is None:
            self.model = default_ngram_model()

    def score(self, size: int, sequence: Sequence[str]) -> float:
        """Lower scores are explored first."""
        likelihood = self.model.sequence_log_probability(sequence)
        return self.size_weight * size - likelihood

    def priority(self, size: int, sequence: Sequence[str]) -> Tuple[float, int]:
        """A sortable priority key."""
        return (self.score(size, sequence), size)


@dataclass
class UniformCostModel(CostModel):
    """Ablation: size-only ordering with no statistical ranking."""

    def priority(self, size: int, sequence: Sequence[str]) -> Tuple[float, int]:
        return (float(size), size)

    def score(self, size: int, sequence: Sequence[str]) -> float:
        return float(size)


def default_ngram_model() -> NGramModel:
    """The bigram model trained on the built-in corpus."""
    sentences = training_sentences()
    vocabulary = {token for sentence in sentences for token in sentence}
    model = NGramModel(vocabulary)
    model.train(sentences)
    return model
