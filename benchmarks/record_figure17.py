"""Record the Figure-17 perf trajectory as machine-readable JSON.

Runs the representative subset under the five Figure-17 configurations
(deduction x partial-evaluation grid) and writes ``BENCH_figure17.json``
with per-task wall times and the deterministic counters, including the
batched sibling-evaluation and residual-SMT session counters the
partial-evaluation curves exercise.  A ``backend_comparison`` block re-runs
the full-strength configuration on the numpy columnar backend (when
installed) and gates on byte-identical programs.  Re-record the checked-in
copy with::

    PYTHONPATH=src python benchmarks/record_figure17.py --timeout 20 --out BENCH_figure17.json

(Absolute numbers depend on the machine; the counters are deterministic.)
"""

import argparse
import json
import platform
import sys

from repro.baselines.configurations import ALL_FIGURE17_CONFIGS, override_config
from repro.benchmarks import r_benchmark_suite, run_suite, suite_runs_json
from repro.dataframe.backend import numpy_available

from conftest import REPRESENTATIVE_BENCHMARKS


def backend_comparison(suite, pe_run, timeout: float) -> dict:
    """Re-run spec2-pe on the numpy backend and pair the walls and programs."""
    if not numpy_available():
        return {"numpy_available": False}
    numpy_run = run_suite(
        suite,
        override_config(ALL_FIGURE17_CONFIGS["spec2-pe"], backend="numpy"),
        timeout=timeout,
        label="spec2-pe-numpy",
    )
    programs = lambda run: [  # noqa: E731
        (o.benchmark, o.solved, o.program) for o in run.outcomes
    ]
    python_wall = round(sum(o.elapsed for o in pe_run.outcomes), 4)
    numpy_wall = round(sum(o.elapsed for o in numpy_run.outcomes), 4)
    return {
        "numpy_available": True,
        "programs_identical": programs(pe_run) == programs(numpy_run),
        "wall_python_s": python_wall,
        "wall_numpy_s": numpy_wall,
        "wall_ratio": round(python_wall / numpy_wall, 3) if numpy_wall else None,
    }


def record(timeout: float, full: bool = False) -> dict:
    suite = r_benchmark_suite()
    if not full:
        suite = suite.subset(names=REPRESENTATIVE_BENCHMARKS)
    runs = {
        label: run_suite(suite, factory, timeout=timeout, label=label)
        for label, factory in ALL_FIGURE17_CONFIGS.items()
    }
    payload = suite_runs_json(runs)
    pe = payload["spec2-pe"]
    no_pe = payload["spec2-no-pe"]
    return {
        "suite": "figure17-full" if full else "figure17-representative",
        "timeout_s": timeout,
        "python": platform.python_version(),
        "runs": payload,
        # The partial-evaluation differential the figure plots, plus the
        # counters the batched evaluator and residual sessions add: both
        # are exclusive to the -pe configurations, so the -no-pe row pins
        # them at zero.
        "partial_evaluation_comparison": {
            "wall_total_s": pe["wall_total_s"],
            "wall_total_no_pe_s": no_pe["wall_total_s"],
            "solved": pe["solved"],
            "solved_no_pe": no_pe["solved"],
            "sibling_batches": pe["sibling_batches"],
            "batched_fills": pe["batched_fills"],
            "smt_sessions": pe["smt_sessions"],
            "smt_session_reuse": pe["smt_session_reuse"],
        },
        "backend_comparison": backend_comparison(suite, runs["spec2-pe"], timeout),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=20.0)
    parser.add_argument("--out", default="BENCH_figure17.json")
    parser.add_argument(
        "--full", action="store_true",
        help="run all 80 r-suite benchmarks instead of the representative subset",
    )
    args = parser.parse_args(argv)
    payload = record(args.timeout, full=args.full)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    pe = payload["partial_evaluation_comparison"]
    print(
        f"spec2-pe wall {pe['wall_total_s']}s ({pe['solved']} solved) vs "
        f"no-pe {pe['wall_total_no_pe_s']}s ({pe['solved_no_pe']} solved); "
        f"sibling batches {pe['sibling_batches']} ({pe['batched_fills']} fills), "
        f"smt sessions {pe['smt_sessions']} (+{pe['smt_session_reuse']} reused)",
        file=sys.stderr,
    )
    backend = payload["backend_comparison"]
    if backend["numpy_available"]:
        print(
            f"backend A/B: {backend['wall_python_s']}s python vs "
            f"{backend['wall_numpy_s']}s numpy, "
            f"programs identical: {backend['programs_identical']}",
            file=sys.stderr,
        )
        if not backend["programs_identical"]:
            return 1
    else:
        print("backend A/B: numpy unavailable, skipped", file=sys.stderr)
    # The batched evaluator and the residual sessions must actually engage
    # on the -pe configurations (nonzero deterministic counters).
    if not pe["sibling_batches"] or not pe["smt_sessions"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
