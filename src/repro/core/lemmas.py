"""Conflict-driven lemma store for the deduction engine.

When a deduction query is UNSAT, the incremental solver names the assumptions
its refutation used (the unsat core).  Each hypothesis-dependent assumption
corresponds to one *descriptor* -- a structural fact about the hypothesis,
keyed by the node's path from the root:

* ``("spec", path, component)`` -- the component applied at *path*;
* ``("bind", path, index)`` -- the input binding of the table hole at *path*
  (``index is None`` for the unbound-hole disjunction over all inputs);
* ``("eval", path, attributes)`` -- the abstraction of the concrete table a
  complete subterm at *path* evaluated to.

A *lemma* is the set of descriptors mined from one core.  Because the
formulas behind the descriptors depend on the hypothesis only through node
*identity* (the ``n<id>`` variable families), and node ids map one-to-one to
tree paths, any other hypothesis exhibiting the same descriptors asserts a
renamed copy of the same core -- a subset of its own deduction query -- and
is therefore UNSAT too.  The synthesizer can thus reject whole families of
sibling hypotheses with a subset test, never touching the solver.

Lemmas are only valid for the synthesis problem they were mined from (the
cores also rest on the example formula), so the store lives and dies with one
:class:`~repro.core.deduction.DeductionEngine`; parallel workers get a fresh
store per task, keeping parallel runs bit-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

#: One structural fact about a hypothesis (see the module docstring).
Descriptor = Tuple
#: A mined blocking lemma: a set of descriptors that is jointly infeasible.
Lemma = FrozenSet[Descriptor]


def _sort_key(descriptor: Descriptor) -> Tuple[str, Tuple, str]:
    """A total order over descriptors (payloads are mixed types)."""
    kind, path = descriptor[0], descriptor[1]
    return (kind, tuple(path), repr(descriptor[2:]))


def encode_descriptor(descriptor: Descriptor) -> list:
    """A JSON-able encoding of one descriptor (tuples become lists)."""
    kind, path = descriptor[0], descriptor[1]
    if kind == "eval":
        return [kind, list(path), list(descriptor[2])]
    # "spec" carries a component name, "bind" an input index or None --
    # both JSON-native already.
    return [kind, list(path), descriptor[2]]


def decode_descriptor(encoded) -> Descriptor:
    """Invert :func:`encode_descriptor` back to the in-memory tuple form."""
    kind, path, payload = encoded
    if kind == "eval":
        return (kind, tuple(path), tuple(int(value) for value in payload))
    if kind == "spec":
        return (kind, tuple(path), str(payload))
    if kind == "bind":
        return (kind, tuple(path), None if payload is None else int(payload))
    raise ValueError(f"unknown descriptor kind {kind!r}")


@dataclass
class LemmaStoreStats:
    """Counters describing one lemma store's activity."""

    learned: int = 0
    #: Lemmas not stored because an existing lemma already subsumed them.
    subsumed: int = 0
    #: Stored lemmas later removed because a more general lemma arrived.
    retired: int = 0
    #: Lemmas rejected because the store was full.
    overflow: int = 0
    lookups: int = 0
    #: Lookups answered "blocked" (each one saved an SMT query).
    prunes: int = 0

    def merge(self, other: "LemmaStoreStats") -> None:
        """Accumulate another stats object into this one."""
        self.learned += other.learned
        self.subsumed += other.subsumed
        self.retired += other.retired
        self.overflow += other.overflow
        self.lookups += other.lookups
        self.prunes += other.prunes


@dataclass
class LemmaStore:
    """Blocking lemmas mined from deduction unsat cores.

    Each lemma is indexed under one *designated* descriptor (its smallest
    member under a canonical order).  A lookup walks the hypothesis's own
    descriptors and runs the subset test only for lemmas designated by one of
    them, so every stored lemma is examined at most once per query.
    """

    maxsize: Optional[int] = 256
    stats: LemmaStoreStats = field(default_factory=LemmaStoreStats)

    def __post_init__(self) -> None:
        self._by_key: Dict[Descriptor, List[Lemma]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def lemmas(self) -> List[Lemma]:
        """Every stored lemma (mainly for tests and reporting)."""
        return [lemma for bucket in self._by_key.values() for lemma in bucket]

    def clear(self) -> None:
        """Drop every lemma (counters are left untouched)."""
        self._by_key.clear()
        self._count = 0

    # ------------------------------------------------------------------
    def add(self, descriptors) -> bool:
        """Learn a lemma; returns False when it was subsumed or overflowed.

        A new lemma that is a *superset* of a stored one adds nothing (the
        stored lemma already blocks everything the new one would).  A new
        lemma that is a *subset* of stored ones is strictly more general and
        replaces them.
        """
        lemma: Lemma = frozenset(descriptors)
        if not lemma:
            raise ValueError("refusing the empty lemma (it would block everything)")
        for stored in self.lemmas():
            if stored <= lemma:
                self.stats.subsumed += 1
                return False
        retired = self._remove_supersets(lemma)
        self.stats.retired += retired
        if self.maxsize is not None and self._count >= self.maxsize:
            self.stats.overflow += 1
            return False
        key = min(lemma, key=_sort_key)
        self._by_key.setdefault(key, []).append(lemma)
        self._count += 1
        self.stats.learned += 1
        return True

    def _remove_supersets(self, lemma: Lemma) -> int:
        removed = 0
        for key in list(self._by_key):
            bucket = self._by_key[key]
            kept = [stored for stored in bucket if not lemma <= stored]
            if len(kept) != len(bucket):
                removed += len(bucket) - len(kept)
                if kept:
                    self._by_key[key] = kept
                else:
                    del self._by_key[key]
        self._count -= removed
        return removed

    # ------------------------------------------------------------------
    def export_entries(self) -> List[list]:
        """Every stored lemma as a JSON-able entry (sorted, deterministic).

        Transport format for the warm-start knowledge base: each lemma is a
        sorted list of encoded descriptors (see :func:`encode_descriptor`).
        """
        entries = [
            sorted(
                (encode_descriptor(descriptor) for descriptor in lemma),
                key=lambda encoded: repr(encoded),
            )
            for lemma in self.lemmas()
        ]
        entries.sort(key=lambda entry: repr(entry))
        return entries

    def import_entries(self, entries) -> int:
        """Re-learn previously exported lemmas; returns how many were stored.

        Only valid for the *same* synthesis task the entries were exported
        from (lemmas rest on the example formula) -- the knowledge base
        enforces this by keying exports on the task's table fingerprints.
        Malformed entries are skipped, not raised: a KB written by a newer
        schema must degrade to a cold start.
        """
        imported = 0
        for entry in entries:
            try:
                descriptors = [decode_descriptor(encoded) for encoded in entry]
            except (ValueError, TypeError, IndexError):
                continue
            if descriptors and self.add(descriptors):
                imported += 1
        return imported

    # ------------------------------------------------------------------
    def blocks(self, descriptors: FrozenSet[Descriptor]) -> bool:
        """True when some stored lemma is a subset of *descriptors*."""
        self.stats.lookups += 1
        for descriptor in descriptors:
            for lemma in self._by_key.get(descriptor, ()):
                if lemma <= descriptors:
                    self.stats.prunes += 1
                    return True
        return False
