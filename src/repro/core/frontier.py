"""The explicit search frontier and the anytime search kernel.

Algorithm 1 of the paper interleaves hypothesis ranking, sketch completion
and checking in one recursive loop; the original ``Morpheus.synthesize``
reproduced that shape, so the enumeration state was implicit in the Python
call stack -- it could not be paused, resumed, interleaved fairly across
tasks, or deduplicated across sketches.  This module makes that state
explicit:

* :class:`Frontier` -- the priority frontier of pending search states.  It
  has two lanes: a cost-ordered heap of **hypothesis** states (the worklist
  of Algorithm 1) and a LIFO lane of **continuation** states (the sketches,
  completion runs and refinement fan-out of the hypothesis currently being
  expanded).  Continuations always pop before the next hypothesis, and the
  LIFO discipline walks them depth-first, so the frontier pops in *exactly*
  the order the recursion explored -- which is what keeps the first
  synthesized program byte-identical to the recursive implementation.
* :class:`SearchKernel` -- the anytime search engine: ``step()`` processes
  one frontier state (at most one deduction query or one candidate hole
  filling), ``run(deadline)`` steps until a deadline, a solution quota, or
  exhaustion.  Kernels are cheap to hold suspended: a service can run many
  of them round-robin (see :class:`repro.engine.parallel.KernelInterleaver`)
  and a suspended kernel serialises its resume state with
  :meth:`SearchKernel.snapshot`.

Resume-state contract
---------------------

``snapshot()`` captures the search *position* at hypothesis granularity: the
pending hypothesis lane (as component-name trees), the duplicate-detection
signatures, the tie-break and node-id counters, and the hypothesis whose
expansion was in flight.  Continuation states (in-progress sketch
completions) are deliberately **not** captured -- they hold live argument
iterators -- so ``restore()`` re-expands the in-flight hypothesis from
scratch.  Resuming therefore repeats at most one hypothesis expansion;
everything before and after is identical, and the restored kernel finds the
same first program the uninterrupted kernel would have found (memo caches
start cold, so only timing and cache counters differ).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from ..components.errors import PRUNABLE_ERRORS
from ..dataframe.compare import tables_match_for_synthesis
from ..dataframe.profiling import execution_stats
from ..engine.kb import current_kb
from ..smt.solver import formula_cache_stats
from .completion import (
    CompletionBudgetExceeded,
    CompletionRun,
    CompletionTimeout,
    SketchCompleter,
)
from .cost import CostModel
from .deduction import DeductionEngine
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    component_sequence,
    evaluate,
    hypothesis_size,
    initial_hypothesis,
    is_complete,
    render_program,
    sketches,
    table_holes,
    refine,
)
from .oe import OEStore
from .types import Type

#: Snapshot format version (bump on incompatible changes).
SNAPSHOT_VERSION = 1

#: Keys every version-1 snapshot must carry (``restore`` validates the set
#: up front so stale or hand-edited payloads fail with a typed error).
SNAPSHOT_REQUIRED_KEYS = ("version", "k", "tiebreak", "node_counter", "visited", "pending")


class SnapshotError(ValueError):
    """A resume-state payload could not be interpreted."""


class SnapshotVersionError(SnapshotError):
    """The snapshot's schema version (or shape) does not match this kernel.

    Raised by :meth:`SearchKernel.restore` on a missing/mismatched ``version``
    field or a payload missing required keys -- the typed alternative to the
    raw ``KeyError`` a stale or corrupt snapshot used to produce.
    """


# ----------------------------------------------------------------------
# Search states
# ----------------------------------------------------------------------
@dataclass
class HypothesisState:
    """A pending hypothesis in the cost-ordered lane."""

    hypothesis: Hypothesis
    tiebreak: int


@dataclass
class SketchState:
    """A sketch awaiting its deduction check and completion."""

    sketch: Hypothesis


@dataclass
class CompletionState:
    """An in-progress iterative completion of one sketch."""

    run: CompletionRun


@dataclass
class RefineState:
    """The refinement fan-out of one expanded hypothesis (runs last)."""

    hypothesis: Hypothesis


class Frontier:
    """The explicit frontier of pending search states.

    Two lanes: a cost-ordered heap of :class:`HypothesisState` (ordered by
    the cost model's priority, ties broken by insertion order, exactly like
    the worklist of Algorithm 1) and a LIFO continuation lane holding the
    sketch / completion / refinement states of the hypothesis currently
    being expanded.  ``pop()`` drains the continuation lane first, so one
    hypothesis is fully expanded before the next is ranked -- the recursion
    order, made explicit.
    """

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._heap: List[Tuple[Tuple[float, int], int, Hypothesis]] = []
        self._continuations: list = []
        #: Peak number of simultaneously pending states (both lanes).
        self.peak = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._continuations)

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._continuations)

    @property
    def pending_hypotheses(self) -> int:
        """Number of hypotheses waiting in the cost-ordered lane."""
        return len(self._heap)

    @property
    def has_continuations(self) -> bool:
        """True while an expansion's sketch/completion/refine states are pending."""
        return bool(self._continuations)

    def _note_size(self) -> None:
        size = len(self)
        if size > self.peak:
            self.peak = size

    # ------------------------------------------------------------------
    def push_hypothesis(self, hypothesis: Hypothesis, tiebreak: int) -> None:
        """Enqueue a hypothesis under the cost model's priority."""
        priority = self._cost_model.priority(
            hypothesis_size(hypothesis), component_sequence(hypothesis)
        )
        heapq.heappush(self._heap, (priority, tiebreak, hypothesis))
        self._note_size()

    def push_continuation(self, state) -> None:
        """Push a sketch/completion/refinement state onto the LIFO lane."""
        self._continuations.append(state)
        self._note_size()

    def pop(self):
        """Pop the next state: continuations first (LIFO), then best hypothesis."""
        if self._continuations:
            return self._continuations.pop()
        _, tiebreak, hypothesis = heapq.heappop(self._heap)
        return HypothesisState(hypothesis, tiebreak)

    # ------------------------------------------------------------------
    def heap_entries(self) -> List[Tuple[int, Hypothesis]]:
        """The pending hypothesis lane as ``(tiebreak, hypothesis)`` pairs."""
        return [(tiebreak, hypothesis) for _, tiebreak, hypothesis in self._heap]

    def continuation_states(self) -> list:
        """The pending continuation-lane states (in push order, read-only)."""
        return list(self._continuations)


# ----------------------------------------------------------------------
# Hypothesis (de)serialisation for the resume state
# ----------------------------------------------------------------------
def encode_hypothesis(hypothesis: Hypothesis) -> dict:
    """A JSON-able description of a worklist hypothesis.

    Worklist hypotheses are pure refinement trees -- their first-order holes
    are unfilled and their table holes unbound -- which is what keeps the
    resume state plain data (component *names*, not component objects).
    """
    if isinstance(hypothesis, Hole):
        return {
            "kind": "hole",
            "id": hypothesis.node_id,
            "type": hypothesis.hole_type.value,
            "binding": hypothesis.binding,
        }
    values = []
    for hole in hypothesis.value_children:
        if hole.value is not None:
            raise ValueError(
                "only worklist hypotheses (unfilled first-order holes) are serialisable"
            )
        values.append(
            {"kind": "hole", "id": hole.node_id, "type": hole.hole_type.value}
        )
    return {
        "kind": "apply",
        "id": hypothesis.node_id,
        "component": hypothesis.component.name,
        "children": [encode_hypothesis(child) for child in hypothesis.table_children],
        "values": values,
    }


def decode_hypothesis(payload: dict, library) -> Hypothesis:
    """Rebuild a hypothesis from :func:`encode_hypothesis` output."""
    if payload["kind"] == "hole":
        return Hole(
            payload["id"], Type(payload["type"]), binding=payload.get("binding")
        )
    component = library.by_name(payload["component"])
    children = tuple(
        decode_hypothesis(child, library) for child in payload["children"]
    )
    values = tuple(
        Hole(value["id"], Type(value["type"])) for value in payload["values"]
    )
    return Apply(payload["id"], component, children, values)


# ----------------------------------------------------------------------
# The search kernel
# ----------------------------------------------------------------------
class SearchKernel:
    """Anytime, resumable search engine for one synthesis problem.

    The kernel owns the deduction engine, the sketch completer, the
    observational-equivalence store and the frontier; ``step()`` advances
    the search by one state, ``run()`` drives it to a deadline, a solution
    quota (``k``) or exhaustion.  Found programs accumulate in
    :attr:`solutions` in discovery order (the first entry is byte-identical
    to what the recursive Algorithm 1 returned).
    """

    def __init__(
        self,
        example,
        config,
        library,
        cost_model: CostModel,
        stats,
        k: int = 1,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.example = example
        self.config = config
        self.library = library
        self.stats = stats
        self.k = k
        # Warm-start tier: bind the active knowledge base (if any) to this
        # library's version hash, so facts persisted under a different
        # component set are never found (invalidation by keying).
        kb = current_kb()
        kb_view = kb.view(library.version_hash()) if kb is not None else None
        self.engine = DeductionEngine(
            inputs=example.inputs,
            output=example.output,
            level=config.spec_level,
            use_partial_evaluation=config.partial_evaluation,
            enabled=config.deduction,
            cdcl=config.cdcl and config.deduction,
            prescreen=config.prescreen and config.deduction,
            kb_view=kb_view,
            stats=stats.deduction,
        )
        self.oe_store = OEStore() if config.oe else None
        self.completer = SketchCompleter(
            self.engine,
            deadline=None,
            budget=config.completion_budget,
            stats=stats.completion,
            oe_store=self.oe_store,
        )
        self.frontier = Frontier(cost_model)
        self.solutions: List[Hypothesis] = []
        #: Rendered programs a pre-restore kernel already found: re-finding
        #: one (the re-expanded in-flight hypothesis repeats its completion
        #: work) must not consume the remaining solution quota again.
        self._already_found: set = set()
        self._deadline: Optional[float] = None
        self._visited: set = set()
        #: Plain int counters (not itertools.count) so ``snapshot()`` can
        #: read them without consuming values from the live kernel.
        self._tiebreak = 0
        self._node_counter = 1
        self._in_flight: Optional[Tuple[Hypothesis, int]] = None
        #: Active time spent inside ``run()``/``step()`` (the per-task clock
        #: when many kernels share one process).
        self.active_seconds = 0.0
        #: Frontier states processed so far (one per ``step()`` call).  Not
        #: part of the resume state -- like timing, it describes work done by
        #: *this* kernel object, so a restored kernel counts from zero and
        #: long-lived callers accumulate across kernels themselves.
        self.steps_taken = 0
        self._push(initial_hypothesis())
        # Baselines for slicing the process-wide counters: taken *after* the
        # engine construction above, so the example-table fingerprinting the
        # constructor performs -- whose hit/miss split depends on whether the
        # (process-cached) example tables were fingerprinted by an earlier
        # run -- stays outside this run's counting window.  That exclusion
        # is what keeps the per-run execution counters byte-identical across
        # schedulers and repeat runs.
        self.solver_cache_baseline = formula_cache_stats().snapshot()
        self.execution_baseline = execution_stats().snapshot()

    # ------------------------------------------------------------------
    @property
    def solved(self) -> bool:
        """True once at least one program passed CHECK."""
        return bool(self.solutions)

    @property
    def done(self) -> bool:
        """True when the solution quota is met or the frontier is exhausted."""
        return len(self.solutions) >= self.k or not self.frontier

    @property
    def exhausted(self) -> bool:
        """True when no pending search state remains."""
        return not self.frontier

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Set the wall-clock deadline consulted by ``run``/``step``."""
        self._deadline = deadline
        self.completer.deadline = deadline

    def _expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    # ------------------------------------------------------------------
    def run(
        self,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> bool:
        """Step until the deadline, the step budget, the quota, or exhaustion.

        Returns ``True`` while pending work remains (call again to continue
        -- the anytime contract), ``False`` when the search is finished.
        The *deadline* parameter always (re)sets the kernel's deadline;
        passing ``None`` clears any deadline a previous call installed, so a
        bare ``run()`` after a deadline-bounded one drains the search rather
        than spinning on the stale deadline.
        """
        self.set_deadline(deadline)
        started = perf_counter()
        steps = 0
        try:
            while self.frontier and len(self.solutions) < self.k:
                if self._expired():
                    break
                if max_steps is not None and steps >= max_steps:
                    break
                try:
                    self.step()
                except CompletionTimeout:
                    break
                steps += 1
        finally:
            self.active_seconds += perf_counter() - started
        return bool(self.frontier) and len(self.solutions) < self.k

    def step(self) -> None:
        """Process one frontier state (the bounded anytime work unit)."""
        if not self.frontier:
            return
        self.steps_taken += 1
        state = self.frontier.pop()
        if isinstance(state, HypothesisState):
            self._expand_hypothesis(state)
        elif isinstance(state, SketchState):
            self._expand_sketch(state)
        elif isinstance(state, CompletionState):
            self._advance_completion(state)
        else:
            try:
                self._refine(state.hypothesis)
            except CompletionTimeout:
                # Deadline mid-fan-out: re-push so a resumed run finishes
                # the remaining refinements (already-pushed ones dedup via
                # the visited set, so re-running the state is idempotent).
                self.frontier.push_continuation(state)
                raise
            self._in_flight = None

    # ------------------------------------------------------------------
    def _push(self, hypothesis: Hypothesis, tiebreak: Optional[int] = None) -> None:
        signature = hypothesis_signature(hypothesis)
        if signature in self._visited:
            return
        self._visited.add(signature)
        if tiebreak is None:
            tiebreak = self._tiebreak
            self._tiebreak += 1
        self.frontier.push_hypothesis(hypothesis, tiebreak)
        self.stats.hypotheses_enqueued += 1

    def _next_node_id(self) -> int:
        node_id = self._node_counter
        self._node_counter += 1
        return node_id

    def _expand_hypothesis(self, state: HypothesisState) -> None:
        """Lines 9-18 of Algorithm 1, decomposed into continuation states."""
        hypothesis = state.hypothesis
        self._in_flight = (hypothesis, state.tiebreak)
        self.stats.hypotheses_expanded += 1
        feasible = self.engine.deduce(hypothesis)
        # The refinement fan-out runs after completion (it is pushed first,
        # popped last), exactly as in the recursive loop.
        self.frontier.push_continuation(RefineState(hypothesis))
        if not feasible or isinstance(hypothesis, Hole):
            # The bare hypothesis ?0 can only be "the identity program",
            # which is never the answer to a non-trivial task; skip it.
            return
        for sketch in reversed(list(sketches(hypothesis, len(self.example.inputs)))):
            self.frontier.push_continuation(SketchState(sketch))

    def _expand_sketch(self, state: SketchState) -> None:
        """Line 11-12: the sketch-level deduction check."""
        self.stats.sketches_generated += 1
        if not self.engine.deduce(state.sketch):
            self.stats.sketches_rejected += 1
            return
        self.frontier.push_continuation(
            CompletionState(self.completer.start(state.sketch))
        )

    def _advance_completion(self, state: CompletionState) -> None:
        """Advance one completion run by one frame; CHECK surfaced programs."""
        try:
            candidate = state.run.step()
        except CompletionBudgetExceeded:
            # This sketch used up its budget; withdraw its OE admissions
            # (their subtrees may be unexplored, so a later equal state must
            # be allowed to run) and move on to the next state.
            state.run.release()
            return
        except CompletionTimeout:
            # The deadline fired before the step did any work (the run
            # restored its in-flight frame); re-push so a later run() with
            # a fresh deadline resumes this completion exactly here.
            self.frontier.push_continuation(state)
            raise
        if candidate is not None:
            self.stats.programs_checked += 1
            if self._check(candidate):
                if self._already_found:
                    text = render_program(candidate)
                    if text in self._already_found:
                        # A re-find of a pre-restore solution; the caller
                        # already holds it.  Discard (each program surfaces
                        # once per search) and keep looking.
                        self._already_found.discard(text)
                        if not state.run.exhausted:
                            self.frontier.push_continuation(state)
                        return
                self.solutions.append(candidate)
                if len(self.solutions) >= self.k:
                    return
        if not state.run.exhausted:
            self.frontier.push_continuation(state)

    def _refine(self, hypothesis: Hypothesis) -> None:
        """Lines 15-18 of Algorithm 1: replace one table hole per component.

        The deadline is re-checked inside the fan-out so a refinement step
        over a large library cannot overshoot the budget; expiry raises
        (rather than silently truncating the fan-out) so a resumed kernel
        re-runs this state and enqueues the refinements it missed.
        """
        if hypothesis_size(hypothesis) >= self.config.max_size:
            return
        for hole in table_holes(hypothesis, unbound_only=True):
            for component in self.library:
                if self._expired():
                    raise CompletionTimeout()
                refined = refine(hypothesis, hole, component, self._next_node_id)
                self._push(refined)

    def _check(self, candidate: Hypothesis) -> bool:
        """CHECK(p, E): run the program and compare against the expected output.

        Evaluation goes through the engine's evaluation memo and
        fingerprint-keyed execution cache, so the sub-programs the completer
        already executed are never re-run here.
        """
        if not is_complete(candidate):
            return False
        try:
            actual = evaluate(
                candidate, self.example.inputs,
                memo=self.engine.evaluation_memo,
                exec_cache=self.engine.execution_cache,
            )
        except (EvaluationFailure, *PRUNABLE_ERRORS):
            return False
        started = perf_counter()
        matched = tables_match_for_synthesis(actual, self.example.output)
        execution_stats().compare_time += perf_counter() - started
        return matched

    # ------------------------------------------------------------------
    # Resume state
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The kernel's serialisable resume state (see the module docstring).

        Read-only: the live kernel can keep running afterwards.  Found
        solutions are *not* captured as programs (complete programs carry
        concrete argument objects) -- the caller keeps them.  The snapshot
        stores the *remaining* solution quota plus the found programs'
        rendered text, so a restored kernel searches for exactly the missing
        count and does not let a re-found pre-snapshot program consume it.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "k": max(0, self.k - len(self.solutions)),
            "found": [render_program(program) for program in self.solutions],
            "tiebreak": self._tiebreak,
            "node_counter": self._node_counter,
            "visited": sorted(self._visited),
            "pending": [
                {"tiebreak": tiebreak, "hypothesis": encode_hypothesis(hypothesis)}
                for tiebreak, hypothesis in self.frontier.heap_entries()
            ],
            "in_flight": (
                {
                    "tiebreak": self._in_flight[1],
                    "hypothesis": encode_hypothesis(self._in_flight[0]),
                }
                if self._in_flight is not None and self.frontier.has_continuations
                else None
            ),
        }

    def export_kb_facts(self) -> None:
        """Flush this search's task-scoped facts to the knowledge base.

        A no-op without an attached KB view.  Called by the facade when a
        search finalizes; safe to call more than once (exports merge).
        """
        self.engine.export_kb_facts(oe_store=self.oe_store)

    def suspend(self) -> dict:
        """Snapshot the kernel and withdraw its in-flight OE admissions.

        The variant of :meth:`snapshot` for a caller that is about to stop
        stepping *this* kernel object and hand its live
        :class:`~repro.core.oe.OEStore` to a successor (see the ``oe_store``
        parameter of :meth:`restore`).  Continuation states are not captured
        by the snapshot, so the completion runs still pending on the
        continuation lane may have admitted OE representatives whose subtrees
        are not fully explored; carrying those keys over would wrongly
        suppress the successor's re-exploration of the re-expanded in-flight
        hypothesis.  ``suspend()`` releases exactly those admissions (fully
        explored representatives stay, which is what spares the successor
        from re-enumerating already-merged states).  The kernel must not be
        stepped afterwards.
        """
        payload = self.snapshot()
        for state in self.frontier.continuation_states():
            if isinstance(state, CompletionState):
                state.run.release()
        return payload

    @classmethod
    def restore(
        cls,
        payload: dict,
        example,
        config,
        library,
        cost_model: CostModel,
        stats,
        oe_store: Optional[OEStore] = None,
    ) -> "SearchKernel":
        """Rebuild a kernel from :meth:`snapshot` output.

        The restored kernel continues from the captured position: the
        in-flight hypothesis (if any) is re-expanded from scratch, then the
        pending lane drains in its original order.

        *oe_store* carries a live observational-equivalence store across an
        in-process resume (the store's keys are not JSON-able, so it rides
        outside the payload).  Pass the store of a kernel suspended with
        :meth:`suspend` -- never one still being stepped -- so the restored
        kernel skips the duplicate completion states its predecessor already
        explored instead of starting the dedup from scratch.

        Raises :class:`SnapshotVersionError` when the payload's schema
        version is missing or unsupported, or when required keys are absent
        (a stale or corrupt snapshot); malformed hypothesis encodings raise
        :class:`SnapshotError`.
        """
        if not isinstance(payload, dict):
            raise SnapshotError(
                f"snapshot payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotVersionError(
                f"unsupported snapshot version {version!r} "
                f"(this kernel reads version {SNAPSHOT_VERSION})"
            )
        missing = [key for key in SNAPSHOT_REQUIRED_KEYS if key not in payload]
        if missing:
            raise SnapshotVersionError(
                f"snapshot is missing required keys {missing} (stale or corrupt payload)"
            )
        remaining = payload.get("k", 1)
        kernel = cls(example, config, library, cost_model, stats, k=max(1, remaining))
        # A snapshot taken after the quota was met stores a remaining quota
        # of 0: the restored kernel is immediately done rather than hunting
        # for an extra, unrequested program.
        kernel.k = remaining
        # Drop the fresh initial state; the snapshot holds the real frontier.
        kernel.frontier = Frontier(cost_model)
        kernel._visited = set(payload["visited"])
        kernel._tiebreak = payload["tiebreak"]
        kernel._node_counter = payload["node_counter"]
        kernel._already_found = set(payload.get("found", ()))
        kernel._in_flight = None
        if oe_store is not None and kernel.oe_store is not None:
            kernel.oe_store = oe_store
            kernel.completer.oe_store = oe_store
        try:
            for entry in payload["pending"]:
                kernel.frontier.push_hypothesis(
                    decode_hypothesis(entry["hypothesis"], library), entry["tiebreak"]
                )
            in_flight = payload.get("in_flight")
            if in_flight is not None:
                # Re-expansion pops it first: it carried the smallest priority
                # when it was popped, and its refinements are not yet enqueued.
                kernel.frontier.push_hypothesis(
                    decode_hypothesis(in_flight["hypothesis"], library),
                    in_flight["tiebreak"],
                )
        except (KeyError, TypeError) as error:
            raise SnapshotError(
                f"snapshot pending lane is malformed: {error!r}"
            ) from error
        return kernel


def hypothesis_signature(hypothesis: Hypothesis) -> str:
    """A canonical string describing the tree shape (for duplicate detection)."""

    def walk(node: Hypothesis) -> str:
        if isinstance(node, Hole):
            if node.hole_type is Type.TABLE:
                return f"x{node.binding}" if node.binding is not None else "?"
            return "v"
        children = ",".join(walk(child) for child in node.table_children)
        return f"{node.component.name}({children})"

    return walk(hypothesis)
