"""Concrete values for the first-order holes of a sketch.

Sketch completion (Section 7 of the paper) instantiates every non-table hole
with a first-order function built from the value transformers
:math:`\\Lambda_v` and from constants drawn from concrete tables.  These
classes are the normal forms of those first-order functions for the built-in
component library:

* :class:`ColumnList` / :class:`ColumnRef` -- inhabitants of ``cols`` / a
  single column name (the *Cols* rule of Figure 13).
* :class:`Predicate` -- ``lambda row. col <op> constant`` (the *Lambda*,
  *App*, *Var* and *Const* rules).
* :class:`Aggregation` -- an aggregate transformer applied to a column.
* :class:`MutationExpr` -- an arithmetic expression over columns and column
  aggregates (e.g. ``n / sum(n)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..components.dplyr import GroupContext
from ..components.values import AGGREGATORS, ARITHMETIC_OPERATORS, COMPARISON_OPERATORS
from ..dataframe.cells import CellValue, format_value, is_numeric


class ValueArgument:
    """Base class of all first-order argument values."""

    def render_r(self) -> str:
        """Render this argument the way it would appear in R source."""
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnList(ValueArgument):
    """An ordered list of column names (type ``cols``)."""

    names: Tuple[str, ...]

    def render_r(self) -> str:
        return ", ".join(self.names)

    def __iter__(self):
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)


@dataclass(frozen=True)
class ColumnRef(ValueArgument):
    """A single column name (type ``col``)."""

    name: str

    def render_r(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant(ValueArgument):
    """A literal constant drawn from a table (the *Const* rule)."""

    value: CellValue

    def render_r(self) -> str:
        if is_numeric(self.value):
            return format_value(self.value)
        return f'"{self.value}"'


@dataclass(frozen=True)
class Predicate(ValueArgument):
    """``lambda row. row[column] <operator> constant`` (type ``row -> bool``)."""

    column: str
    operator: str
    constant: Constant

    def __call__(self, row: dict) -> bool:
        return COMPARISON_OPERATORS[self.operator](row[self.column], self.constant.value)

    def render_r(self) -> str:
        return f"{self.column} {self.operator} {self.constant.render_r()}"


@dataclass(frozen=True)
class Aggregation(ValueArgument):
    """An aggregate transformer, optionally applied to a target column."""

    function: str
    column: Optional[str] = None

    def render_r(self) -> str:
        if self.function == "n":
            return "n()"
        return f"{self.function}({self.column})"


@dataclass(frozen=True)
class MutationExpr(ValueArgument):
    """A per-row arithmetic expression ``lhs <op> rhs``.

    ``lhs`` is always a column reference; ``rhs`` is either another column or
    an aggregate of a column evaluated over the row's group (dplyr semantics,
    so ``n / sum(n)`` computes a within-group proportion).
    """

    operator: str
    left_column: str
    right_column: Optional[str] = None
    right_aggregate: Optional[Aggregation] = None

    def __post_init__(self):
        if (self.right_column is None) == (self.right_aggregate is None):
            raise ValueError("exactly one of right_column / right_aggregate must be given")

    def __call__(self, row: dict, group: GroupContext) -> CellValue:
        left = row[self.left_column]
        if self.right_column is not None:
            right = row[self.right_column]
        else:
            aggregate = self.right_aggregate
            if aggregate.function == "n":
                right = group.size
            else:
                right = AGGREGATORS[aggregate.function](group.column_values(aggregate.column))
        return ARITHMETIC_OPERATORS[self.operator](left, right)

    def render_r(self) -> str:
        if self.right_column is not None:
            right = self.right_column
        else:
            right = self.right_aggregate.render_r()
        return f"{self.left_column} {self.operator} {right}"
