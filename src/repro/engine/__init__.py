"""Parallel execution and memoization subsystem.

Two layers live here:

* :mod:`repro.engine.cache` -- the bounded LRU memo tables (with hit/miss
  accounting) backing deduction verdicts, abstraction formulas, and SMT
  satisfiability results.
* :mod:`repro.engine.parallel` -- process-parallel drivers: a
  :class:`ParallelRunner` that fans benchmark x configuration pairs over a
  ``multiprocessing`` pool, :func:`synthesize_batch` for serving many
  examples concurrently, and :func:`synthesize_portfolio` for racing several
  configurations on one example.

The parallel layer is imported lazily: :mod:`repro.core.deduction` and
:mod:`repro.smt.solver` import the cache primitives from this package, while
:mod:`repro.engine.parallel` imports the synthesizer, so an eager import here
would be circular.
"""

from .cache import CacheStats, ExecutionCache, LRUCache

_PARALLEL_EXPORTS = frozenset(
    {
        "ParallelRunner",
        "PortfolioResult",
        "default_job_count",
        "synthesize_batch",
        "synthesize_portfolio",
    }
)

__all__ = ["CacheStats", "ExecutionCache", "LRUCache", *sorted(_PARALLEL_EXPORTS)]


def __getattr__(name):
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
