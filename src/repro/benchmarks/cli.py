"""Command-line entry point for regenerating the paper's tables and figures.

Examples::

    python -m repro.benchmarks.cli figure16 --timeout 20
    python -m repro.benchmarks.cli figure16 --timeout 20 --jobs 4
    python -m repro.benchmarks.cli figure16 --timeout 20 --distributed --workers 2
    python -m repro.benchmarks.cli figure16 --timeout 20 --no-cdcl --stats
    python -m repro.benchmarks.cli figure16 --timeout 20 --no-prescreen --stats
    python -m repro.benchmarks.cli figure16 --timeout 20 --no-oe --stats
    python -m repro.benchmarks.cli figure16 --timeout 20 --profile
    python -m repro.benchmarks.cli figure16 --timeout 20 --json BENCH_figure16.json
    python -m repro.benchmarks.cli figure16 --tasks 'c[12]_' --timeout 10
    python -m repro.benchmarks.cli figure16 --list-tasks
    python -m repro.benchmarks.cli figure17 --timeout 10 --categories C1 C2
    python -m repro.benchmarks.cli figure18 --timeout 15
    python -m repro.benchmarks.cli pruning
    python -m repro.benchmarks.cli serve --port 8642

``--jobs N`` fans the benchmark x configuration pairs over ``N`` worker
processes, each of which *interleaves the search-kernel steps* of its batch
(the ``repro-bench`` console script installed by the package accepts the
same arguments).  ``--tasks REGEX`` restricts the suite to benchmarks whose
name matches the regex (combinable with ``--categories``/``--names``), and
``--list-tasks`` prints the selected benchmark names without running
anything -- the single-task iteration loop.

``--distributed`` parallelises *within* each task instead: the cost-ordered
frontier is split into cost-contiguous work units fanned over ``--workers
N`` processes (:mod:`repro.engine.distributed`).  Synthesized programs and
all deterministic counters are byte-identical to the serial run for every
worker count, and each task's solve/timeout decision is a function of a
deterministic step budget (derived from ``--timeout``) rather than the wall
clock.  Mutually exclusive with ``--jobs``.

``--no-cdcl`` disables conflict-driven lemma learning, ``--no-prescreen``
the tier-1 interval prescreen, and ``--no-oe`` the observational-equivalence
store in every Morpheus configuration (ablation baselines; verdicts and
synthesized programs are unchanged, only the amount of work moves).
``--top-k K`` keeps each task's search running until ``K`` distinct
programs are found (the reported tables still describe the first).

``--kb PATH`` attaches the warm-start knowledge base (a sqlite file, see
``repro.engine.kb``): persisted executions and attribute vectors from past
runs are reused, new facts are written back, and a library change
invalidates stale entries via the version-hash keying.  ``--kb-bench``
runs the selected figure16 suite twice -- cold then warm -- against one KB
and records the cold-vs-warm wall times, the warm hit rate and a
programs-byte-identical gate (merged into the ``--json`` file as the
``kb_comparison`` block; the exit status fails if the warm run's programs
differ or its KB hit rate is zero).

``serve`` boots the synthesis HTTP service (``repro.service``) instead of
running a benchmark: submit input-output examples over ``POST
/v1/sessions``, stream candidate programs, and add distinguishing examples
that resume the suspended search.  ``--port``/``--host`` pick the bind
address, ``--ttl`` the idle-session expiry, ``--rate``/``--burst`` the
token-bucket rate limit, ``--persist-dir`` enables JSON-file persistence
of frontier snapshots, and ``--kb PATH`` warm-starts every new session
from the shared knowledge base of past requests.

``--stats`` appends the per-configuration deduction counter table (SMT
calls, prescreen decisions, lemma prunes, lemmas learned), the
concrete-execution counter table (tables built, cells interned, cache and
comparison fast-path hits) and the search-kernel counter table (partial
programs, OE candidates/merged, frontier peak); ``--profile`` appends a
per-benchmark wall-clock split between deduction (SMT) and concrete
execution with the prescreen hit rate and OE merge count, and ``--json
FILE`` additionally writes the per-task outcomes (wall time, prune counts,
prescreen/OE/exec-cache counters) as machine-readable JSON.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from ..baselines.configurations import (
    ALL_FIGURE17_CONFIGS,
    FIGURE16_CONFIGS,
    override_config,
    with_backend,
    with_distributed,
    with_top_k,
    without_cdcl,
    without_oe,
    without_prescreen,
)
from .r_suite import r_benchmark_suite
from .reporting import (
    category_legend,
    deduction_summary_table,
    execution_summary_table,
    figure16_table,
    figure17_table,
    figure18_table,
    profile_table,
    search_summary_table,
    suite_runs_json,
)
from .runner import run_figure16, run_figure17, run_figure18, run_pruning_statistics


def _progress(outcome) -> None:
    status = "ok" if outcome.solved else "--"
    print(
        f"  [{status}] {outcome.configuration:<14} {outcome.benchmark:<40} {outcome.elapsed:6.2f}s",
        file=sys.stderr,
    )


def _subset(args, parser):
    suite = r_benchmark_suite()
    if args.categories or args.names:
        suite = suite.subset(names=args.names or None, categories=args.categories or None)
    if args.tasks:
        try:
            pattern = re.compile(args.tasks)
        except re.error as error:
            parser.error(f"--tasks is not a valid regex: {error}")
        suite = suite.subset(
            names=[name for name in suite.names() if pattern.search(name)]
        )
    return suite


def _kb_bench(args, parser, progress) -> int:
    """Run the selected suite cold then warm against one KB (``--kb-bench``).

    Both phases run the plain spec2 configuration serially.  The cold phase
    populates the knowledge base; the warm phase replays the identical task
    list against it.  The differential is merged into the ``--json`` file
    (default ``BENCH_figure16.json``) as the ``kb_comparison`` block, and
    the exit status enforces the two warm-start guarantees: byte-identical
    programs and a nonzero KB hit rate.
    """
    import os
    import tempfile

    from .kb_differential import run_kb_differential

    suite = _subset(args, parser)
    kb_path = args.kb
    temporary = kb_path is None
    if temporary:
        handle, kb_path = tempfile.mkstemp(prefix="repro-kb-", suffix=".sqlite")
        os.close(handle)
        os.unlink(kb_path)  # let sqlite create the file itself
    try:
        comparison = run_kb_differential(
            suite, timeout=args.timeout, kb_path=kb_path, progress=progress
        )
    finally:
        if temporary:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(kb_path + suffix)
                except OSError:
                    pass
    comparison["kb_path"] = "<temporary>" if temporary else kb_path
    out = args.json or "BENCH_figure16.json"
    payload = {}
    if os.path.exists(out):
        try:
            with open(out) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload["kb_comparison"] = comparison
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"kb-bench: cold {comparison['cold_wall_s']}s, "
        f"warm {comparison['warm_wall_s']}s "
        f"(speedup {comparison['speedup']}x), "
        f"warm hit-rate {comparison['warm_kb']['hit_rate']}, "
        f"programs identical: {comparison['programs_identical']}, "
        f"counters identical: {comparison['counters_identical']}",
        file=sys.stderr,
    )
    if not comparison["programs_identical"]:
        return 1
    if not comparison["counters_identical"]:
        return 1
    if not comparison["warm_kb"]["hits"]:
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figure", nargs="?", default="figure16",
        choices=["figure16", "figure17", "figure18", "pruning", "legend", "serve"],
    )
    parser.add_argument("--timeout", type=float, default=20.0, help="per-benchmark timeout in seconds")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="fan benchmark x configuration pairs over N worker processes, "
             "each interleaving the search-kernel steps of its batch "
             "(1 = serial; solve/fail outcomes match the serial run unless "
             "per-task solve times approach --timeout while workers "
             "oversubscribe the CPUs)",
    )
    parser.add_argument(
        "--distributed", action="store_true",
        help="fan each task's own frontier over a worker pool (the "
             "distributed frontier scheduler, repro.engine.distributed): "
             "programs and deterministic counters are byte-identical to the "
             "serial run for every worker count, and solve/timeout is "
             "decided by a deterministic step budget instead of the wall "
             "clock (figure16 and figure17; mutually exclusive with --jobs)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --distributed (default: the host's core "
             "count; 1 runs the identical schedule in-process)",
    )
    parser.add_argument(
        "--no-cdcl", action="store_true",
        help="disable conflict-driven lemma learning in every Morpheus "
             "configuration (ablation; labels are left unchanged so the "
             "tables line up against a default run)",
    )
    parser.add_argument(
        "--no-prescreen", action="store_true",
        help="disable the tier-1 interval prescreen in every Morpheus "
             "configuration, sending every deduction query straight to the "
             "SMT stack (ablation; labels are left unchanged so the tables "
             "line up against a default run)",
    )
    parser.add_argument(
        "--no-oe", action="store_true",
        help="disable the observational-equivalence store in every Morpheus "
             "configuration, exploring every duplicate completion state "
             "(ablation; synthesized programs are identical either way)",
    )
    parser.add_argument(
        "--top-k", type=int, default=1, metavar="K",
        help="keep each task's search running until K distinct programs are "
             "found (the tables still report the first program; K > 1 "
             "costs extra search time; combine with --no-oe for "
             "exhaustive enumeration of coincident alternatives)",
    )
    parser.add_argument(
        "--backend", choices=["python", "numpy"], default="python",
        help="columnar execution backend for the table verbs (numpy needs "
             "the repro[fast] extra; backends synthesize byte-identical "
             "programs, only wall-clock time changes)",
    )
    parser.add_argument(
        "--tasks", metavar="REGEX", default=None,
        help="restrict the r-suite to benchmarks whose name matches REGEX "
             "(applied after --categories/--names)",
    )
    parser.add_argument(
        "--list-tasks", action="store_true",
        help="print the selected benchmark names (one per line, with "
             "category) and exit without running anything",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append the per-configuration deduction counters (SMT calls, "
             "prescreen decisions, lemma prunes, lemmas learned), "
             "concrete-execution counters (tables built, cells interned, "
             "cache hits, comparison fast-path hits) and search-kernel "
             "counters (partial programs, OE candidates/merged, frontier "
             "peak) to the figure output",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="append a per-benchmark wall-clock split between deduction "
             "(SMT) and concrete execution (component runs + output "
             "comparison), with the prescreen hit rate and OE merge count, "
             "to the figure output",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the per-task outcomes (wall time, prune counts, "
             "prescreen/OE/exec-cache counters) as machine-readable JSON "
             "(figure16 and figure17 only)",
    )
    parser.add_argument(
        "--kb", metavar="PATH", default=None,
        help="attach the warm-start knowledge base at PATH (a sqlite file, "
             "created on first use): reuse persisted executions and "
             "attribute vectors from past runs and write new facts back "
             "(figure16, figure17 and serve; outcomes are unchanged, only "
             "repeated work is skipped)",
    )
    parser.add_argument(
        "--kb-bench", action="store_true",
        help="run the selected figure16 suite cold then warm against one "
             "knowledge base (--kb PATH, or a temporary file) and record "
             "cold-vs-warm wall times, the warm hit rate and a "
             "programs-byte-identical gate into the --json file "
             "(default BENCH_figure16.json, merged if it exists); exits "
             "nonzero when warm programs differ or the warm hit rate is 0",
    )
    stress = parser.add_argument_group("stress", "backend stress-suite options (--stress)")
    stress.add_argument(
        "--stress", action="store_true",
        help="run the large-table backend stress suite instead of a figure: "
             "time filter/arrange/gather/inner_join/summarise over 10**5-row "
             "tables on the python and (when installed) numpy backends, "
             "checking the outputs agree fingerprint-for-fingerprint; exits "
             "nonzero on any backend divergence",
    )
    stress.add_argument(
        "--stress-rows", type=int, default=None, metavar="N",
        help="stress: rows per synthetic table (default 100000)",
    )
    stress.add_argument(
        "--stress-repeats", type=int, default=None, metavar="N",
        help="stress: timed repetitions per verb, best-of (default 3)",
    )
    stress.add_argument(
        "--stress-verbs", nargs="*", default=None, metavar="VERB",
        help="stress: restrict to these verbs (default: all five)",
    )
    parser.add_argument("--categories", nargs="*", default=None, help="restrict to these categories")
    parser.add_argument("--names", nargs="*", default=None, help="restrict to these benchmark names")
    parser.add_argument("--quiet", action="store_true", help="suppress per-benchmark progress output")
    service = parser.add_argument_group("serve", "synthesis service options (the 'serve' command)")
    service.add_argument("--host", default="127.0.0.1", help="serve: bind address")
    service.add_argument("--port", type=int, default=8642, help="serve: bind port (0 = ephemeral)")
    service.add_argument(
        "--ttl", type=float, default=600.0, metavar="SECONDS",
        help="serve: expire sessions idle longer than this (0 disables expiry)",
    )
    service.add_argument(
        "--rate", type=float, default=10.0, metavar="PER_SECOND",
        help="serve: sustained mutating-request rate before 429s",
    )
    service.add_argument(
        "--burst", type=int, default=20, metavar="N",
        help="serve: request burst absorbed before rate limiting kicks in",
    )
    service.add_argument(
        "--persist-dir", default=None, metavar="DIR",
        help="serve: persist frontier snapshots as JSON files under DIR",
    )
    service.add_argument(
        "--verbose", action="store_true", help="serve: log every HTTP request"
    )
    args = parser.parse_args(argv)
    if args.figure == "serve":
        from ..service import serve

        return serve(
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            ttl=args.ttl if args.ttl > 0 else None,
            rate=args.rate,
            burst=args.burst,
            persist_dir=args.persist_dir,
            kb_path=args.kb,
        )
    if args.stress:
        from .stress import DEFAULT_REPEATS, DEFAULT_ROWS, run_stress, stress_failures, stress_table

        note = None if args.quiet else (lambda message: print(f"  {message}", file=sys.stderr))
        payload = run_stress(
            rows=args.stress_rows or DEFAULT_ROWS,
            repeats=args.stress_repeats or DEFAULT_REPEATS,
            verbs=args.stress_verbs or None,
            progress=note,
        )
        print(stress_table(payload))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        failures = stress_failures(payload)
        for failure in failures:
            print(f"stress: {failure}", file=sys.stderr)
        return 1 if failures else 0
    progress = None if args.quiet else _progress
    if args.backend != "python":
        from ..dataframe.backend import BackendUnavailableError, resolve_backend

        try:
            resolve_backend(args.backend)
        except (ValueError, BackendUnavailableError) as error:
            parser.error(str(error))
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.top_k < 1:
        parser.error(f"--top-k must be >= 1, got {args.top_k}")
    if args.list_tasks:
        for benchmark in _subset(args, parser):
            print(f"{benchmark.name}\t{benchmark.category}\t{benchmark.description}")
        return 0
    if args.distributed and args.figure not in ("figure16", "figure17"):
        parser.error("--distributed is only available for figure16 and figure17")
    if args.distributed and args.jobs != 1:
        parser.error("--distributed parallelises within each task; it is "
                     "mutually exclusive with --jobs (across-task fan-out)")
    if args.workers is not None and not args.distributed:
        parser.error("--workers requires --distributed")
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.top_k != 1 and args.figure not in ("figure16", "figure17"):
        parser.error("--top-k is only available for figure16 and figure17")
    if args.stats and args.figure not in ("figure16", "figure17"):
        parser.error("--stats is only available for figure16 and figure17")
    if args.profile and args.figure not in ("figure16", "figure17"):
        parser.error("--profile is only available for figure16 and figure17")
    if args.json and args.figure not in ("figure16", "figure17"):
        parser.error("--json is only available for figure16 and figure17")
    if args.kb and args.figure not in ("figure16", "figure17"):
        parser.error("--kb is only available for figure16, figure17 and serve")
    if args.kb_bench:
        if args.figure != "figure16":
            parser.error("--kb-bench is only available for figure16")
        if args.jobs != 1:
            parser.error("--kb-bench runs serially (the KB hit statistics "
                         "live in the worker processes under --jobs)")
        if args.no_cdcl or args.no_prescreen or args.no_oe or args.top_k != 1:
            parser.error("--kb-bench uses the plain spec2 configuration")
        return _kb_bench(args, parser, progress)
    if args.figure == "legend" and (args.no_cdcl or args.no_prescreen or args.no_oe):
        parser.error("ablation flags do not apply to the legend")

    def configured(configurations):
        if args.no_cdcl:
            configurations = without_cdcl(configurations)
        if args.no_prescreen:
            configurations = without_prescreen(configurations)
        if args.no_oe:
            configurations = without_oe(configurations)
        if args.top_k != 1:
            configurations = with_top_k(configurations, args.top_k)
        if args.backend != "python":
            configurations = with_backend(configurations, args.backend)
        if args.distributed:
            configurations = with_distributed(configurations, args.workers)
        return configurations

    def emit(runs) -> int:
        if args.stats:
            print(deduction_summary_table(runs))
            print(execution_summary_table(runs))
            print(search_summary_table(runs))
        if args.profile:
            print(profile_table(runs))
        if args.json:
            payload = {
                "figure": args.figure,
                "timeout_s": args.timeout,
                "jobs": args.jobs,
                "cdcl": not args.no_cdcl,
                "prescreen": not args.no_prescreen,
                "oe": not args.no_oe,
                "top_k": args.top_k,
                "backend": args.backend,
                "distributed": args.distributed,
                "workers": args.workers,
                "runs": suite_runs_json(runs),
            }
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return 0

    if args.figure == "legend":
        print(category_legend())
        return 0
    if args.figure == "figure16":
        runs = run_figure16(
            timeout=args.timeout, suite=_subset(args, parser), progress=progress,
            jobs=args.jobs, configurations=configured(FIGURE16_CONFIGS),
            kb_path=args.kb,
        )
        print(figure16_table(runs))
        return emit(runs)
    if args.figure == "figure17":
        runs = run_figure17(
            timeout=args.timeout, suite=_subset(args, parser), progress=progress,
            jobs=args.jobs, configurations=configured(ALL_FIGURE17_CONFIGS),
            kb_path=args.kb,
        )
        print(figure17_table(runs))
        return emit(runs)
    if args.figure == "figure18":
        morpheus_config = None
        if args.no_cdcl or args.no_prescreen or args.no_oe or args.backend != "python":
            from .runner import _morpheus_config

            morpheus_config = override_config(
                _morpheus_config,
                cdcl=not args.no_cdcl,
                prescreen=not args.no_prescreen,
                oe=not args.no_oe,
                backend=args.backend,
            )
        rows = run_figure18(
            timeout=args.timeout, r_suite=_subset(args, parser), jobs=args.jobs,
            morpheus_config=morpheus_config,
        )
        print(figure18_table(rows))
        return 0
    if args.figure == "pruning":
        statistics = run_pruning_statistics(
            timeout=args.timeout, suite=_subset(args, parser), jobs=args.jobs,
            cdcl=not args.no_cdcl, prescreen=not args.no_prescreen,
            oe=not args.no_oe,
        )
        print(statistics)
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
