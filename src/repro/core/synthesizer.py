"""The top-level synthesis algorithm (Section 5, Algorithm 1 of the paper).

:class:`Morpheus` is now a thin configuration shell around the
:class:`~repro.core.frontier.SearchKernel`: the kernel holds an explicit
priority frontier of hypothesis / sketch / partial-program states, exposes an
anytime ``step()`` / ``run(deadline)`` API with serialisable resume state,
and deduplicates partial programs through the observational-equivalence
store (:mod:`repro.core.oe`).  The frontier pops in exactly the cost order
the original recursive loop explored, so the first synthesized program is
unchanged -- but the search can now be paused, resumed, interleaved fairly
across tasks (see :class:`repro.engine.parallel.KernelInterleaver`), and
continued past the first solution: ``synthesize(k=...)`` enumerates the top
``k`` distinct programs -- alternative generalisations of the same example,
in discovery (cost) order.

Ablations used by the evaluation harness are exposed through
:class:`SynthesisConfig`: deduction on/off, Spec 1 vs Spec 2, partial
evaluation on/off, n-gram vs uniform hypothesis ranking, and
observational-equivalence merging on/off (``--no-oe``).
"""

from __future__ import annotations

import os
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dataframe.backend import install_backend
from ..dataframe.profiling import ExecutionStats, execution_stats
from ..dataframe.table import Table
from ..engine.cache import CacheStats
from ..smt.solver import formula_cache_stats
from .abstraction import SpecLevel
from .completion import CompletionStats
from .component import ComponentLibrary
from .cost import CostModel, UniformCostModel
from .deduction import DeductionStats
from .frontier import SearchKernel
from .hypothesis import Hypothesis, hypothesis_size, render_program
from .library import standard_library


@dataclass(frozen=True)
class Example:
    """An input-output example (Definition 3 of the paper)."""

    inputs: Tuple[Table, ...]
    output: Table

    @staticmethod
    def make(inputs: Sequence[Table], output: Table) -> "Example":
        """Convenience constructor accepting any sequence of input tables."""
        return Example(tuple(inputs), output)


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs of the synthesis algorithm (defaults reproduce full Morpheus)."""

    #: Use SMT-based deduction to reject hypotheses / partial programs.
    deduction: bool = True
    #: Which component specification to use for deduction.
    spec_level: SpecLevel = SpecLevel.SPEC2
    #: Use partial evaluation inside deduction.
    partial_evaluation: bool = True
    #: Conflict-driven lemma learning: mine deduction unsat cores into
    #: blocking lemmas that reject families of sibling hypotheses without
    #: touching the solver.  Disable (the ``--no-cdcl`` ablation) to measure
    #: plain Algorithm 2.
    cdcl: bool = True
    #: Tier-1 interval prescreen: decide ground-heavy deduction queries with
    #: compiled attribute propagation before any formula is built.  Disable
    #: (the ``--no-prescreen`` ablation) to send every query straight to the
    #: SMT stack; verdicts (and synthesized programs) are identical either
    #: way, only the work split changes.
    prescreen: bool = True
    #: Observational-equivalence merging: collapse partial programs whose
    #: completed subtrees evaluate to fingerprint-identical tables onto the
    #: first-explored representative.  Disable (the ``--no-oe`` ablation) to
    #: explore every duplicate.  The synthesized program (the *first*
    #: solution) is identical either way, only the amount of duplicated
    #: completion work changes; with ``top_k > 1`` the merged duplicates are
    #: exactly the observationally-coincident alternatives, so later
    #: solutions may be fewer than an exhaustive ``--no-oe`` enumeration.
    oe: bool = True
    #: Use the statistical (bigram) cost model; otherwise order by size only.
    ngram_ranking: bool = True
    #: Largest number of component applications to consider.
    max_size: int = 6
    #: Wall-clock budget in seconds (None = unlimited).
    timeout: Optional[float] = 60.0
    #: Deterministic step budget (frontier states processed, None =
    #: unlimited).  Unlike ``timeout`` this is a *count*, so runs bounded by
    #: it stop at the same search position on any host and under any
    #: scheduler -- tests and CI use it where wall-clock budgets would flip
    #: solve/timeout on slow or single-core machines.
    max_steps: Optional[int] = None
    #: Weight of program size in the hypothesis score (see CostModel).  Large
    #: values approximate a strictly smallest-first search.
    size_weight: float = 1.0
    #: Maximum number of candidate hole fillings tried per sketch (None =
    #: unlimited).  Bounds the damage of a single sketch with a huge
    #: first-order argument space.
    completion_budget: Optional[int] = 6000
    #: How many distinct solutions ``synthesize`` collects before stopping
    #: (the frontier no longer unwinds after the first, so enumeration simply
    #: continues).  Solutions are distinct *programs* -- alternative
    #: generalisations that may coincide on the example's own output; the
    #: first solution is identical for every ``top_k``.  With ``oe`` enabled
    #: some coincident alternatives are merged away -- combine ``top_k > 1``
    #: with ``oe=False`` for exhaustive enumeration.
    top_k: int = 1
    #: Columnar execution backend for the table verbs ("python" or "numpy",
    #: see :mod:`repro.dataframe.backend`).  Backends are observationally
    #: identical -- same cells, fingerprints and error messages -- so this
    #: knob changes wall-clock time only, never the synthesized program.
    backend: str = "python"
    #: Distribute one task's search over a process pool: the frontier is
    #: split into cost-contiguous work units (``Frontier.split``) fanned out
    #: by :class:`repro.engine.distributed.DistributedScheduler`.  The chosen
    #: program is byte-identical to the serial run on every solved task; in
    #: this mode the solve/timeout decision is a function of the
    #: deterministic step budget (derived from ``timeout`` when ``max_steps``
    #: is unset), never of the wall clock.
    distributed: bool = False
    #: Worker processes for the distributed scheduler (None = one per CPU).
    #: Worker count never changes the chosen program or the deterministic
    #: counters -- only wall-clock time.
    workers: Optional[int] = None

    def describe(self) -> str:
        """Short human-readable description used by the benchmark reports."""
        if not self.deduction:
            name = "no-deduction"
        else:
            name = "spec1" if self.spec_level is SpecLevel.SPEC1 else "spec2"
            if not self.partial_evaluation:
                name += "-no-pe"
            if not self.cdcl:
                name += "-no-cdcl"
            if not self.prescreen:
                name += "-no-prescreen"
            if not self.oe:
                name += "-no-oe"
        if self.backend != "python":
            name += f"-{self.backend}"
        if self.distributed:
            name += "-dist"
        return name


@dataclass
class SynthesisStats:
    """Aggregated search statistics for one synthesis run."""

    hypotheses_expanded: int = 0
    hypotheses_enqueued: int = 0
    sketches_generated: int = 0
    sketches_rejected: int = 0
    programs_checked: int = 0
    #: Peak number of simultaneously pending frontier states.
    frontier_peak: int = 0
    deduction: DeductionStats = field(default_factory=DeductionStats)
    completion: CompletionStats = field(default_factory=CompletionStats)
    #: This run's slice of the process-wide SMT formula-cache activity.
    solver_cache: CacheStats = field(default_factory=CacheStats)
    #: This run's slice of the concrete-execution counters (tables built,
    #: cells interned, fingerprint/exec-cache hits, comparison fast paths).
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def prune_rate(self) -> float:
        """Fraction of partially-filled sketches pruned before completion."""
        if self.completion.partial_programs == 0:
            return 0.0
        return self.completion.pruned_partial / self.completion.partial_programs

    @property
    def deduction_cache_hit_rate(self) -> float:
        """Fraction of deduction queries answered by the verdict memo."""
        return self.deduction.cache_hit_rate

    @property
    def solver_cache_hit_rate(self) -> float:
        """Fraction of SMT checks answered by the formula cache during this run."""
        return self.solver_cache.hit_rate

    @property
    def lemma_prunes(self) -> int:
        """Hypotheses rejected by the lemma store without an SMT query."""
        return self.deduction.lemma_prunes

    @property
    def lemmas_learned(self) -> int:
        """Blocking lemmas mined from deduction unsat cores this run."""
        return self.deduction.lemmas_learned

    @property
    def smt_calls(self) -> int:
        """Deduction SMT ``check()`` calls issued this run."""
        return self.deduction.smt_calls

    @property
    def prescreen_decided(self) -> int:
        """Deduction queries decided by the tier-1 interval prescreen."""
        return self.deduction.prescreen_decided

    @property
    def prescreen_fallback(self) -> int:
        """Deduction queries the prescreen handed to the SMT tier."""
        return self.deduction.prescreen_fallback

    @property
    def prescreen_hit_rate(self) -> float:
        """Fraction of prescreened queries decided without the solver."""
        return self.deduction.prescreen_hit_rate

    @property
    def oe_candidates(self) -> int:
        """Completion states offered to the observational-equivalence store."""
        return self.completion.oe_candidates

    @property
    def oe_merged(self) -> int:
        """Completion states merged into an earlier OE representative."""
        return self.completion.oe_merged

    @property
    def tables_built(self) -> int:
        """Tables constructed while executing candidate programs this run."""
        return self.execution.tables_built

    @property
    def cells_interned(self) -> int:
        """Cell values deduplicated against the intern pool this run."""
        return self.execution.cells_interned

    @property
    def compare_fastpath_hits(self) -> int:
        """Output comparisons decided by the digest fast path this run."""
        return self.execution.compare_fastpath_hits

    @property
    def exec_cache_hit_rate(self) -> float:
        """Fraction of component executions answered from the execution memo."""
        return self.execution.exec_cache.hit_rate


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    solved: bool
    program: Optional[Hypothesis]
    elapsed: float
    stats: SynthesisStats
    config: SynthesisConfig
    #: Every solution found, in discovery order (``program`` is the first).
    #: Holds more than one entry only when ``top_k > 1`` was requested.
    programs: List[Hypothesis] = field(default_factory=list)

    def render(self, input_names: Optional[Sequence[str]] = None) -> str:
        """The synthesized program as R-style source text."""
        if self.program is None:
            return "<no program found>"
        return render_program(self.program, input_names)

    def render_all(self, input_names: Optional[Sequence[str]] = None) -> List[str]:
        """Every found program as R-style source text, in discovery order."""
        return [render_program(program, input_names) for program in self.programs]

    @property
    def size(self) -> Optional[int]:
        """Number of components in the synthesized program."""
        return hypothesis_size(self.program) if self.program is not None else None


#: Root directory of the installed ``repro`` package, for frame filtering.
_PACKAGE_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _caller_stacklevel(default: int = 2) -> int:
    """The ``warnings.warn`` stacklevel of the first frame outside ``repro``.

    ``stacklevel=2`` is only right when user code calls ``Morpheus(...)``
    directly; through an internal wrapper (or a subclass ``super().__init__``
    defined inside the package) it would attribute the warning to library
    code.  Walking the stack until the first non-package frame pins the
    warning to the user's own line in every case.
    """
    level = default
    try:
        frame = sys._getframe(default)
    except ValueError:
        return default
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if not filename.startswith(_PACKAGE_DIR + os.sep):
            return level
        frame = frame.f_back
        level += 1
    return default


class Morpheus:
    """Example-driven synthesizer for table transformation programs.

    .. deprecated::
        Direct ``Morpheus(...)`` construction is deprecated in favour of the
        typed facade: :func:`repro.api.create_session` (interactive sessions)
        or :func:`repro.api.solve` (one-shot).  The class itself remains the
        internal engine behind the facade; ``_sanctioned=True`` marks those
        internal construction sites and suppresses the warning.
    """

    def __init__(
        self,
        library: Optional[ComponentLibrary] = None,
        config: Optional[SynthesisConfig] = None,
        *,
        _sanctioned: bool = False,
    ) -> None:
        if not _sanctioned:
            warnings.warn(
                "Direct Morpheus(...) construction is deprecated; use "
                "repro.api.create_session() (interactive) or repro.api.solve() "
                "(one-shot) instead -- see README 'Migrating to repro.api'.",
                DeprecationWarning,
                stacklevel=_caller_stacklevel(),
            )
        self.library = library if library is not None else standard_library()
        self.config = config if config is not None else SynthesisConfig()
        if self.config.ngram_ranking:
            self.cost_model: CostModel = CostModel(size_weight=self.config.size_weight)
        else:
            self.cost_model = UniformCostModel(size_weight=self.config.size_weight)

    # ------------------------------------------------------------------
    def kernel(self, example: Example, k: Optional[int] = None) -> SearchKernel:
        """Build the anytime search kernel for *example*.

        Direct kernel access is the service-grade API: callers may ``step()``
        it, ``run()`` it against successive deadlines, interleave many
        kernels in one process, or snapshot/restore the search position.
        ``Morpheus.synthesize`` is a convenience wrapper that drives the
        kernel to completion under the configured timeout.
        """
        return SearchKernel(
            example,
            self.config,
            self.library,
            self.cost_model,
            SynthesisStats(),
            k=k if k is not None else self.config.top_k,
        )

    def synthesize(self, example: Example, k: Optional[int] = None) -> SynthesisResult:
        """Algorithm 1: search for (up to *k*) programs consistent with *example*."""
        started = time.monotonic()
        deadline = (
            started + self.config.timeout if self.config.timeout is not None else None
        )
        # The session API installs the configured backend through its
        # TaskContext; this convenience driver installs it around the run so
        # ``config.backend`` is honored on the direct path too.
        previous = install_backend(self.config.backend)
        try:
            kernel = self.kernel(example, k=k)
            kernel.run(deadline=deadline, max_steps=self.config.max_steps)
            return self.finalize(kernel, elapsed=time.monotonic() - started)
        finally:
            install_backend(previous)

    def finalize(self, kernel: SearchKernel, elapsed: Optional[float] = None) -> SynthesisResult:
        """Package a (driven) kernel's state into a :class:`SynthesisResult`.

        The kernel's construction-time baselines attribute a slice of the
        process-wide solver-cache and execution counters to this run, so the
        counters are identical whether the kernel ran standalone or inside
        an isolated :class:`~repro.engine.context.TaskContext`.
        """
        stats = kernel.stats
        stats.frontier_peak = kernel.frontier.peak
        stats.solver_cache = (
            formula_cache_stats().snapshot().since(kernel.solver_cache_baseline)
        )
        stats.execution = (
            execution_stats().snapshot().since(kernel.execution_baseline)
        )
        # Warm-start tier: flush the run's task-scoped facts (mined lemmas,
        # OE representatives) to the attached knowledge base, if any.
        kernel.export_kb_facts()
        program = kernel.solutions[0] if kernel.solutions else None
        return SynthesisResult(
            solved=program is not None,
            program=program,
            elapsed=elapsed if elapsed is not None else kernel.active_seconds,
            stats=stats,
            config=self.config,
            programs=list(kernel.solutions),
        )


def synthesize(
    inputs: Sequence[Table],
    output: Table,
    library: Optional[ComponentLibrary] = None,
    config: Optional[SynthesisConfig] = None,
    k: Optional[int] = None,
) -> SynthesisResult:
    """One-call convenience API: synthesize a program from input/output tables."""
    return Morpheus(library, config, _sanctioned=True).synthesize(
        Example.make(inputs, output), k=k
    )
