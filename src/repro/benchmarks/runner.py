"""Benchmark runner: regenerates the data behind Figures 16, 17 and 18.

The runner executes a benchmark suite under one or more synthesis
configurations and aggregates per-category solve counts and median times,
cumulative-time curves, and baseline comparisons.  Absolute numbers differ
from the paper (different hardware, a pure-Python substrate instead of
C++/Z3/R, a single core), but the relative shape -- which configuration
solves more benchmarks, and faster -- is what the harness reproduces.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..baselines.configurations import ALL_FIGURE17_CONFIGS, FIGURE16_CONFIGS
from ..baselines.lambda2 import Lambda2Synthesizer
from ..baselines.sql_synthesizer import SqlSynthesizer
from ..core.library import sql_library
from ..core.synthesizer import SynthesisConfig
from .r_suite import r_benchmark_suite
from .sql_suite import sql_benchmark_suite
from .suite import Benchmark, BenchmarkSuite


@dataclass
class BenchmarkOutcome:
    """Result of running one benchmark under one configuration."""

    benchmark: str
    category: str
    configuration: str
    solved: bool
    elapsed: float
    program_size: Optional[int] = None
    prune_rate: float = 0.0
    #: The synthesized program's rendered source (None when unsolved).  Kept
    #: on the outcome so ablation and determinism harnesses can assert that
    #: configurations agree on *what* was synthesized, not just how fast.
    program: Optional[str] = None
    #: Deduction SMT ``check()`` calls issued during the run.
    smt_calls: int = 0
    #: Hypotheses rejected by the lemma store without an SMT query.
    lemma_prunes: int = 0
    #: Blocking lemmas mined from deduction unsat cores.
    lemmas_learned: int = 0
    #: Incremental-session solves spent mining/minimizing those cores.  Far
    #: cheaper per call than a full ``check()`` (propagation-only deletion
    #: probes), but reported so a CDCL-vs-ablation comparison of ``smt_calls``
    #: never hides the mining investment.
    lemma_mining_solves: int = 0
    #: Deduction queries decided UNSAT by the tier-1 interval prescreen
    #: (no formula built, no solver run) vs handed to the SMT tier.
    prescreen_decided: int = 0
    prescreen_fallback: int = 0
    #: Candidate hole fillings tried during sketch completion, and the
    #: observational-equivalence store's share of the dedup: states offered
    #: to the store vs states merged into an earlier representative (the
    #: ``--no-oe`` ablation reports ``oe_candidates = oe_merged = 0``).
    partial_programs: int = 0
    oe_candidates: int = 0
    oe_merged: int = 0
    #: Peak number of simultaneously pending search-frontier states.
    frontier_peak: int = 0
    #: Concrete-execution counters (deterministic: the runner resets the
    #: intern pool and counters before each task, so serial and ``--jobs N``
    #: runs report identical values).
    tables_built: int = 0
    cells_interned: int = 0
    fingerprint_hits: int = 0
    exec_cache_hits: int = 0
    compare_fastpath_hits: int = 0
    #: Batched sibling-hypothesis evaluation: groups of sibling hole fills
    #: whose partial evaluations were executed through one batched component
    #: call, and the total fills evaluated that way.  Deterministic (a pure
    #: function of the completion order).
    sibling_batches: int = 0
    batched_fills: int = 0
    #: Residual-SMT tuning: per-sketch-path incremental solver sessions
    #: created vs reused for a sibling query.  Deterministic.
    smt_sessions: int = 0
    smt_session_reuse: int = 0
    #: Wall-clock time split (not deterministic; surfaced by ``--profile``):
    #: seconds inside deduction SMT checks vs concrete component execution
    #: plus output comparison.
    smt_time: float = 0.0
    exec_time: float = 0.0
    #: Per-verb share of ``exec_time`` (component name -> seconds), from the
    #: same clock -- wall time, not deterministic.
    verb_times: Dict[str, float] = field(default_factory=dict)


@dataclass
class SuiteRun:
    """All outcomes of one configuration over one suite."""

    configuration: str
    outcomes: List[BenchmarkOutcome] = field(default_factory=list)

    @property
    def solved(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.solved)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def median_time(self, solved_only: bool = True) -> Optional[float]:
        """Median running time (of solved benchmarks by default)."""
        times = [o.elapsed for o in self.outcomes if o.solved or not solved_only]
        if not times:
            return None
        return statistics.median(times)

    def cumulative_times(self) -> List[float]:
        """Sorted per-benchmark times with unsolved tasks charged their full timeout.

        This is the data behind Figure 17's cumulative running-time curves.
        """
        return sorted(outcome.elapsed for outcome in self.outcomes)

    def by_category(self) -> Dict[str, List[BenchmarkOutcome]]:
        grouped: Dict[str, List[BenchmarkOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.category, []).append(outcome)
        return grouped


def _morpheus_config(timeout: Optional[float]) -> SynthesisConfig:
    """The default full-strength configuration (used by Figure 18 / pruning)."""
    return SynthesisConfig(timeout=timeout)


def outcome_from_result(
    benchmark: Benchmark,
    config: SynthesisConfig,
    result,
    label: Optional[str] = None,
) -> BenchmarkOutcome:
    """Flatten a :class:`~repro.core.SynthesisResult` into a BenchmarkOutcome.

    Shared by the serial runner and the interleaved kernel scheduler so the
    two can never disagree on how counters map onto outcome fields.
    """
    deduction = result.stats.deduction
    execution = result.stats.execution
    completion = result.stats.completion
    return BenchmarkOutcome(
        benchmark=benchmark.name,
        category=benchmark.category,
        configuration=label or config.describe(),
        solved=result.solved,
        elapsed=result.elapsed,
        program_size=result.size,
        prune_rate=result.stats.prune_rate,
        program=result.render() if result.solved else None,
        smt_calls=deduction.smt_calls,
        lemma_prunes=deduction.lemma_prunes,
        lemmas_learned=deduction.lemmas_learned,
        lemma_mining_solves=deduction.lemma_mining_solves,
        prescreen_decided=deduction.prescreen_decided,
        prescreen_fallback=deduction.prescreen_fallback,
        partial_programs=completion.partial_programs,
        oe_candidates=completion.oe_candidates,
        oe_merged=completion.oe_merged,
        frontier_peak=result.stats.frontier_peak,
        tables_built=execution.tables_built,
        cells_interned=execution.cells_interned,
        fingerprint_hits=execution.fingerprint_hits,
        exec_cache_hits=execution.exec_cache.hits,
        compare_fastpath_hits=execution.compare_fastpath_hits,
        sibling_batches=completion.sibling_batches,
        batched_fills=completion.batched_fills,
        smt_sessions=deduction.smt_sessions,
        smt_session_reuse=deduction.smt_session_reuse,
        smt_time=deduction.smt_time,
        exec_time=execution.exec_time + execution.compare_time,
        verb_times=dict(execution.verb_time),
    )


def run_benchmark(
    benchmark: Benchmark,
    config: SynthesisConfig,
    library=None,
    label: Optional[str] = None,
) -> BenchmarkOutcome:
    """Run Morpheus on one benchmark under one configuration.

    Goes through the sanctioned facade (:func:`repro.api.create_session`):
    each benchmark runs in its own session, whose private
    :class:`~repro.engine.context.TaskContext` provides a fresh SMT formula
    cache, execution counters and value intern pool -- so the outcome does
    not depend on which benchmarks ran earlier in the same process.  That
    independence is what makes parallel and serial harness runs equivalent
    even for tasks near the timeout boundary (and keeps the execution
    counters byte-identical between schedulers).
    """
    from ..api import SynthesisRequest, create_session

    request = SynthesisRequest.from_tables(
        benchmark.inputs, benchmark.output, config=config
    )
    session = create_session(request, library=library)
    result = session.solve()
    return outcome_from_result(benchmark, config, result, label=label)


def run_suite(
    suite: BenchmarkSuite,
    config_factory: Callable[[Optional[float]], SynthesisConfig],
    timeout: float = 20.0,
    label: Optional[str] = None,
    library=None,
    progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    jobs: Optional[int] = None,
    kb_path: Optional[str] = None,
) -> SuiteRun:
    """Run a whole suite under one configuration factory.

    ``jobs`` > 1 fans the benchmarks over a process pool (see
    :class:`repro.engine.ParallelRunner`); the outcomes are identical to the
    serial run, in suite order.  (Caveat: tasks whose solve time approaches
    the wall-clock ``timeout`` can flip to a timeout when more workers run
    than there are CPU cores, since concurrent workers share the CPU.)

    ``kb_path`` attaches the warm-start knowledge base at that path
    (:mod:`repro.engine.kb`): every task consults it for persisted
    executions and attribute vectors and writes new facts back.  The KB
    never changes outcomes, only how much work each search re-does.
    """
    if jobs is not None and jobs != 1:
        from ..engine.parallel import ParallelRunner

        return ParallelRunner(jobs=jobs, kb_path=kb_path).run_suite(
            suite, config_factory, timeout=timeout, label=label,
            library=library, progress=progress,
        )
    if kb_path is not None:
        from ..engine.kb import current_kb
        from ..engine.parallel import _init_worker_kb

        if current_kb() is None:
            _init_worker_kb(kb_path)
    config = config_factory(timeout)
    run = SuiteRun(configuration=label or config.describe())
    for benchmark in suite:
        outcome = run_benchmark(benchmark, config, library=library, label=run.configuration)
        run.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return run


# ----------------------------------------------------------------------
# Figure 16: per-category solve counts and median times for three configs
# ----------------------------------------------------------------------
def run_figure16(
    timeout: float = 20.0,
    suite: Optional[BenchmarkSuite] = None,
    configurations: Optional[Dict[str, Callable]] = None,
    progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    jobs: Optional[int] = None,
    kb_path: Optional[str] = None,
) -> Dict[str, SuiteRun]:
    """Run the Figure 16 experiment (No deduction / Spec 1 / Spec 2)."""
    suite = suite if suite is not None else r_benchmark_suite()
    configurations = configurations if configurations is not None else FIGURE16_CONFIGS
    if jobs is not None and jobs != 1:
        from ..engine.parallel import ParallelRunner

        return ParallelRunner(jobs=jobs, kb_path=kb_path).run_matrix(
            suite, configurations, timeout=timeout, progress=progress
        )
    return {
        label: run_suite(suite, factory, timeout=timeout, label=label,
                         progress=progress, kb_path=kb_path)
        for label, factory in configurations.items()
    }


# ----------------------------------------------------------------------
# Figure 17: cumulative running time for five configurations
# ----------------------------------------------------------------------
def run_figure17(
    timeout: float = 20.0,
    suite: Optional[BenchmarkSuite] = None,
    configurations: Optional[Dict[str, Callable]] = None,
    progress: Optional[Callable[[BenchmarkOutcome], None]] = None,
    jobs: Optional[int] = None,
    kb_path: Optional[str] = None,
) -> Dict[str, SuiteRun]:
    """Run the Figure 17 experiment (deduction x partial evaluation grid)."""
    suite = suite if suite is not None else r_benchmark_suite()
    configurations = (
        configurations if configurations is not None else ALL_FIGURE17_CONFIGS
    )
    if jobs is not None and jobs != 1:
        from ..engine.parallel import ParallelRunner

        return ParallelRunner(jobs=jobs, kb_path=kb_path).run_matrix(
            suite, configurations, timeout=timeout, progress=progress
        )
    return {
        label: run_suite(suite, factory, timeout=timeout, label=label,
                         progress=progress, kb_path=kb_path)
        for label, factory in configurations.items()
    }


# ----------------------------------------------------------------------
# Figure 18: Morpheus vs the SQLSynthesizer baseline (and lambda2)
# ----------------------------------------------------------------------
@dataclass
class Figure18Row:
    """Solve-rate of one tool on one suite."""

    tool: str
    suite: str
    solved: int
    total: int
    median_time: Optional[float]

    @property
    def percentage(self) -> float:
        return 100.0 * self.solved / self.total if self.total else 0.0


def run_figure18(
    timeout: float = 20.0,
    include_lambda2: bool = True,
    r_suite: Optional[BenchmarkSuite] = None,
    sql_suite: Optional[BenchmarkSuite] = None,
    jobs: Optional[int] = None,
    morpheus_config: Optional[Callable[[Optional[float]], SynthesisConfig]] = None,
) -> List[Figure18Row]:
    """Compare Morpheus with the SQLSynthesizer (and lambda2) baselines.

    ``morpheus_config`` overrides the configuration factory used for the
    Morpheus rows (the CLI passes the no-CDCL factory for ``--no-cdcl``);
    the baselines have no deduction engine and are unaffected.
    """
    r_suite = r_suite if r_suite is not None else r_benchmark_suite()
    sql_suite = sql_suite if sql_suite is not None else sql_benchmark_suite()
    factory = morpheus_config if morpheus_config is not None else _morpheus_config
    rows: List[Figure18Row] = []

    # Morpheus on both suites (the baselines below are cheap and stay serial).
    morpheus_r = run_suite(
        r_suite, factory, timeout=timeout, label="morpheus", jobs=jobs
    )
    rows.append(Figure18Row("morpheus", "r-benchmarks", morpheus_r.solved, morpheus_r.total, morpheus_r.median_time()))
    morpheus_sql = run_suite(
        sql_suite, factory, timeout=timeout,
        label="morpheus", library=sql_library(), jobs=jobs,
    )
    rows.append(Figure18Row("morpheus", "sql-benchmarks", morpheus_sql.solved, morpheus_sql.total, morpheus_sql.median_time()))

    # SQLSynthesizer baseline on both suites.
    for suite, suite_label in ((r_suite, "r-benchmarks"), (sql_suite, "sql-benchmarks")):
        solved = 0
        times: List[float] = []
        for benchmark in suite:
            result = SqlSynthesizer(timeout=timeout).synthesize(list(benchmark.inputs), benchmark.output)
            solved += int(result.solved)
            if result.solved:
                times.append(result.elapsed)
        rows.append(
            Figure18Row("sqlsynthesizer", suite_label, solved, len(suite),
                        statistics.median(times) if times else None)
        )

    if include_lambda2:
        solved = 0
        times = []
        for benchmark in r_suite:
            result = Lambda2Synthesizer(timeout=min(timeout, 10.0)).synthesize(
                list(benchmark.inputs), benchmark.output
            )
            solved += int(result.solved)
            if result.solved:
                times.append(result.elapsed)
        rows.append(
            Figure18Row("lambda2", "r-benchmarks", solved, len(r_suite),
                        statistics.median(times) if times else None)
        )
    return rows


# ----------------------------------------------------------------------
# Pruning statistics (Section 9, "Impact of partial evaluation")
# ----------------------------------------------------------------------
def run_pruning_statistics(
    timeout: float = 20.0,
    suite: Optional[BenchmarkSuite] = None,
    jobs: Optional[int] = None,
    cdcl: bool = True,
    prescreen: bool = True,
    oe: bool = True,
) -> Dict[str, float]:
    """Measure how many partial programs deduction prunes before completion."""
    suite = suite if suite is not None else r_benchmark_suite()
    factory, label = _morpheus_config, "spec2"
    if not cdcl or not prescreen or not oe:
        from ..baselines.configurations import override_config

        factory = override_config(factory, cdcl=cdcl, prescreen=prescreen, oe=oe)
        label += (
            ("" if cdcl else "-no-cdcl")
            + ("" if prescreen else "-no-prescreen")
            + ("" if oe else "-no-oe")
        )
    run = run_suite(suite, factory, timeout=timeout, label=label, jobs=jobs)
    rates = [outcome.prune_rate for outcome in run.outcomes if outcome.prune_rate > 0]
    return {
        "mean_prune_rate": statistics.mean(rates) if rates else 0.0,
        "median_prune_rate": statistics.median(rates) if rates else 0.0,
        "benchmarks": float(len(rates)),
        "smt_calls": float(sum(outcome.smt_calls for outcome in run.outcomes)),
        "lemma_prunes": float(sum(outcome.lemma_prunes for outcome in run.outcomes)),
        "lemmas_learned": float(
            sum(outcome.lemmas_learned for outcome in run.outcomes)
        ),
        "lemma_mining_solves": float(
            sum(outcome.lemma_mining_solves for outcome in run.outcomes)
        ),
        "prescreen_decided": float(
            sum(outcome.prescreen_decided for outcome in run.outcomes)
        ),
        "prescreen_fallback": float(
            sum(outcome.prescreen_fallback for outcome in run.outcomes)
        ),
        "partial_programs": float(
            sum(outcome.partial_programs for outcome in run.outcomes)
        ),
        "oe_candidates": float(
            sum(outcome.oe_candidates for outcome in run.outcomes)
        ),
        "oe_merged": float(sum(outcome.oe_merged for outcome in run.outcomes)),
    }
