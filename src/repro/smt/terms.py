"""Linear integer terms and quantifier-free formulas.

The deduction engine of the paper emits formulas in the theory of Linear
Integer Arithmetic (Presburger arithmetic without quantifiers): boolean
combinations of linear constraints over integer variables such as
``?1.row < ?3.row`` or ``x1.col = 4``.  This module defines the term and
formula AST used by :mod:`repro.smt.solver`.

Linear expressions support Python's arithmetic and comparison operators, so
constraints read naturally::

    row_out = Int("out.row")
    row_in = Int("in.row")
    spec = (row_out <= row_in) & (row_out >= 1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]


# ----------------------------------------------------------------------
# Linear expressions
# ----------------------------------------------------------------------
class LinExpr:
    """A linear expression ``c0 + c1*x1 + ... + cn*xn`` over integer variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, Number] = (), const: Number = 0) -> None:
        cleaned: Dict[str, Fraction] = {}
        for name, coeff in dict(coeffs).items():
            coeff = Fraction(coeff)
            if coeff != 0:
                cleaned[name] = coeff
        self.coeffs: Dict[str, Fraction] = cleaned
        self.const: Fraction = Fraction(const)

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def variable(name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return LinExpr({name: 1}, 0)

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        """The constant expression *value*."""
        return LinExpr({}, value)

    @staticmethod
    def coerce(value: "LinOperand") -> "LinExpr":
        """Coerce an int/Fraction/LinExpr into a LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, (int, Fraction)) and not isinstance(value, bool):
            return LinExpr.constant(value)
        raise TypeError(f"cannot use {value!r} in a linear expression")

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: "LinOperand") -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({name: -coeff for name, coeff in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "LinOperand") -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other: "LinOperand") -> "LinExpr":
        return LinExpr.coerce(other) + (-self)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if isinstance(scalar, LinExpr):
            raise TypeError("products of variables are not linear")
        scalar = Fraction(scalar)
        return LinExpr(
            {name: coeff * scalar for name, coeff in self.coeffs.items()},
            self.const * scalar,
        )

    __rmul__ = __mul__

    # -- comparisons produce atoms --------------------------------------------
    def __le__(self, other: "LinOperand") -> "Atom":
        return Atom.less_equal(self, LinExpr.coerce(other))

    def __ge__(self, other: "LinOperand") -> "Atom":
        return Atom.less_equal(LinExpr.coerce(other), self)

    def __lt__(self, other: "LinOperand") -> "Atom":
        return Atom.less_than(self, LinExpr.coerce(other))

    def __gt__(self, other: "LinOperand") -> "Atom":
        return Atom.less_than(LinExpr.coerce(other), self)

    def equals(self, other: "LinOperand") -> "Atom":
        """The atom ``self == other`` (named method, ``==`` keeps Python semantics)."""
        return Atom.equal(self, LinExpr.coerce(other))

    def not_equals(self, other: "LinOperand") -> "Formula":
        """The formula ``self != other``."""
        return Not(self.equals(other))

    # -- evaluation / display --------------------------------------------------
    def evaluate(self, assignment: Mapping[str, Number]) -> Fraction:
        """Evaluate under an assignment of variables to numbers."""
        total = self.const
        for name, coeff in self.coeffs.items():
            total += coeff * Fraction(assignment[name])
        return total

    def variables(self) -> Tuple[str, ...]:
        """The variables occurring in this expression."""
        return tuple(sorted(self.coeffs))

    def __repr__(self) -> str:
        pieces = []
        for name in sorted(self.coeffs):
            coeff = self.coeffs[name]
            if coeff == 1:
                pieces.append(name)
            elif coeff == -1:
                pieces.append(f"-{name}")
            else:
                pieces.append(f"{coeff}*{name}")
        if self.const != 0 or not pieces:
            pieces.append(str(self.const))
        return " + ".join(pieces).replace("+ -", "- ")

    def __eq__(self, other: object) -> bool:  # structural equality
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.coeffs.items())), self.const))


LinOperand = Union[LinExpr, int, Fraction]


def Int(name: str) -> LinExpr:
    """Create an integer variable (z3-style constructor)."""
    return LinExpr.variable(name)


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
class Formula:
    """Base class of quantifier-free LIA formulas."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class BoolVal(Formula):
    """The constant ``true`` or ``false``."""

    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolVal(True)
FALSE = BoolVal(False)


@dataclass(frozen=True)
class Atom(Formula):
    """A linear constraint in canonical form ``expr <op> 0``.

    ``op`` is ``"<="`` or ``"=="``; strict inequalities are normalised using
    integrality (``a < b`` becomes ``a - b + 1 <= 0``).
    """

    op: str
    expr: LinExpr = field(compare=True)

    @staticmethod
    def less_equal(left: LinExpr, right: LinExpr) -> "Atom":
        """``left <= right``."""
        return Atom("<=", left - right)

    @staticmethod
    def less_than(left: LinExpr, right: LinExpr) -> "Atom":
        """``left < right`` (over the integers: ``left + 1 <= right``)."""
        return Atom("<=", left - right + 1)

    @staticmethod
    def equal(left: LinExpr, right: LinExpr) -> "Atom":
        """``left == right``."""
        return Atom("==", left - right)

    def negated_atoms(self) -> Tuple["Atom", ...]:
        """The negation of this atom as a disjunction of atoms.

        ``not (e <= 0)`` is ``-e + 1 <= 0``; ``not (e == 0)`` is the
        disjunction ``e + 1 <= 0  or  -e + 1 <= 0``.
        """
        if self.op == "<=":
            return (Atom("<=", -self.expr + 1),)
        return (Atom("<=", self.expr + 1), Atom("<=", -self.expr + 1))

    def holds(self, assignment: Mapping[str, Number]) -> bool:
        """Evaluate the atom under a full assignment."""
        value = self.expr.evaluate(assignment)
        if self.op == "<=":
            return value <= 0
        return value == 0

    def variables(self) -> Tuple[str, ...]:
        """Variables occurring in the atom."""
        return self.expr.variables()

    def __repr__(self) -> str:
        return f"({self.expr} {self.op} 0)"


@dataclass(frozen=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


class _NaryFormula(Formula):
    """Shared implementation of :class:`And` / :class:`Or`."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, *operands: Formula) -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, self.__class__):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[Formula, ...] = tuple(flattened)

    def __repr__(self) -> str:
        return "(" + f" {self._symbol} ".join(repr(op) for op in self.operands) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, self.__class__) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((self.__class__.__name__, self.operands))


class And(_NaryFormula):
    """Conjunction (n-ary, flattening)."""

    _symbol = "and"


class Or(_NaryFormula):
    """Disjunction (n-ary, flattening)."""

    _symbol = "or"


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable of formulas (``true`` if empty)."""
    formulas = [f for f in formulas if not (isinstance(f, BoolVal) and f.value)]
    if not formulas:
        return TRUE
    if any(isinstance(f, BoolVal) and not f.value for f in formulas):
        return FALSE
    if len(formulas) == 1:
        return formulas[0]
    return And(*formulas)


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of an iterable of formulas (``false`` if empty)."""
    formulas = [f for f in formulas if not (isinstance(f, BoolVal) and not f.value)]
    if not formulas:
        return FALSE
    if any(isinstance(f, BoolVal) and f.value for f in formulas):
        return TRUE
    if len(formulas) == 1:
        return formulas[0]
    return Or(*formulas)


def formula_variables(formula: Formula) -> Tuple[str, ...]:
    """All integer variables occurring in *formula*."""
    seen = set()

    def walk(node: Formula) -> None:
        if isinstance(node, Atom):
            seen.update(node.variables())
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            for operand in node.operands:
                walk(operand)

    walk(formula)
    return tuple(sorted(seen))


def formula_atoms(formula: Formula) -> Tuple[Atom, ...]:
    """All distinct atoms occurring in *formula* (in first-appearance order)."""
    atoms = []

    def walk(node: Formula) -> None:
        if isinstance(node, Atom):
            if node not in atoms:
                atoms.append(node)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            for operand in node.operands:
                walk(operand)

    walk(formula)
    return tuple(atoms)
