"""Tests for the bounded LRU memo tables (repro.engine.cache)."""

import pytest

from repro.engine import CacheStats, LRUCache


class TestCacheStats:
    def test_hit_rate_of_fresh_stats_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_merge_accumulates(self):
        stats = CacheStats(hits=1, misses=2, evictions=3)
        stats.merge(CacheStats(hits=10, misses=20, evictions=30))
        assert (stats.hits, stats.misses, stats.evictions) == (11, 22, 33)

    def test_since_returns_delta(self):
        baseline = CacheStats(hits=5, misses=5, evictions=1)
        later = CacheStats(hits=9, misses=6, evictions=1)
        delta = later.since(baseline)
        assert (delta.hits, delta.misses, delta.evictions) == (4, 1, 0)

    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=1)
        copy = stats.snapshot()
        stats.hits += 1
        assert copy.hits == 1


class TestLRUCache:
    def test_get_counts_hits_and_misses(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_falsy_values_are_cache_hits(self):
        # The deduction verdict cache stores False; it must read back as a hit.
        cache = LRUCache(maxsize=4)
        cache.put("verdict", False)
        assert cache.get("verdict") is False
        assert cache.stats.hits == 1

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(maxsize=None)
        for index in range(1000):
            cache.put(index, index)
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_zero_maxsize_disables_storage_but_counts_misses(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=-1)

    def test_clear_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert "a" not in cache
        assert cache.stats.hits == 1
