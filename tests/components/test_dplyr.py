"""Tests for the dplyr verbs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.components import (
    EvaluationError,
    InvalidArgumentError,
    arrange,
    filter_rows,
    group_by,
    inner_join,
    mutate,
    select,
    summarise,
)
from repro.dataframe import Table


@pytest.fixture
def flights():
    return Table(
        ["flight", "origin", "dest"],
        [
            [11, "EWR", "SEA"],
            [725, "JFK", "BQN"],
            [495, "JFK", "SEA"],
            [461, "LGA", "ATL"],
            [1696, "EWR", "ORD"],
            [1670, "EWR", "SEA"],
        ],
    )


class TestSelect:
    def test_projection(self, flights):
        result = select(flights, ["origin", "dest"])
        assert result.columns == ("origin", "dest")
        assert result.n_rows == 6

    def test_must_drop_something(self, flights):
        with pytest.raises(EvaluationError):
            select(flights, ["flight", "origin", "dest"])

    def test_unknown_column(self, flights):
        with pytest.raises(InvalidArgumentError):
            select(flights, ["nope"])

    def test_duplicates_rejected(self, flights):
        with pytest.raises(InvalidArgumentError):
            select(flights, ["origin", "origin"])


class TestFilter:
    def test_keeps_matching_rows(self, flights):
        result = filter_rows(flights, lambda row: row["dest"] == "SEA")
        assert result.n_rows == 3
        assert set(result.column_values("dest")) == {"SEA"}

    def test_trivial_filter_rejected(self, flights):
        with pytest.raises(EvaluationError):
            filter_rows(flights, lambda row: True)

    def test_empty_result_allowed(self, flights):
        result = filter_rows(flights, lambda row: row["dest"] == "XXX")
        assert result.n_rows == 0

    def test_preserves_grouping(self, flights):
        grouped = group_by(flights, ["origin"])
        result = filter_rows(grouped, lambda row: row["dest"] == "SEA")
        assert result.group_cols == ("origin",)


class TestGroupBySummarise:
    def test_count_per_group(self, flights):
        result = summarise(group_by(flights, ["origin"]), "n", "n")
        counts = dict(result.rows)
        assert counts == {"EWR": 3, "JFK": 2, "LGA": 1}

    def test_sum_per_group(self):
        table = Table(["g", "v"], [["a", 1], ["a", 2], ["b", 10]])
        result = summarise(group_by(table, ["g"]), "total", "sum", "v")
        assert dict(result.rows) == {"a": 3, "b": 10}

    def test_mean_min_max(self):
        table = Table(["g", "v"], [["a", 1], ["a", 3], ["b", 10]])
        assert dict(summarise(group_by(table, ["g"]), "m", "mean", "v").rows)["a"] == 2
        assert dict(summarise(group_by(table, ["g"]), "m", "min", "v").rows)["a"] == 1
        assert dict(summarise(group_by(table, ["g"]), "m", "max", "v").rows)["a"] == 3

    def test_ungrouped_summarise_gives_single_row(self):
        table = Table(["v"], [[1], [2], [3]])
        result = summarise(table, "total", "sum", "v")
        assert result.n_rows == 1
        assert result.rows[0] == (6,)

    def test_summarise_drops_last_grouping_level(self, flights):
        result = summarise(group_by(flights, ["origin"]), "n", "n")
        assert result.group_cols == ()

    def test_summarise_with_two_grouping_levels(self):
        table = Table(["a", "b", "v"], [["x", "p", 1], ["x", "q", 2], ["y", "p", 3]])
        result = summarise(group_by(table, ["a", "b"]), "total", "sum", "v")
        assert result.group_cols == ("a",)
        assert result.n_rows == 3

    def test_unknown_aggregator(self, flights):
        with pytest.raises(InvalidArgumentError):
            summarise(group_by(flights, ["origin"]), "x", "median", "flight")

    def test_aggregator_needs_target(self, flights):
        with pytest.raises(InvalidArgumentError):
            summarise(group_by(flights, ["origin"]), "x", "sum")

    def test_group_by_requires_columns(self, flights):
        with pytest.raises(InvalidArgumentError):
            group_by(flights, [])


class TestMutate:
    def test_row_wise_expression(self):
        table = Table(["a", "b"], [[1, 2], [3, 4]])
        result = mutate(table, "s", lambda row, group: row["a"] + row["b"])
        assert result.column_values("s") == (3, 7)

    def test_group_aware_aggregate(self):
        table = group_by(Table(["g", "v"], [["a", 1], ["a", 3], ["b", 10]]), ["g"])
        result = mutate(table, "share", lambda row, group: row["v"] / sum(group.column_values("v")))
        assert result.column_values("share") == (0.25, 0.75, 1)

    def test_ungrouped_aggregate_uses_whole_table(self):
        table = Table(["v"], [[1], [3]])
        result = mutate(table, "share", lambda row, group: row["v"] / sum(group.column_values("v")))
        assert result.column_values("share") == (0.25, 0.75)

    def test_existing_column_rejected(self):
        table = Table(["a"], [[1]])
        with pytest.raises(EvaluationError):
            mutate(table, "a", lambda row, group: 1)


class TestInnerJoin:
    def test_natural_join(self):
        left = Table(["id", "x"], [[1, "a"], [2, "b"], [3, "c"]])
        right = Table(["id", "y"], [[1, 10], [3, 30], [4, 40]])
        result = inner_join(left, right)
        assert result.columns == ("id", "x", "y")
        assert sorted(result.column_values("id")) == [1, 3]

    def test_join_on_multiple_columns(self):
        left = Table(["a", "b", "x"], [[1, "p", 5], [2, "q", 6]])
        right = Table(["a", "b", "y"], [[1, "p", 7], [2, "z", 8]])
        result = inner_join(left, right)
        assert result.n_rows == 1
        assert result.rows[0] == (1, "p", 5, 7)

    def test_no_shared_columns_rejected(self):
        with pytest.raises(EvaluationError):
            inner_join(Table(["a"], [[1]]), Table(["b"], [[2]]))

    def test_empty_join_rejected(self):
        left = Table(["id", "x"], [[1, "a"]])
        right = Table(["id", "y"], [[2, 10]])
        with pytest.raises(EvaluationError):
            inner_join(left, right)

    def test_duplicate_keys_multiply(self):
        left = Table(["k", "x"], [["a", 1], ["a", 2]])
        right = Table(["k", "y"], [["a", 10]])
        assert inner_join(left, right).n_rows == 2


class TestArrange:
    def test_ascending_sort(self):
        table = Table(["v", "w"], [[3, "c"], [1, "a"], [2, "b"]])
        assert arrange(table, ["v"]).column_values("v") == (1, 2, 3)

    def test_multi_column_sort(self):
        table = Table(["a", "b"], [[2, 1], [1, 2], [1, 1]])
        assert arrange(table, ["a", "b"]).rows == ((1, 1), (1, 2), (2, 1))

    def test_descending(self):
        table = Table(["v"], [[1], [3], [2]])
        assert arrange(table, ["v"], descending=True).column_values("v") == (3, 2, 1)

    def test_requires_columns(self):
        with pytest.raises(InvalidArgumentError):
            arrange(Table(["v"], [[1]]), [])


class TestProperties:
    @given(
        st.lists(st.tuples(st.sampled_from("abc"), st.integers(-20, 20)), min_size=1, max_size=20)
    )
    def test_summarise_rows_equal_groups(self, rows):
        table = group_by(Table(["g", "v"], rows), ["g"])
        result = summarise(table, "total", "sum", "v")
        assert result.n_rows == table.n_groups

    @given(
        st.lists(st.tuples(st.sampled_from("abc"), st.integers(-20, 20)), min_size=1, max_size=20),
        st.integers(-20, 20),
    )
    def test_filter_is_monotone(self, rows, threshold):
        table = Table(["g", "v"], rows)
        try:
            result = filter_rows(table, lambda row: row["v"] > threshold)
        except EvaluationError:
            # The predicate kept every row; nothing to check.
            return
        assert result.n_rows < table.n_rows
        assert all(value > threshold for value in result.column_values("v"))

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(-9, 9)), min_size=1, max_size=15),
        st.lists(st.tuples(st.integers(0, 5), st.text("xyz", min_size=1, max_size=2)), min_size=1, max_size=15),
    )
    def test_join_keys_come_from_both_sides(self, left_rows, right_rows):
        left = Table(["k", "v"], left_rows)
        right_rows = list({row[0]: row for row in right_rows}.values())
        right = Table(["k", "w"], right_rows)
        try:
            joined = inner_join(left, right)
        except EvaluationError:
            return
        left_keys = set(left.column_values("k"))
        right_keys = set(right.column_values("k"))
        assert set(joined.column_values("k")) <= (left_keys & right_keys)
