"""Tests for the Table data structure (Definition 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataframe import CellType, Table
from repro.dataframe.errors import (
    ColumnNotFoundError,
    DuplicateColumnError,
    SchemaError,
)


@pytest.fixture
def students():
    return Table(
        ["id", "name", "age", "gpa"],
        [[1, "Alice", 8, 4.0], [2, "Bob", 18, 3.2], [3, "Tom", 12, 3.0]],
    )


class TestConstruction:
    def test_shape(self, students):
        assert students.shape == (3, 4)
        assert students.n_rows == 3
        assert students.n_cols == 4

    def test_schema(self, students):
        assert students.schema() == {
            "id": CellType.NUM,
            "name": CellType.STR,
            "age": CellType.NUM,
            "gpa": CellType.NUM,
        }

    def test_duplicate_columns_rejected(self):
        with pytest.raises(DuplicateColumnError):
            Table(["a", "a"], [[1, 2]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            Table(["a", "b"], [[1]])

    def test_from_records(self):
        table = Table.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.columns == ("a", "b")
        assert table.n_rows == 2

    def test_from_columns(self):
        table = Table.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert table.column_values("b") == ("x", "y")

    def test_from_columns_inconsistent_lengths(self):
        with pytest.raises(SchemaError):
            Table.from_columns({"a": [1, 2], "b": ["x"]})

    def test_empty_table(self):
        table = Table.empty(["a", "b"])
        assert table.n_rows == 0
        assert table.n_cols == 2


class TestAccess:
    def test_cell(self, students):
        assert students.cell(1, "name") == "Bob"

    def test_column_values(self, students):
        assert students.column_values("age") == (8, 18, 12)

    def test_row_dict(self, students):
        assert students.row_dict(0) == {"id": 1, "name": "Alice", "age": 8, "gpa": 4.0}

    def test_missing_column(self, students):
        with pytest.raises(ColumnNotFoundError):
            students.column_values("height")

    def test_iter_records(self, students):
        names = [record["name"] for record in students.iter_records()]
        assert names == ["Alice", "Bob", "Tom"]


class TestGrouping:
    def test_ungrouped_nonempty_has_one_group(self, students):
        assert students.n_groups == 1

    def test_ungrouped_empty_has_zero_groups(self):
        assert Table.empty(["a"]).n_groups == 0

    def test_grouping_counts_distinct_keys(self):
        table = Table(["k", "v"], [["a", 1], ["b", 2], ["a", 3]]).with_grouping(["k"])
        assert table.n_groups == 2
        assert table.group_cols == ("k",)

    def test_group_row_indices(self):
        table = Table(["k", "v"], [["a", 1], ["b", 2], ["a", 3]]).with_grouping(["k"])
        groups = dict(table.group_row_indices())
        assert groups[("a",)] == [0, 2]
        assert groups[("b",)] == [1]

    def test_ungrouped_removes_metadata(self):
        table = Table(["k"], [["a"]]).with_grouping(["k"])
        assert table.ungrouped().group_cols == ()

    def test_grouping_by_unknown_column(self, students):
        with pytest.raises(ColumnNotFoundError):
            students.with_grouping(["missing"])

    def test_grouping_changes_equality(self):
        plain = Table(["k"], [["a"]])
        grouped = plain.with_grouping(["k"])
        assert plain != grouped
        assert hash(plain) != hash(grouped)


class TestDerivedTables:
    def test_select_columns(self, students):
        projected = students.select_columns(["name", "gpa"])
        assert projected.columns == ("name", "gpa")
        assert projected.n_rows == 3

    def test_drop_columns(self, students):
        assert students.drop_columns(["gpa"]).columns == ("id", "name", "age")

    def test_rename_column(self, students):
        renamed = students.rename_column("gpa", "grade")
        assert "grade" in renamed.columns
        assert "gpa" not in renamed.columns

    def test_rename_collision(self, students):
        with pytest.raises(DuplicateColumnError):
            students.rename_column("gpa", "age")

    def test_with_column(self, students):
        extended = students.with_column("passed", [1, 1, 0])
        assert extended.n_cols == 5
        assert extended.column_values("passed") == (1, 1, 0)

    def test_with_column_wrong_length(self, students):
        with pytest.raises(SchemaError):
            students.with_column("x", [1])

    def test_with_column_duplicate(self, students):
        with pytest.raises(DuplicateColumnError):
            students.with_column("age", [1, 2, 3])

    def test_sorted_by(self, students):
        by_age = students.sorted_by(["age"])
        assert by_age.column_values("age") == (8, 12, 18)

    def test_header_and_value_sets(self, students):
        assert "name" in students.header_set()
        assert "Alice" in students.value_set()
        assert "age" in students.value_set()  # column names count as values


class TestEqualityAndRendering:
    def test_equality_tolerates_float_noise(self):
        left = Table(["x"], [[1 / 3]])
        right = Table(["x"], [[0.33333333334]])
        assert left == right

    def test_markdown_contains_values(self, students):
        text = students.to_markdown()
        assert "Alice" in text
        assert "| id |" in text

    def test_repr(self, students):
        assert "3x4" in repr(students)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(-100, 100), st.text(min_size=1, max_size=4)),
            min_size=0,
            max_size=12,
        )
    )
    def test_select_then_select_is_projection(self, rows):
        table = Table(["a", "b"], rows)
        projected = table.select_columns(["a"])
        assert projected.n_rows == table.n_rows
        assert projected.columns == ("a",)

    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            min_size=1,
            max_size=12,
        )
    )
    def test_sorted_by_is_permutation(self, rows):
        table = Table(["a", "b"], rows)
        assert sorted(table.sorted_by(["a"]).rows) == sorted(table.rows)

    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(0, 3)),
            min_size=1,
            max_size=15,
        )
    )
    def test_group_count_bounded_by_rows(self, rows):
        table = Table(["k", "v"], rows).with_grouping(["k"])
        assert 1 <= table.n_groups <= table.n_rows
