"""The top-level synthesis algorithm (Section 5, Algorithm 1 of the paper).

:class:`Morpheus` maintains a worklist of hypotheses ordered by the cost
model.  Each iteration pops the most promising hypothesis, asks the deduction
engine whether it could possibly be turned into a sketch consistent with the
example, completes the surviving sketches bottom-up (with further deduction
inside the completion), checks every complete program against the example,
and finally refines the hypothesis by replacing one of its table holes with a
component application.

Ablations used by the evaluation harness are exposed through
:class:`SynthesisConfig`: deduction on/off, Spec 1 vs Spec 2, partial
evaluation on/off, and n-gram vs uniform hypothesis ranking.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..components.errors import PRUNABLE_ERRORS
from ..dataframe.compare import tables_match_for_synthesis
from ..dataframe.profiling import ExecutionStats, execution_stats
from ..dataframe.table import Table
from ..engine.cache import CacheStats
from ..smt.solver import formula_cache_stats
from .abstraction import SpecLevel
from .completion import (
    CompletionBudgetExceeded,
    CompletionStats,
    CompletionTimeout,
    SketchCompleter,
)
from .component import ComponentLibrary
from .cost import CostModel, UniformCostModel
from .deduction import DeductionEngine, DeductionStats
from .hypothesis import (
    EvaluationFailure,
    Hole,
    Hypothesis,
    component_sequence,
    evaluate,
    hypothesis_size,
    initial_hypothesis,
    is_complete,
    refine,
    render_program,
    sketches,
    table_holes,
)
from .library import standard_library
from .types import Type


@dataclass(frozen=True)
class Example:
    """An input-output example (Definition 3 of the paper)."""

    inputs: Tuple[Table, ...]
    output: Table

    @staticmethod
    def make(inputs: Sequence[Table], output: Table) -> "Example":
        """Convenience constructor accepting any sequence of input tables."""
        return Example(tuple(inputs), output)


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs of the synthesis algorithm (defaults reproduce full Morpheus)."""

    #: Use SMT-based deduction to reject hypotheses / partial programs.
    deduction: bool = True
    #: Which component specification to use for deduction.
    spec_level: SpecLevel = SpecLevel.SPEC2
    #: Use partial evaluation inside deduction.
    partial_evaluation: bool = True
    #: Conflict-driven lemma learning: mine deduction unsat cores into
    #: blocking lemmas that reject families of sibling hypotheses without
    #: touching the solver.  Disable (the ``--no-cdcl`` ablation) to measure
    #: plain Algorithm 2.
    cdcl: bool = True
    #: Tier-1 interval prescreen: decide ground-heavy deduction queries with
    #: compiled attribute propagation before any formula is built.  Disable
    #: (the ``--no-prescreen`` ablation) to send every query straight to the
    #: SMT stack; verdicts (and synthesized programs) are identical either
    #: way, only the work split changes.
    prescreen: bool = True
    #: Use the statistical (bigram) cost model; otherwise order by size only.
    ngram_ranking: bool = True
    #: Largest number of component applications to consider.
    max_size: int = 6
    #: Wall-clock budget in seconds (None = unlimited).
    timeout: Optional[float] = 60.0
    #: Weight of program size in the hypothesis score (see CostModel).  Large
    #: values approximate a strictly smallest-first search.
    size_weight: float = 1.0
    #: Maximum number of candidate hole fillings tried per sketch (None =
    #: unlimited).  Bounds the damage of a single sketch with a huge
    #: first-order argument space.
    completion_budget: Optional[int] = 6000

    def describe(self) -> str:
        """Short human-readable description used by the benchmark reports."""
        if not self.deduction:
            return "no-deduction"
        name = "spec1" if self.spec_level is SpecLevel.SPEC1 else "spec2"
        if not self.partial_evaluation:
            name += "-no-pe"
        if not self.cdcl:
            name += "-no-cdcl"
        if not self.prescreen:
            name += "-no-prescreen"
        return name


@dataclass
class SynthesisStats:
    """Aggregated search statistics for one synthesis run."""

    hypotheses_expanded: int = 0
    hypotheses_enqueued: int = 0
    sketches_generated: int = 0
    sketches_rejected: int = 0
    programs_checked: int = 0
    deduction: DeductionStats = field(default_factory=DeductionStats)
    completion: CompletionStats = field(default_factory=CompletionStats)
    #: This run's slice of the process-wide SMT formula-cache activity.
    solver_cache: CacheStats = field(default_factory=CacheStats)
    #: This run's slice of the concrete-execution counters (tables built,
    #: cells interned, fingerprint/exec-cache hits, comparison fast paths).
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    @property
    def prune_rate(self) -> float:
        """Fraction of partially-filled sketches pruned before completion."""
        if self.completion.partial_programs == 0:
            return 0.0
        return self.completion.pruned_partial / self.completion.partial_programs

    @property
    def deduction_cache_hit_rate(self) -> float:
        """Fraction of deduction queries answered by the verdict memo."""
        return self.deduction.cache_hit_rate

    @property
    def solver_cache_hit_rate(self) -> float:
        """Fraction of SMT checks answered by the formula cache during this run."""
        return self.solver_cache.hit_rate

    @property
    def lemma_prunes(self) -> int:
        """Hypotheses rejected by the lemma store without an SMT query."""
        return self.deduction.lemma_prunes

    @property
    def lemmas_learned(self) -> int:
        """Blocking lemmas mined from deduction unsat cores this run."""
        return self.deduction.lemmas_learned

    @property
    def smt_calls(self) -> int:
        """Deduction SMT ``check()`` calls issued this run."""
        return self.deduction.smt_calls

    @property
    def prescreen_decided(self) -> int:
        """Deduction queries decided by the tier-1 interval prescreen."""
        return self.deduction.prescreen_decided

    @property
    def prescreen_fallback(self) -> int:
        """Deduction queries the prescreen handed to the SMT tier."""
        return self.deduction.prescreen_fallback

    @property
    def prescreen_hit_rate(self) -> float:
        """Fraction of prescreened queries decided without the solver."""
        return self.deduction.prescreen_hit_rate

    @property
    def tables_built(self) -> int:
        """Tables constructed while executing candidate programs this run."""
        return self.execution.tables_built

    @property
    def cells_interned(self) -> int:
        """Cell values deduplicated against the intern pool this run."""
        return self.execution.cells_interned

    @property
    def compare_fastpath_hits(self) -> int:
        """Output comparisons decided by the digest fast path this run."""
        return self.execution.compare_fastpath_hits

    @property
    def exec_cache_hit_rate(self) -> float:
        """Fraction of component executions answered from the execution memo."""
        return self.execution.exec_cache.hit_rate


@dataclass
class SynthesisResult:
    """Outcome of a synthesis run."""

    solved: bool
    program: Optional[Hypothesis]
    elapsed: float
    stats: SynthesisStats
    config: SynthesisConfig

    def render(self, input_names: Optional[Sequence[str]] = None) -> str:
        """The synthesized program as R-style source text."""
        if self.program is None:
            return "<no program found>"
        return render_program(self.program, input_names)

    @property
    def size(self) -> Optional[int]:
        """Number of components in the synthesized program."""
        return hypothesis_size(self.program) if self.program is not None else None


class Morpheus:
    """Example-driven synthesizer for table transformation programs."""

    def __init__(
        self,
        library: Optional[ComponentLibrary] = None,
        config: Optional[SynthesisConfig] = None,
    ) -> None:
        self.library = library if library is not None else standard_library()
        self.config = config if config is not None else SynthesisConfig()
        if self.config.ngram_ranking:
            self.cost_model: CostModel = CostModel(size_weight=self.config.size_weight)
        else:
            self.cost_model = UniformCostModel(size_weight=self.config.size_weight)

    # ------------------------------------------------------------------
    def synthesize(self, example: Example) -> SynthesisResult:
        """Algorithm 1: search for a program consistent with *example*."""
        started = time.monotonic()
        deadline = (
            started + self.config.timeout if self.config.timeout is not None else None
        )
        stats = SynthesisStats()
        # The lemma store is created fresh per run: mined lemmas rest on this
        # example's formula, and per-run state keeps parallel suite runs
        # bit-identical to serial ones (workers share nothing).
        engine = DeductionEngine(
            inputs=example.inputs,
            output=example.output,
            level=self.config.spec_level,
            use_partial_evaluation=self.config.partial_evaluation,
            enabled=self.config.deduction,
            cdcl=self.config.cdcl and self.config.deduction,
            prescreen=self.config.prescreen and self.config.deduction,
            stats=stats.deduction,
        )
        completer = SketchCompleter(
            engine,
            deadline=deadline,
            budget=self.config.completion_budget,
            stats=stats.completion,
        )

        counter = itertools.count()
        node_counter = itertools.count(1)
        worklist = _Worklist(self.cost_model)
        visited = set()

        def push(hypothesis: Hypothesis) -> None:
            signature = _signature(hypothesis)
            if signature in visited:
                return
            visited.add(signature)
            worklist.push(hypothesis, next(counter))
            stats.hypotheses_enqueued += 1

        push(initial_hypothesis())

        def expired() -> bool:
            return deadline is not None and time.monotonic() > deadline

        solver_cache_baseline = formula_cache_stats().snapshot()
        execution_baseline = execution_stats().snapshot()
        program: Optional[Hypothesis] = None
        try:
            while worklist:
                if expired():
                    break
                hypothesis = worklist.pop()
                stats.hypotheses_expanded += 1

                feasible = engine.deduce(hypothesis)
                if feasible:
                    program = self._complete_hypothesis(
                        hypothesis, example, completer, stats
                    )
                    if program is not None:
                        break

                # Hypothesis refinement (lines 15-18 of Algorithm 1).  The
                # deadline is re-checked inside the fan-out so a refinement
                # step over a large library cannot overshoot the budget.
                if hypothesis_size(hypothesis) >= self.config.max_size:
                    continue
                for hole in table_holes(hypothesis, unbound_only=True):
                    if expired():
                        break
                    for component in self.library:
                        if expired():
                            break
                        refined = refine(
                            hypothesis, hole, component, lambda: next(node_counter)
                        )
                        push(refined)
        except CompletionTimeout:
            program = None

        stats.solver_cache = formula_cache_stats().snapshot().since(solver_cache_baseline)
        stats.execution = execution_stats().snapshot().since(execution_baseline)
        elapsed = time.monotonic() - started
        return SynthesisResult(
            solved=program is not None,
            program=program,
            elapsed=elapsed,
            stats=stats,
            config=self.config,
        )

    # ------------------------------------------------------------------
    def _complete_hypothesis(
        self,
        hypothesis: Hypothesis,
        example: Example,
        completer: SketchCompleter,
        stats: SynthesisStats,
    ) -> Optional[Hypothesis]:
        """Lines 11-14 of Algorithm 1: sketch generation, completion, checking."""
        if isinstance(hypothesis, Hole):
            # The bare hypothesis ?0 can only be "the identity program", which
            # is never the answer to a non-trivial task; skip it.
            return None
        for sketch in sketches(hypothesis, len(example.inputs)):
            stats.sketches_generated += 1
            if not completer.engine.deduce(sketch):
                stats.sketches_rejected += 1
                continue
            try:
                for candidate in completer.fill_sketch(sketch):
                    stats.programs_checked += 1
                    if self._check(candidate, example, completer.engine):
                        return candidate
            except CompletionBudgetExceeded:
                # This sketch used up its budget; move on to the next one.
                continue
        return None

    def _check(self, candidate: Hypothesis, example: Example, engine) -> bool:
        """CHECK(p, E): run the program and compare against the expected output.

        Evaluation goes through the engine's evaluation memo and
        fingerprint-keyed execution cache, so the sub-programs the completer
        already executed are never re-run here.
        """
        if not is_complete(candidate):
            return False
        try:
            actual = evaluate(
                candidate, example.inputs,
                memo=engine.evaluation_memo, exec_cache=engine.execution_cache,
            )
        except (EvaluationFailure, *PRUNABLE_ERRORS):
            return False
        started = time.perf_counter()
        matched = tables_match_for_synthesis(actual, example.output)
        execution_stats().compare_time += time.perf_counter() - started
        return matched


class _Worklist:
    """The priority queue of Algorithm 1.

    Hypotheses are ordered by the cost model's score, which blends program
    size (Occam's razor) with the statistical likelihood of the component
    sequence (Section 8 of the paper).
    """

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._heap: List[Tuple[Tuple[float, int], int, Hypothesis]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, hypothesis: Hypothesis, tiebreak: int) -> None:
        priority = self._cost_model.priority(
            hypothesis_size(hypothesis), component_sequence(hypothesis)
        )
        heapq.heappush(self._heap, (priority, tiebreak, hypothesis))

    def pop(self) -> Hypothesis:
        _, _, hypothesis = heapq.heappop(self._heap)
        return hypothesis


def _signature(hypothesis: Hypothesis) -> str:
    """A canonical string describing the tree shape (for duplicate detection)."""
    def walk(node: Hypothesis) -> str:
        if isinstance(node, Hole):
            if node.hole_type is Type.TABLE:
                return f"x{node.binding}" if node.binding is not None else "?"
            return "v"
        children = ",".join(walk(child) for child in node.table_children)
        return f"{node.component.name}({children})"

    return walk(hypothesis)


def synthesize(
    inputs: Sequence[Table],
    output: Table,
    library: Optional[ComponentLibrary] = None,
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """One-call convenience API: synthesize a program from input/output tables."""
    return Morpheus(library, config).synthesize(Example.make(inputs, output))
