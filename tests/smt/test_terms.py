"""Tests for linear expressions and formula construction."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smt import (
    FALSE,
    TRUE,
    And,
    BoolVal,
    Int,
    LinExpr,
    Not,
    Or,
    conjoin,
    disjoin,
    formula_atoms,
    formula_variables,
)


class TestLinExpr:
    def test_variable_and_constant(self):
        x = Int("x")
        assert x.coeffs == {"x": 1}
        assert LinExpr.constant(5).const == 5

    def test_addition_collects_coefficients(self):
        x, y = Int("x"), Int("y")
        expr = x + y + x + 3
        assert expr.coeffs == {"x": 2, "y": 1}
        assert expr.const == 3

    def test_subtraction_and_negation(self):
        x, y = Int("x"), Int("y")
        expr = x - y - 2
        assert expr.coeffs == {"x": 1, "y": -1}
        assert expr.const == -2
        assert (-expr).const == 2

    def test_scalar_multiplication(self):
        x = Int("x")
        assert (3 * x).coeffs == {"x": 3}
        assert (x * Fraction(1, 2)).coeffs == {"x": Fraction(1, 2)}

    def test_product_of_variables_rejected(self):
        with pytest.raises(TypeError):
            Int("x") * Int("y")

    def test_zero_coefficients_dropped(self):
        x = Int("x")
        assert (x - x).coeffs == {}

    def test_evaluate(self):
        expr = Int("x") * 2 + Int("y") - 1
        assert expr.evaluate({"x": 3, "y": 4}) == 9

    def test_structural_equality(self):
        assert Int("x") + 1 == Int("x") + 1
        assert Int("x") != Int("y")


class TestAtoms:
    def test_le_normalisation(self):
        atom = Int("x") <= 5
        assert atom.op == "<="
        assert atom.holds({"x": 5})
        assert not atom.holds({"x": 6})

    def test_strict_inequality_uses_integrality(self):
        atom = Int("x") < 5
        assert atom.holds({"x": 4})
        assert not atom.holds({"x": 5})

    def test_ge_gt(self):
        assert (Int("x") >= 2).holds({"x": 2})
        assert (Int("x") > 2).holds({"x": 3})
        assert not (Int("x") > 2).holds({"x": 2})

    def test_equality_atom(self):
        atom = Int("x").equals(Int("y") + 1)
        assert atom.op == "=="
        assert atom.holds({"x": 3, "y": 2})

    def test_negated_atoms(self):
        le = Int("x") <= 3
        (negated,) = le.negated_atoms()
        assert negated.holds({"x": 4})
        assert not negated.holds({"x": 3})
        eq = Int("x").equals(3)
        branches = eq.negated_atoms()
        assert len(branches) == 2
        assert any(branch.holds({"x": 2}) for branch in branches)
        assert any(branch.holds({"x": 4}) for branch in branches)

    def test_variables(self):
        atom = (Int("a") + Int("b")) <= 0
        assert atom.variables() == ("a", "b")


class TestFormulas:
    def test_conjoin_simplifies(self):
        assert conjoin([]) == TRUE
        assert conjoin([TRUE, TRUE]) == TRUE
        assert conjoin([FALSE, Int("x") <= 1]) == FALSE
        single = Int("x") <= 1
        assert conjoin([single]) is single

    def test_disjoin_simplifies(self):
        assert disjoin([]) == FALSE
        assert disjoin([TRUE, Int("x") <= 1]) == TRUE

    def test_nary_flattening(self):
        a, b, c = (Int(name) <= 0 for name in "abc")
        formula = And(And(a, b), c)
        assert len(formula.operands) == 3

    def test_operator_overloads(self):
        a, b = Int("a") <= 0, Int("b") <= 0
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_formula_variables_and_atoms(self):
        formula = And(Int("a") <= 0, Or(Int("b").equals(1), Not(Int("a") <= 0)))
        assert formula_variables(formula) == ("a", "b")
        assert len(formula_atoms(formula)) == 2

    def test_boolval_repr(self):
        assert repr(BoolVal(True)) == "true"


class TestProperties:
    @given(
        st.dictionaries(st.sampled_from("xyz"), st.integers(-50, 50), min_size=1, max_size=3),
        st.integers(-50, 50),
        st.dictionaries(st.sampled_from("xyz"), st.integers(-20, 20), min_size=3, max_size=3),
    )
    def test_addition_is_pointwise(self, coeffs, const, assignment):
        expr = LinExpr(coeffs, const)
        doubled = expr + expr
        assert doubled.evaluate(assignment) == 2 * expr.evaluate(assignment)

    @given(
        st.integers(-30, 30),
        st.integers(-30, 30),
        st.dictionaries(st.sampled_from("ab"), st.integers(-20, 20), min_size=2, max_size=2),
    )
    def test_le_atom_matches_semantics(self, scale, offset, assignment):
        expr = Int("a") * scale + offset - Int("b")
        atom = expr <= 0
        assert atom.holds(assignment) == (expr.evaluate(assignment) <= 0)
