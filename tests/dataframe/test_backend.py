"""Backend plumbing and python-vs-numpy property tests.

The vectorised backend's contract is observational identity with the
pure-python reference: same cells, same column types, same fingerprints,
same error class *and message* -- over adversarial inputs (NaN, None, huge
integers, empty strings, empty tables) and on both sides of the numpy
backend's small-table delegation threshold.  These tests enforce the
contract directly at the kernel-dispatch layer; the synthesis-level
equivalence rides on the differential suite and the benchmark A/B gates.
"""

import math
import random

import pytest

from repro.components import dplyr, tidyr
from repro.components.errors import ComponentError
from repro.core.arguments import Constant, Predicate
from repro.dataframe import Table
from repro.dataframe.backend import (
    NUMPY_ENV_GATE,
    active_backend,
    install_backend,
    numpy_available,
    resolve_backend,
)
from repro.dataframe.errors import DataFrameError
from repro.engine.context import TaskContext

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed (repro[fast])"
)

COMPARABLE_ERRORS = (ComponentError, DataFrameError, ZeroDivisionError)

#: Adversarial cell pool: missing values, NaN, magnitudes past the int-sum
#: safety guard, float extremes, empty strings and lookalike text.
NASTY_CELLS = [
    None,
    float("nan"),
    0,
    1,
    -5,
    2.5,
    -2.5,
    2**60,
    -(2**55),
    1e308,
    -1e308,
    0.1,
    "",
    "a",
    "b",
    "0",
    "nan",
]


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("cuda")


def test_resolve_backend_passes_instances_through():
    backend = resolve_backend("python")
    assert resolve_backend(backend) is backend


def test_install_backend_swaps_and_returns_previous():
    original = active_backend()
    previous = install_backend("python")
    try:
        assert previous is original
        assert active_backend().name == "python"
    finally:
        install_backend(previous)
    assert active_backend() is original


@requires_numpy
def test_task_context_carries_backend():
    assert active_backend().name == "python"
    with TaskContext(backend="numpy").active():
        assert active_backend().name == "numpy"
        # Nested contexts swap and restore like the other per-task state.
        with TaskContext(backend="python").active():
            assert active_backend().name == "python"
        assert active_backend().name == "numpy"
    assert active_backend().name == "python"


def test_numpy_env_gate_names_the_knob():
    # The README/DESIGN docs reference the gate by name; keep them honest.
    assert NUMPY_ENV_GATE == "REPRO_DISABLE_NUMPY"


def test_session_rejects_unknown_backend():
    from repro.api import RequestError, SynthesisRequest, SynthesisSession

    table = {"columns": ["a"], "rows": [[1]], "col_types": ["num"]}
    request = SynthesisRequest.from_json(
        {
            "examples": [{"inputs": [table], "output": table}],
            "config": {"backend": "cuda"},
        }
    )
    with pytest.raises(RequestError, match="unknown backend"):
        SynthesisSession(request)


def test_config_describe_names_nondefault_backend():
    from repro.core.synthesizer import SynthesisConfig

    assert SynthesisConfig().describe() == "spec2"
    assert SynthesisConfig(backend="numpy").describe() == "spec2-numpy"
    assert (
        SynthesisConfig(deduction=False, backend="numpy").describe()
        == "no-deduction-numpy"
    )


# ----------------------------------------------------------------------
# Property tests: python vs numpy over nasty cells
# ----------------------------------------------------------------------
def cells_equal(left, right):
    if (
        isinstance(left, float)
        and isinstance(right, float)
        and math.isnan(left)
        and math.isnan(right)
    ):
        return True
    return type(left) is type(right) and left == right


def run_on(backend_name, thunk):
    """Run *thunk* under the named backend in an isolated task context."""
    with TaskContext(backend=backend_name).active():
        try:
            result = thunk()
            return (
                "ok",
                result.columns,
                result.col_types,
                result.group_cols,
                result.rows,
                result.fingerprint(),
            )
        except COMPARABLE_ERRORS as error:
            return ("error", type(error).__name__, str(error))


def assert_backends_agree(thunk, context=""):
    python = run_on("python", thunk)
    numpy = run_on("numpy", thunk)
    assert python[0] == numpy[0], (context, python, numpy)
    if python[0] == "error":
        assert python == numpy, context
        return
    assert python[1:4] == numpy[1:4], context
    assert python[5] == numpy[5], (context, "fingerprint mismatch")
    assert len(python[4]) == len(numpy[4]), context
    for row_py, row_np in zip(python[4], numpy[4]):
        for cell_py, cell_np in zip(row_py, row_np):
            assert cells_equal(cell_py, cell_np), (context, cell_py, cell_np)


def nasty_table(rng, n_rows, n_cols=3):
    data = [
        [
            rng.choice(NASTY_CELLS) if rng.random() < 0.35 else rng.randrange(8)
            for _ in range(n_cols)
        ]
        for _ in range(n_rows)
    ]
    return [f"c{i}" for i in range(n_cols)], data


#: Sizes straddling MIN_VECTOR_ROWS (32) plus empty and genuinely large.
SIZES = [0, 1, 7, 31, 32, 33, 64, 300]


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_on_nasty_filter(seed):
    rng = random.Random(seed)
    for n_rows in SIZES:
        columns, data = nasty_table(rng, n_rows)
        constant = rng.choice([None, 0, 1, 2.5, "a", ""])
        operator = rng.choice(["==", "!=", "<", ">", "<=", ">="])
        predicate = Predicate("c1", operator, Constant(constant))
        assert_backends_agree(
            lambda: dplyr.filter_rows(Table(columns, data), predicate),
            f"seed={seed} rows={n_rows} {operator} {constant!r}",
        )


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_on_nasty_arrange(seed):
    rng = random.Random(seed)
    for n_rows in SIZES:
        columns, data = nasty_table(rng, n_rows)
        keys = rng.sample(columns, rng.randint(1, len(columns)))
        assert_backends_agree(
            lambda: dplyr.arrange(Table(columns, data), keys),
            f"seed={seed} rows={n_rows} keys={keys}",
        )


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_on_nasty_gather(seed):
    rng = random.Random(seed)
    for n_rows in SIZES:
        columns, data = nasty_table(rng, n_rows, n_cols=4)
        gathered = rng.sample(columns, rng.randint(2, 3))
        assert_backends_agree(
            lambda: tidyr.gather(Table(columns, data), "key", "value", gathered),
            f"seed={seed} rows={n_rows} gathered={gathered}",
        )


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_on_nasty_join(seed):
    rng = random.Random(seed)
    for n_rows in SIZES:
        left_columns, left_data = nasty_table(rng, n_rows)
        # Share c0/c1 so the natural join has real key columns; c2 renames
        # to a right-only payload column.
        right_columns = ["c0", "c1", "payload"]
        _, right_data = nasty_table(rng, max(0, n_rows - rng.randint(0, 5)))
        assert_backends_agree(
            lambda: dplyr.inner_join(
                Table(left_columns, left_data), Table(right_columns, right_data)
            ),
            f"seed={seed} rows={n_rows}",
        )


@requires_numpy
@pytest.mark.parametrize("seed", range(12))
def test_backends_agree_on_nasty_summarise(seed):
    rng = random.Random(seed)
    for n_rows in SIZES:
        columns, data = nasty_table(rng, n_rows)
        aggregator = rng.choice(["n", "sum", "mean", "min", "max"])
        assert_backends_agree(
            lambda: dplyr.summarise(
                dplyr.group_by(Table(columns, data), ["c0"]), "agg", aggregator, "c1"
            ),
            f"seed={seed} rows={n_rows} agg={aggregator}",
        )


@requires_numpy
def test_backends_agree_on_empty_tables():
    empty = lambda: Table(["a", "b"], [])  # noqa: E731
    assert_backends_agree(
        lambda: dplyr.filter_rows(empty(), Predicate("a", ">", Constant(1))), "filter"
    )
    assert_backends_agree(lambda: dplyr.arrange(empty(), ["a"]), "arrange")
    assert_backends_agree(
        lambda: tidyr.gather(empty(), "key", "value", ["a", "b"]), "gather"
    )
    assert_backends_agree(lambda: dplyr.inner_join(empty(), empty()), "join")
    assert_backends_agree(
        lambda: dplyr.summarise(dplyr.group_by(empty(), ["a"]), "agg", "n", None),
        "summarise",
    )


@requires_numpy
def test_missing_value_comparison_errors_match_both_sides_of_threshold():
    # One row below the threshold (delegated) and many above (vectorised):
    # the ordered-comparison-with-missing error must be identical.
    for n_rows in (4, 64):
        data = [[index, None] for index in range(n_rows)]
        predicate = Predicate("v", "<", Constant(3))
        assert_backends_agree(
            lambda: dplyr.filter_rows(Table(["i", "v"], data), predicate),
            f"rows={n_rows}",
        )
