"""CLI surface tests: the help text advertises every entry point."""

import contextlib
import io

import pytest

from repro.benchmarks import cli


def render_help():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer), pytest.raises(SystemExit) as excinfo:
        cli.main(["--help"])
    assert excinfo.value.code == 0
    return buffer.getvalue()


class TestHelp:
    def test_serve_is_a_figure_choice(self):
        help_text = render_help()
        assert "serve" in help_text
        assert "--port" in help_text

    def test_serve_knobs_are_documented(self):
        help_text = render_help()
        for flag in ("--host", "--ttl", "--rate", "--burst", "--persist-dir"):
            assert flag in help_text, flag

    def test_benchmark_figures_still_listed(self):
        help_text = render_help()
        for figure in ("figure16", "figure17", "figure18", "pruning"):
            assert figure in help_text, figure
