"""Large-table stress benchmarks for the columnar execution backends.

The synthesis benchmarks run the verb kernels over tables of a few dozen
cells, where interpreter overhead dominates and the backends are
indistinguishable.  This suite stresses the kernels where vectorization
actually pays: deterministic synthetic tables of ``10**5`` rows pushed
through the backend-dispatched verbs (``filter``, ``arrange``, ``gather``,
``inner_join``, ``summarise``), timing each verb under the pure-python
reference backend and -- when installed -- the numpy backend.

Every A/B pair is also a correctness check: the two backends' output tables
must agree fingerprint-for-fingerprint (the same content digest the engine
caches key on), so a speedup reported here can never come from a semantic
shortcut.  Run via ``repro-bench --stress`` or
``PYTHONPATH=src python benchmarks/stress_suite.py``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..components import dplyr, tidyr
from ..core.arguments import ColumnList, Constant, Predicate
from ..dataframe.backend import numpy_available, resolve_backend
from ..dataframe.table import Table
from ..engine.context import TaskContext

DEFAULT_ROWS = 100_000
DEFAULT_REPEATS = 3

#: Verbs whose numpy kernels are expected to win by a wide margin on large
#: tables (the CI stress smoke asserts a minimum speedup on a subset).
STRESS_VERBS = ("filter", "arrange", "gather", "inner_join", "summarise")


@dataclass(frozen=True)
class StressCase:
    """One verb over deterministic synthetic data."""

    verb: str
    #: Builds the input tables (fresh per backend, inside its TaskContext,
    #: so interning and per-table backend caches never leak across runs).
    build: Callable[[], Tuple[Table, ...]]
    #: Runs the verb once over the built tables.
    run: Callable[[Sequence[Table]], Table]


def _filter_case(rows: int) -> StressCase:
    rng = random.Random(7)
    data = [
        [index, round(rng.uniform(0.0, 100.0), 3), f"tag{index % 13:02d}"]
        for index in range(rows)
    ]
    predicate = Predicate("value", ">", Constant(50.0))
    return StressCase(
        "filter",
        lambda: (Table(["id", "value", "tag"], data),),
        lambda tables: dplyr.filter_rows(tables[0], predicate),
    )


def _arrange_case(rows: int) -> StressCase:
    rng = random.Random(11)
    data = [
        [f"group{rng.randrange(97):02d}", round(rng.uniform(-50.0, 50.0), 3), index]
        for index in range(rows)
    ]
    columns = ["group", "value"]
    return StressCase(
        "arrange",
        lambda: (Table(["group", "value", "id"], data),),
        lambda tables: dplyr.arrange(tables[0], columns),
    )


def _gather_case(rows: int) -> StressCase:
    rng = random.Random(13)
    wide_columns = ["id", "m1", "m2", "m3", "m4", "m5", "m6"]
    # Six measurement columns: gathering 10**5 / 6 rows still lands on a
    # ~10**5-cell long table, matching the other cases' working-set size.
    data = [
        [index] + [round(rng.uniform(0.0, 10.0), 3) for _ in range(6)]
        for index in range(rows // 6 + 1)
    ]
    gathered = ["m1", "m2", "m3", "m4", "m5", "m6"]
    return StressCase(
        "gather",
        lambda: (Table(wide_columns, data),),
        lambda tables: tidyr.gather(tables[0], "key", "val", gathered),
    )


def _inner_join_case(rows: int) -> StressCase:
    rng = random.Random(17)
    key_space = max(1, rows // 2)
    left = [[rng.randrange(key_space), round(rng.uniform(0.0, 1.0), 4)] for _ in range(rows)]
    right = [[key, f"site{key % 53:02d}"] for key in range(key_space)]
    return StressCase(
        "inner_join",
        lambda: (Table(["id", "value"], left), Table(["id", "site"], right)),
        lambda tables: dplyr.inner_join(tables[0], tables[1]),
    )


def _summarise_case(rows: int) -> StressCase:
    rng = random.Random(19)
    data = [
        [f"region{rng.randrange(211):03d}", rng.randrange(1, 100)] for _ in range(rows)
    ]
    group_columns = ["region"]
    return StressCase(
        "summarise",
        lambda: (Table(["region", "value"], data),),
        lambda tables: dplyr.summarise(
            dplyr.group_by(tables[0], group_columns), "total", "sum", "value"
        ),
    )


def stress_cases(rows: int = DEFAULT_ROWS) -> List[StressCase]:
    """The deterministic verb cases, one per entry of :data:`STRESS_VERBS`."""
    return [
        _filter_case(rows),
        _arrange_case(rows),
        _gather_case(rows),
        _inner_join_case(rows),
        _summarise_case(rows),
    ]


def _time_case(case: StressCase, backend_name: str, repeats: int) -> Tuple[float, str, int]:
    """(best-of-*repeats* seconds, output fingerprint hex, output rows).

    Runs inside a fresh :class:`TaskContext` carrying the named backend:
    the intern pool, execution counters and the per-table array caches all
    start cold, then one untimed warmup run amortises them -- the timed
    repeats measure the steady state both backends reach during a search.
    """
    backend = resolve_backend(backend_name)
    with TaskContext(backend=backend).active():
        tables = case.build()
        result = case.run(tables)  # warmup: populates per-table array caches
        fingerprint = result.fingerprint().hex()
        best = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            result = case.run(tables)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
        if result.fingerprint().hex() != fingerprint:
            raise AssertionError(
                f"{case.verb}: output fingerprint changed between repeats"
            )
        return best, fingerprint, result.n_rows


def run_stress(
    rows: int = DEFAULT_ROWS,
    repeats: int = DEFAULT_REPEATS,
    verbs: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the stress suite on both backends and build a JSON-ready payload.

    The numpy column is ``None`` when numpy is not installed (or disabled
    via ``REPRO_DISABLE_NUMPY``); ``outputs_identical`` compares the two
    backends' output-table fingerprints and must be ``True`` wherever both
    ran -- the stress harness treats a mismatch as a hard failure upstream.
    """
    selected = [
        case for case in stress_cases(rows) if verbs is None or case.verb in set(verbs)
    ]
    with_numpy = numpy_available()
    payload: Dict = {
        "rows": rows,
        "repeats": repeats,
        "numpy_available": with_numpy,
        "verbs": {},
    }
    for case in selected:
        if progress is not None:
            progress(f"stress {case.verb} ({rows} rows, python)")
        python_s, python_fp, out_rows = _time_case(case, "python", repeats)
        entry: Dict = {
            "output_rows": out_rows,
            "python_s": round(python_s, 4),
            "numpy_s": None,
            "speedup": None,
            "outputs_identical": None,
        }
        if with_numpy:
            if progress is not None:
                progress(f"stress {case.verb} ({rows} rows, numpy)")
            numpy_s, numpy_fp, _ = _time_case(case, "numpy", repeats)
            entry["numpy_s"] = round(numpy_s, 4)
            entry["speedup"] = round(python_s / numpy_s, 2) if numpy_s else None
            entry["outputs_identical"] = python_fp == numpy_fp
        payload["verbs"][case.verb] = entry
    return payload


def stress_table(payload: Dict) -> str:
    """Render a stress payload as the tab-separated table the CLI prints."""
    lines = [
        f"Backend stress suite: {payload['rows']} rows, best of {payload['repeats']}",
        "Verb\toutput rows\tpython (s)\tnumpy (s)\tspeedup\toutputs identical",
    ]
    for verb, entry in payload["verbs"].items():
        numpy_s = "n/a" if entry["numpy_s"] is None else f"{entry['numpy_s']:.4f}"
        speedup = "n/a" if entry["speedup"] is None else f"{entry['speedup']:.2f}x"
        identical = (
            "n/a" if entry["outputs_identical"] is None else str(entry["outputs_identical"])
        )
        lines.append(
            f"{verb}\t{entry['output_rows']}\t{entry['python_s']:.4f}"
            f"\t{numpy_s}\t{speedup}\t{identical}"
        )
    if not payload["numpy_available"]:
        lines.append("(numpy backend unavailable: install the repro[fast] extra)")
    return "\n".join(lines)


def stress_failures(payload: Dict, min_speedup: float = 1.0, min_fast_verbs: int = 0) -> List[str]:
    """Gate violations in a stress payload (empty list = pass).

    ``outputs_identical`` must hold wherever both backends ran; when numpy
    is available, at least *min_fast_verbs* verbs must clear *min_speedup*.
    Without numpy only the (vacuous) identity gate applies -- the suite
    still exercises the pure-python kernels at scale.
    """
    failures = [
        f"{verb}: backend outputs differ"
        for verb, entry in payload["verbs"].items()
        if entry["outputs_identical"] is False
    ]
    if payload["numpy_available"] and min_fast_verbs:
        fast = [
            verb
            for verb, entry in payload["verbs"].items()
            if entry["speedup"] is not None and entry["speedup"] >= min_speedup
        ]
        if len(fast) < min_fast_verbs:
            failures.append(
                f"only {len(fast)} verb(s) reached a {min_speedup}x speedup "
                f"(need {min_fast_verbs}): {sorted(payload['verbs'])}"
            )
    return failures
