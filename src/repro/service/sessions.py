"""The session store behind the synthesis service.

One :class:`SessionStore` owns every live session and a single background
scheduler thread.  The threading contract is strict and worth stating once:

* A :class:`~repro.engine.context.TaskContext` isolates a session's search
  state by *swapping process-wide globals* while active, so any
  context-active work -- constructing a kernel, stepping it, suspending and
  restoring it -- must be serialised across the whole process.  The store
  does this with one lock (``_work_lock``): the scheduler thread holds it
  for the duration of each kernel slice, and HTTP worker threads hold it
  for the (short) context-active parts of session creation,
  ``add_example`` and request deserialisation (building a request's tables
  mutates the installed counters and intern pool, so it runs through
  :meth:`SessionStore.deserialize` under the lock in a scratch context).
* Fairness across sessions comes from the engine's
  :class:`~repro.engine.parallel.KernelInterleaver`: each live session is
  enrolled as a *driver* (:meth:`ServiceSession.advance`), and the
  scheduler's loop is nothing but ``interleaver.pump()`` -- the same
  round-robin slicing the benchmark batch runner uses.
* Everything else (the registry dict, the rate limiter, per-session
  condition variables for streaming readers) uses ordinary fine-grained
  locks and never blocks on kernel work.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Dict, List, Optional

from ..api import SynthesisRequest, SynthesisSession
from ..engine.context import TaskContext
from ..engine.parallel import KernelInterleaver

#: Kernel steps per scheduler slice (one ``pump`` pass gives every live
#: session one slice).
DEFAULT_SLICE_STEPS = 64

#: Sessions idle longer than this many seconds are expired by the sweeper.
DEFAULT_TTL = 600.0

#: Token-bucket defaults: sustained mutating requests per second, and the
#: burst the bucket absorbs before returning 429s.
DEFAULT_RATE = 10.0
DEFAULT_BURST = 20


class UnknownSession(KeyError):
    """No live session has the requested id (maps to HTTP 404)."""


class RateLimited(RuntimeError):
    """The token bucket is empty (maps to HTTP 429)."""


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, holding at most *burst*.

    ``allow()`` is thread-safe and never blocks -- a drained bucket simply
    answers ``False`` until refill catches up.
    """

    def __init__(self, rate: float = DEFAULT_RATE, burst: int = DEFAULT_BURST) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()
        self.denied = 0

    def allow(self) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.denied += 1
            return False


class ServiceSession:
    """A stored session: the facade session plus service-level bookkeeping.

    Doubles as a :meth:`~repro.engine.parallel.KernelInterleaver.add_driver`
    driver -- :meth:`advance` is the slice the scheduler's pump grants.
    """

    def __init__(self, store: "SessionStore", session: SynthesisSession) -> None:
        self.id = uuid.uuid4().hex[:16]
        self.store = store
        self.session = session
        self.created_at = time.monotonic()
        self.last_access = self.created_at
        self.expired = False
        #: Guarded by ``changed``; notified after every slice and resume so
        #: streaming readers wake as soon as new candidates can exist.
        self.changed = threading.Condition()
        self._enrolled = False

    # -- driver protocol ----------------------------------------------
    def advance(self, max_steps: int) -> bool:
        """One scheduler slice; ``True`` drops the session from the rotation.

        Called only by the scheduler thread, which holds the store's work
        lock around the context-active kernel stepping.  For a distributed
        configuration (``config.distributed``) the facade session runs the
        *entire* burst -- warm-up, every scheduler round and the merge --
        under this one work-lock acquisition, so co-scheduled sessions wait
        for the whole drive rather than a 64-step slice; distributed
        sessions are best run in a store of their own.  Leaving the
        rotation and :meth:`SessionStore._enroll` are serialised on the
        registry lock: a concurrent ``add_example`` either resumes the
        session before the finished-check here (the task stays enrolled and
        keeps its rotation slot) or after ``_enrolled`` drops (and then
        enrolls a fresh task) -- never in between, which would strand a live
        session outside the rotation.
        """
        if self.expired:
            with self.store._registry_lock:
                self._enrolled = False
            return True
        with self.store._work_lock:
            self.session.advance(max_steps=max_steps)
        with self.changed:
            self.changed.notify_all()
        finished = False
        if self.session.finished:
            with self.store._registry_lock:
                if self.session.finished:
                    self._enrolled = False
                    finished = True
        if finished:
            self.store._persist(self)
        return finished

    # -- service-level views ------------------------------------------
    def touch(self) -> None:
        self.last_access = time.monotonic()

    @property
    def status(self) -> str:
        return "expired" if self.expired else self.session.status

    def state_json(self) -> dict:
        payload = self.session.state().to_json()
        payload["id"] = self.id
        payload["status"] = self.status
        return payload

    def wait_for(self, predicate, timeout: Optional[float]) -> bool:
        """Block until *predicate()* holds, the session settles, or *timeout*."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.changed:
            while True:
                if predicate() or self.expired or self.session.finished:
                    return predicate()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return predicate()
                self.changed.wait(0.1 if remaining is None else min(0.1, remaining))


class SessionStore:
    """Registry + scheduler: the whole service state apart from HTTP plumbing.

    *persist_dir* (optional) enables JSON-file persistence: each session's
    frontier snapshot and candidate list is written to
    ``<persist_dir>/<id>.json`` whenever the session finishes, is suspended
    by a new example, or the store shuts down -- a crash-recovery artifact
    and an audit trail, readable back via :meth:`load_persisted`.  When the
    TTL sweeper expires a session its file is *deleted*: the session is
    unreachable from every endpoint, so keeping the file would leak one
    orphan per expired session forever.

    *kb_path* (optional) opens a shared warm-start knowledge base
    (:mod:`repro.engine.kb`): new sessions reuse executions, attribute
    vectors and mined lemmas persisted by earlier runs of the same tasks.
    """

    def __init__(
        self,
        ttl: Optional[float] = DEFAULT_TTL,
        rate: float = DEFAULT_RATE,
        burst: int = DEFAULT_BURST,
        slice_steps: int = DEFAULT_SLICE_STEPS,
        persist_dir: Optional[str] = None,
        kb_path: Optional[str] = None,
    ) -> None:
        self.ttl = ttl
        self.bucket = TokenBucket(rate=rate, burst=burst)
        self.persist_dir = persist_dir
        #: Warm-start knowledge base shared by every session: a new session
        #: for a previously seen task reuses the corpus of persisted
        #: executions, attribute vectors and mined lemmas (the kernel
        #: stepping is serialised on the work lock, and the KB itself is
        #: thread-safe, so one handle serves all sessions).
        self.kb = None
        if kb_path is not None:
            from ..engine.kb import KnowledgeBase

            self.kb = KnowledgeBase(kb_path, reuse_lemmas=True)
        self._sessions: Dict[str, ServiceSession] = {}
        self._registry_lock = threading.Lock()
        #: Serialises all TaskContext-active work (see the module docstring).
        self._work_lock = threading.Lock()
        self._interleaver = KernelInterleaver(slice_steps=slice_steps)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self.sessions_created = 0
        self.sessions_expired = 0
        self._scheduler = threading.Thread(
            target=self._schedule, name="synthesis-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- public operations (HTTP worker threads) ----------------------
    def deserialize(self, parse, payload):
        """Run *parse(payload)* (a ``from_json`` constructor) table-safely.

        Constructing a :class:`~repro.dataframe.table.Table` mutates the
        *installed* execution counters and intern pool -- the process-wide
        state the scheduler swaps per session -- so request parsing counts
        as context-active work.  It holds the work lock (no session context
        can be installed concurrently) and runs inside a throwaway
        :class:`TaskContext` so not even the process defaults are touched;
        the parsed tables stay valid after the scratch context is dropped.
        """
        with self._work_lock:
            with TaskContext().active():
                return parse(payload)

    def create(self, request: SynthesisRequest) -> ServiceSession:
        """Create, register and enroll a session (raises :class:`RateLimited`)."""
        if not self.bucket.allow():
            raise RateLimited("session quota exceeded, retry later")
        with self._work_lock:
            session = ServiceSession(self, SynthesisSession(request, kb=self.kb))
        with self._registry_lock:
            self._sessions[session.id] = session
            self.sessions_created += 1
        self._enroll(session)
        return session

    def get(self, session_id: str) -> ServiceSession:
        with self._registry_lock:
            try:
                session = self._sessions[session_id]
            except KeyError:
                raise UnknownSession(session_id) from None
        session.touch()
        return session

    def add_example(self, session_id: str, example) -> ServiceSession:
        """Suspend, revalidate, resume -- then re-enroll if work remains."""
        if not self.bucket.allow():
            raise RateLimited("request quota exceeded, retry later")
        session = self.get(session_id)
        with self._work_lock:
            session.session.add_example(example)
        self._persist(session)
        with session.changed:
            session.changed.notify_all()
        self._enroll(session)
        return session

    def close(self) -> None:
        """Stop the scheduler, persist every live session, close the KB."""
        self._stop.set()
        self._wake.set()
        self._scheduler.join(timeout=5)
        with self._registry_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            self._persist(session)
        if self.kb is not None:
            self.kb.close()

    # -- metrics -------------------------------------------------------
    def metrics(self) -> dict:
        with self._registry_lock:
            sessions = list(self._sessions.values())
        live = [s for s in sessions if not s.expired]
        totals: Dict[str, float] = {}
        for session in live:
            for key, value in session.session.counters().items():
                totals[key] = totals.get(key, 0) + value
        steps = totals.get("steps", 0)
        smt = totals.get("smt_calls", 0)
        prescreen = totals.get("prescreen_decided", 0)
        oe_candidates = totals.get("oe_candidates", 0)
        exec_hits = totals.get("exec_cache_hits", 0)
        metrics = {
            "sessions_active": sum(1 for s in live if not s.session.finished),
            "sessions_live": len(live),
            "sessions_created_total": self.sessions_created,
            "sessions_expired_total": self.sessions_expired,
            "rate_limited_total": self.bucket.denied,
            "kernel_steps_total": steps,
            "resumes_total": int(totals.get("resumes", 0)),
            "smt_calls_total": int(smt),
            "prescreen_decided_total": int(prescreen),
            "prescreen_hit_rate": (
                prescreen / (prescreen + totals.get("prescreen_fallback", 0))
                if prescreen
                else 0.0
            ),
            "oe_merged_total": int(totals.get("oe_merged", 0)),
            "oe_merge_rate": (
                totals.get("oe_merged", 0) / oe_candidates if oe_candidates else 0.0
            ),
            "exec_cache_hits_total": int(exec_hits),
        }
        if self.kb is not None:
            stats = self.kb.stats
            metrics.update(
                {
                    "kb_hits_total": stats.hits,
                    "kb_misses_total": stats.misses,
                    "kb_stores_total": stats.stores,
                    "kb_hit_rate": round(stats.hit_rate, 6),
                    "kb_entries": len(self.kb),
                }
            )
        return metrics

    # -- scheduler internals ------------------------------------------
    def _enroll(self, session: ServiceSession) -> None:
        # The registry lock pairs with ServiceSession.advance: enrollment
        # state only changes under it, so a session resumed by add_example
        # is either still in the rotation (flag up) or re-enrolled here --
        # it can never fall through the gap and hang until TTL expiry.
        with self._registry_lock:
            if session.expired or session.session.finished or session._enrolled:
                return
            session._enrolled = True
        self._interleaver.add_driver(session)
        self._wake.set()

    def _schedule(self) -> None:
        while not self._stop.is_set():
            unfinished = self._interleaver.pump()
            self._sweep()
            if not unfinished:
                self._wake.wait(timeout=0.05)
                self._wake.clear()

    def _sweep(self) -> None:
        if self.ttl is None:
            return
        now = time.monotonic()
        with self._registry_lock:
            stale = [
                session
                for session in self._sessions.values()
                if not session.expired and now - session.last_access > self.ttl
            ]
            for session in stale:
                session.expired = True
                self.sessions_expired += 1
                del self._sessions[session.id]
        for session in stale:
            # An expired session is gone from every lookup path, so its
            # persistence file would be unreachable garbage: remove it
            # (previously the sweep left one orphaned file per expired
            # session in persist_dir forever).
            self._remove_persisted(session.id)
            with session.changed:
                session.changed.notify_all()

    # -- persistence ---------------------------------------------------
    def _persist(self, session: ServiceSession) -> None:
        if self.persist_dir is None:
            return
        try:
            with self._work_lock:
                snapshot = (
                    None
                    if session.session.finished
                    else session.session.snapshot_payload()
                )
            payload = {
                "id": session.id,
                "status": session.status,
                "request": session.session.request.to_json(),
                "state": session.session.state().to_json(),
                "snapshot": snapshot,
            }
            os.makedirs(self.persist_dir, exist_ok=True)
            path = os.path.join(self.persist_dir, f"{session.id}.json")
            tmp = f"{path}.tmp"
            with open(tmp, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort crash recovery; the live session
            # is authoritative and must not die with the disk.
            pass

    def _remove_persisted(self, session_id: str) -> None:
        """Delete a session's persistence file (and any stale temp file)."""
        if self.persist_dir is None:
            return
        path = os.path.join(self.persist_dir, f"{session_id}.json")
        for stale in (path, f"{path}.tmp"):
            try:
                os.remove(stale)
            except OSError:
                # Never persisted, already removed, or the disk is gone --
                # cleanup is best-effort either way.
                pass

    def load_persisted(self, session_id: str) -> dict:
        """Read back a persisted session file (raises :class:`UnknownSession`)."""
        if self.persist_dir is None:
            raise UnknownSession(session_id)
        path = os.path.join(self.persist_dir, f"{session_id}.json")
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            raise UnknownSession(session_id) from None

    def list_sessions(self) -> List[dict]:
        with self._registry_lock:
            sessions = list(self._sessions.values())
        return [
            {
                "id": session.id,
                "status": session.status,
                "examples": len(session.session.examples),
                "candidates": len(session.session.candidates),
            }
            for session in sessions
        ]
