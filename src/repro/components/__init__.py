"""Executable table and value transformers (the paper's component set).

Table transformers (:math:`\\Lambda_T`) re-implement the tidyr and dplyr verbs
used in the paper's evaluation; value transformers (:math:`\\Lambda_v`) are the
first-order operators (comparisons, arithmetic, aggregates) that fill the
non-table holes of a sketch.
"""

from .dplyr import (
    GroupContext,
    arrange,
    filter_rows,
    group_by,
    inner_join,
    mutate,
    select,
    summarise,
)
from .errors import (
    ComponentError,
    EvaluationError,
    InvalidArgumentError,
    PRUNABLE_ERRORS,
)
from .tidyr import gather, separate, spread, unite
from .values import (
    AGGREGATORS,
    ARITHMETIC_OPERATORS,
    COLUMN_AGGREGATORS,
    COMPARISON_OPERATORS,
    ValueComponent,
    default_value_components,
)

__all__ = [
    "AGGREGATORS",
    "ARITHMETIC_OPERATORS",
    "COLUMN_AGGREGATORS",
    "COMPARISON_OPERATORS",
    "ComponentError",
    "EvaluationError",
    "GroupContext",
    "InvalidArgumentError",
    "PRUNABLE_ERRORS",
    "ValueComponent",
    "arrange",
    "default_value_components",
    "filter_rows",
    "gather",
    "group_by",
    "inner_join",
    "mutate",
    "select",
    "separate",
    "spread",
    "summarise",
    "unite",
]
