"""Morpheus reproduction: component-based synthesis of table transformations.

This package reproduces *"Component-based Synthesis of Table Consolidation
and Transformation Tasks from Examples"* (PLDI 2017) as a pure-Python
library.  The top-level namespace re-exports the pieces a user typically
needs: the table substrate, the synthesizer, and the component library.

Quickstart::

    from repro import Table, synthesize

    inputs = [Table(["a", "b"], [[1, 2], [3, 4], [5, 6]])]
    output = Table(["a", "b"], [[3, 4], [5, 6]])
    result = synthesize(inputs, output)
    print(result.render())
"""

from .core import (
    Example,
    Morpheus,
    SpecLevel,
    SynthesisConfig,
    SynthesisResult,
    sql_library,
    standard_library,
    synthesize,
)
from .dataframe import Table, tables_equivalent, tables_match_for_synthesis

__version__ = "1.1.0"

#: Parallel/caching APIs re-exported lazily from :mod:`repro.engine` (the
#: engine imports the synthesizer, so an eager import here would be circular).
_ENGINE_EXPORTS = frozenset(
    {
        "ParallelRunner",
        "PortfolioResult",
        "synthesize_batch",
        "synthesize_portfolio",
    }
)

__all__ = [
    "Example",
    "Morpheus",
    "ParallelRunner",
    "PortfolioResult",
    "SpecLevel",
    "SynthesisConfig",
    "SynthesisResult",
    "Table",
    "__version__",
    "sql_library",
    "standard_library",
    "synthesize",
    "synthesize_batch",
    "synthesize_portfolio",
    "tables_equivalent",
    "tables_match_for_synthesis",
]


def __getattr__(name):
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
