"""Bounded memoization primitives shared by the deduction hot path.

Every layer of the deduction stack -- verdicts in
:class:`~repro.core.deduction.DeductionEngine`, abstraction formulas in
:mod:`repro.core.abstraction`, and satisfiability results in
:mod:`repro.smt.solver` -- re-derives the same values thousands of times per
synthesis run.  :class:`LRUCache` gives each of them a bounded memo table with
uniform hit/miss accounting, so the benchmark harness can report how much of
the analysis work was deduplicated.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "not cached" from a cached ``None``/``False``.
_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one memo table."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def snapshot(self) -> "CacheStats":
        """An independent copy (for merging into per-run statistics)."""
        return CacheStats(self.hits, self.misses, self.evictions)

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an earlier *baseline*.

        Used to attribute a slice of a process-wide cache's activity (for
        example the SMT formula cache) to one synthesis run.
        """
        return CacheStats(
            self.hits - baseline.hits,
            self.misses - baseline.misses,
            self.evictions - baseline.evictions,
        )

    def clear(self) -> None:
        """Reset all counters to zero."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: Default bound of one :class:`ExecutionCache` (entries hold whole tables,
#: but candidate programs revisit a small universe of intermediate results).
EXECUTION_CACHE_SIZE = 16384


class ExecutionCache:
    """Fingerprint-keyed memo of concrete component executions.

    The partial evaluator executes the same ``component(tables, args)``
    application for many *different* hypotheses: two candidate programs whose
    sub-programs produce structurally identical intermediate tables repeat
    exactly the same concrete work above them.  This cache keys each
    execution by ``(component, node id, input-table fingerprints, argument
    values)`` -- the table *contents* rather than the sub-hypothesis that
    produced them -- so identical intermediate tables share one execution
    (and one result object, which in turn shares its memoised fingerprints
    and comparison digests downstream).

    Failed executions are cached too: the stored value is the
    ``EvaluationFailure`` to re-raise.

    With a knowledge-base view attached (warm start,
    :mod:`repro.engine.kb`), a local miss falls through to the disk tier
    and every execution is written back, so identical work in a *later
    process* is answered from disk.  The local hit/miss counters see only
    the in-memory probe: a key's first probe is a miss whether the result
    is then computed or restored from the KB, so the deterministic counter
    block stays byte-identical between cold and warm runs.
    """

    __slots__ = ("_results", "_kb")

    def __init__(
        self,
        maxsize: Optional[int] = EXECUTION_CACHE_SIZE,
        stats: Optional[CacheStats] = None,
        kb=None,
    ) -> None:
        self._results: "LRUCache[tuple, object]" = LRUCache(maxsize=maxsize, stats=stats)
        self._kb = kb

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters of the execution memo."""
        return self._results.stats

    def get(self, key: tuple):
        """The cached result (table or failure) for *key*, or ``None``."""
        result = self._results.get(key)
        if result is None and self._kb is not None:
            result = self._kb.get_execution(key)
            if result is not None:
                self._results.put(key, result)
        return result

    def put(self, key: tuple, result: object) -> None:
        """Record the execution result (table or failure) for *key*."""
        self._results.put(key, result)
        if self._kb is not None:
            self._kb.put_execution(key, result)

    def clear(self) -> None:
        """Drop every memoised execution (counters are left untouched)."""
        self._results.clear()


class LRUCache(Generic[K, V]):
    """A size-bounded mapping with least-recently-used eviction.

    ``maxsize=None`` disables eviction (unbounded memoization); ``maxsize=0``
    disables caching entirely while keeping the miss accounting, which lets
    callers turn a cache off without touching the call sites.
    """

    __slots__ = ("maxsize", "stats", "_data")

    def __init__(self, maxsize: Optional[int] = 4096, stats: Optional[CacheStats] = None) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError(f"maxsize must be None or >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.stats = stats if stats is not None else CacheStats()
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Look up *key*, recording a hit or a miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert or refresh a cache entry, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the counters are left untouched)."""
        self._data.clear()
