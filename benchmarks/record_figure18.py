"""Record the distributed-search scaling curve as machine-readable JSON.

Runs a hard-task subset of the Figure-16 suite serially and under the
distributed frontier scheduler (``repro.engine.distributed``) at 1, 2 and 4
workers, and writes ``BENCH_figure18.json`` with per-task walls, the
speedup curve relative to the 1-worker distributed run, and the
determinism gates: every distributed run must synthesize programs
byte-identical to the serial run, and every deterministic counter must be
byte-identical across worker counts.  Re-record the checked-in copy with::

    PYTHONPATH=src python benchmarks/record_figure18.py --out BENCH_figure18.json

Exit status: nonzero on any program or counter divergence (every host).
The >1.3x scaling gate on the 2- or 4-worker wall applies only on hosts
with at least two CPU cores -- on a single core the worker processes time-
share one CPU and the curve records slowdown, which is expected and not a
failure.  (Walls depend on the machine; the counters are deterministic.)
"""

import argparse
import json
import os
import platform
import sys
import time

from repro.api import SynthesisRequest, solve
from repro.benchmarks import r_benchmark_suite

#: Hard tasks: serial search outlives the scheduler's warm-up prefix by an
#: order of magnitude, so the distributed rounds dominate the wall.
HARD_TASKS = [
    "c3_exam_gather_unite_spread",
    "c3_poll_spread_filter",
    "c4_summary_then_spread",
    "c4_min_per_route_spread",
]

WORKER_COUNTS = [1, 2, 4]

#: Required speedup of the best multi-worker wall over the 1-worker wall,
#: enforced only when the host has at least this many real cores.
SPEEDUP_GATE = 1.3
SPEEDUP_GATE_MIN_CORES = 2

TIMEOUT = 60.0


def deterministic_counters(result) -> dict:
    """Every facade counter that must match across worker counts."""
    return {
        key: value
        for key, value in result.counters.items()
        if key != "active_seconds"
    }


def run_task(task, workers=None) -> dict:
    request = SynthesisRequest.from_tables(
        task.inputs, task.output, timeout=TIMEOUT,
        distributed=workers is not None,
        workers=workers,
    )
    started = time.perf_counter()
    result = solve(request)
    wall = time.perf_counter() - started
    return {
        "solved": result.solved,
        "status": result.status,
        "program": result.program,
        "wall_s": round(wall, 4),
        "counters": deterministic_counters(result),
    }


def record() -> dict:
    suite = r_benchmark_suite()
    tasks = {}
    for name in HARD_TASKS:
        task = suite.get(name)
        runs = {"serial": run_task(task)}
        for workers in WORKER_COUNTS:
            runs[f"workers{workers}"] = run_task(task, workers=workers)
        print(
            f"  {name}: serial {runs['serial']['wall_s']}s, "
            + ", ".join(
                f"w{n} {runs[f'workers{n}']['wall_s']}s" for n in WORKER_COUNTS
            ),
            file=sys.stderr,
        )
        tasks[name] = runs

    walls = {
        label: round(sum(runs[label]["wall_s"] for runs in tasks.values()), 4)
        for label in ["serial"] + [f"workers{n}" for n in WORKER_COUNTS]
    }
    base = walls["workers1"]
    speedup_curve = {
        f"workers{n}": round(base / walls[f"workers{n}"], 3) if walls[f"workers{n}"] else None
        for n in WORKER_COUNTS
    }
    programs_identical = all(
        runs[f"workers{n}"]["program"] == runs["serial"]["program"]
        for runs in tasks.values()
        for n in WORKER_COUNTS
    )
    counters_identical = all(
        runs[f"workers{n}"]["counters"] == runs["workers1"]["counters"]
        for runs in tasks.values()
        for n in WORKER_COUNTS
    )
    return {
        "suite": "figure18-distributed-scaling",
        "tasks_selected": HARD_TASKS,
        "timeout_s": TIMEOUT,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "speedup_gate": {
            "threshold": SPEEDUP_GATE,
            "min_cores": SPEEDUP_GATE_MIN_CORES,
            "enforced": (os.cpu_count() or 1) >= SPEEDUP_GATE_MIN_CORES,
        },
        "tasks": tasks,
        "wall_total_s": walls,
        "speedup_curve": speedup_curve,
        "programs_identical": programs_identical,
        "counters_identical": counters_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_figure18.json")
    args = parser.parse_args(argv)
    payload = record()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    curve = payload["speedup_curve"]
    print(
        f"distributed scaling: walls {payload['wall_total_s']}, "
        f"speedup vs 1 worker {curve}, "
        f"programs identical: {payload['programs_identical']}, "
        f"counters identical: {payload['counters_identical']}",
        file=sys.stderr,
    )
    # Determinism gates (every host): byte-identical programs vs serial and
    # byte-identical counters across worker counts.
    if not payload["programs_identical"]:
        return 1
    if not payload["counters_identical"]:
        return 1
    # Scaling gate: only meaningful when the workers have real cores to run
    # on; a single-core host time-shares the pool and records slowdown.
    if payload["speedup_gate"]["enforced"]:
        best = max(value for value in curve.values() if value is not None)
        if best < SPEEDUP_GATE:
            print(
                f"distributed scaling gate failed: best speedup {best}x "
                f"< {SPEEDUP_GATE}x on a {payload['cpu_count']}-core host",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
