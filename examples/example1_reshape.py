"""Paper Example 1: complex reshaping (gather + unite + spread).

An R user has measurements of two variables A and B per id and year and
wants one row per id with one column per variable/year combination.  The
synthesized pipeline reproduces the paper's three-step solution.

Run with::

    python examples/example1_reshape.py
"""

from repro import Table
from repro.api import SynthesisRequest, create_session

INPUT = Table(
    ["id", "year", "A", "B"],
    [
        [1, 2007, 5, 10],
        [2, 2007, 3, 50],
        [1, 2009, 5, 17],
        [2, 2009, 6, 17],
    ],
)

EXPECTED_OUTPUT = Table(
    ["id", "A_2007", "B_2007", "A_2009", "B_2009"],
    [
        [1, 5, 10, 5, 17],
        [2, 3, 50, 6, 17],
    ],
)


def main() -> None:
    request = SynthesisRequest.from_tables([INPUT], EXPECTED_OUTPUT, timeout=60)
    result = create_session(request).solve()
    print("input:")
    print(INPUT.to_markdown())
    print()
    if result.solved:
        print(f"synthesized in {result.elapsed:.2f}s:")
        print(result.render(["input"]))
    else:
        print("no program found within the time limit")


if __name__ == "__main__":
    main()
