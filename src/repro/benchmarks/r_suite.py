"""The 80-task R data-preparation benchmark suite (Figure 16 of the paper).

The paper's 80 benchmarks are StackOverflow questions that cannot be
redistributed here, so this suite recreates the *workload*: the same nine
categories (C1-C9) with the same per-category counts, over small input tables
in the style of the motivating examples.  Every benchmark's expected output
is computed by running a reference tidyr/dplyr pipeline, so every task is
expressible in the component language; the synthesizer only sees the
input/output tables.

Category definitions (column "Description" of Figure 16):

C1  reshaping between long and wide form                           (4 tasks)
C2  arithmetic computations producing new values                   (7 tasks)
C3  reshaping combined with string manipulation of cell contents  (34 tasks)
C4  reshaping and arithmetic computations                          (14 tasks)
C5  arithmetic computations and consolidation of multiple tables   (11 tasks)
C6  arithmetic computations and string manipulation                 (2 tasks)
C7  reshaping and consolidation                                      (1 task)
C8  reshaping, arithmetic computations and string manipulation       (6 tasks)
C9  reshaping, arithmetic computations and consolidation             (1 task)
"""

from __future__ import annotations

from functools import lru_cache

from ..components import dplyr, tidyr
from ..dataframe.table import Table
from .r_suite_c3 import register_c3
from .suite import BenchmarkSuite

#: Human-readable category descriptions (Figure 16's "Description" column).
CATEGORY_DESCRIPTIONS = {
    "C1": "Reshaping dataframes from either 'long' to 'wide' or 'wide' to 'long'",
    "C2": "Arithmetic computations that produce values not present in the input tables",
    "C3": "Combination of reshaping and string manipulation of cell contents",
    "C4": "Reshaping and arithmetic computations",
    "C5": "Arithmetic computations and consolidation of information from multiple tables",
    "C6": "Arithmetic computations and string manipulation tasks",
    "C7": "Reshaping and consolidation tasks",
    "C8": "Combination of reshaping, arithmetic computations and string manipulation",
    "C9": "Combination of reshaping, arithmetic computations and consolidation",
}

#: Per-category benchmark counts, matching Figure 16.
CATEGORY_COUNTS = {
    "C1": 4, "C2": 7, "C3": 34, "C4": 14, "C5": 11, "C6": 2, "C7": 1, "C8": 6, "C9": 1,
}


def _register_c1(suite: BenchmarkSuite) -> None:
    suite.add(
        "c1_scores_wide_to_long",
        "C1",
        "Reshape per-round score columns into long form.",
        [Table(["player", "round1", "round2"],
               [["kai", 12, 15], ["lin", 9, 20], ["mo", 14, 8]])],
        lambda tables: tidyr.gather(tables[0], "round", "score", ["round1", "round2"]),
        ["gather"],
    )
    suite.add(
        "c1_prices_long_to_wide",
        "C1",
        "Widen a long table of product prices per store.",
        [Table(["product", "store", "price"],
               [["pen", "north", 2], ["pen", "south", 3],
                ["pad", "north", 5], ["pad", "south", 4]])],
        lambda tables: tidyr.spread(tables[0], "store", "price"),
        ["spread"],
    )
    suite.add(
        "c1_attendance_roundtrip",
        "C1",
        "Gather weekday attendance columns and widen by class instead.",
        [Table(["class", "mon", "tue"],
               [["yoga", 12, 9], ["spin", 20, 22]])],
        lambda tables: tidyr.spread(
            tidyr.gather(tables[0], "day", "count", ["mon", "tue"]), "class", "count"
        ),
        ["gather", "spread"],
    )
    suite.add(
        "c1_usage_wide_to_long_three",
        "C1",
        "Collapse three monthly usage columns into key/value pairs.",
        [Table(["account", "jan", "feb", "mar"],
               [["a1", 30, 28, 35], ["a2", 10, 15, 12]])],
        lambda tables: tidyr.gather(tables[0], "month", "gb", ["jan", "feb", "mar"]),
        ["gather"],
    )


def _register_c2(suite: BenchmarkSuite) -> None:
    suite.add(
        "c2_orders_count_by_region",
        "C2",
        "Count orders per region.",
        [Table(["order", "region"],
               [[1, "west"], [2, "west"], [3, "east"], [4, "west"], [5, "east"]])],
        lambda tables: dplyr.summarise(dplyr.group_by(tables[0], ["region"]), "n", "n"),
        ["group_by", "summarise"],
    )
    suite.add(
        "c2_sales_total_per_rep",
        "C2",
        "Total sales amount per sales representative.",
        [Table(["rep", "amount"],
               [["ann", 100], ["bob", 40], ["ann", 60], ["bob", 25], ["cat", 90]])],
        lambda tables: dplyr.summarise(dplyr.group_by(tables[0], ["rep"]), "total", "sum", "amount"),
        ["group_by", "summarise"],
    )
    suite.add(
        "c2_flights_to_seattle_share",
        "C2",
        "Count and share of flights to Seattle per origin (paper Example 2).",
        [Table(["flight", "origin", "dest"],
               [[11, "EWR", "SEA"], [725, "JFK", "BQN"], [495, "JFK", "SEA"],
                [461, "LGA", "ATL"], [1696, "EWR", "ORD"], [1670, "EWR", "SEA"]])],
        lambda tables: dplyr.mutate(
            dplyr.summarise(
                dplyr.group_by(
                    dplyr.filter_rows(tables[0], lambda row: row["dest"] == "SEA"), ["origin"]
                ),
                "n", "n",
            ),
            "prop",
            lambda row, group: row["n"] / sum(group.column_values("n")),
        ),
        ["filter", "group_by", "summarise", "mutate"],
    )
    suite.add(
        "c2_grades_mean_per_student",
        "C2",
        "Mean grade per student.",
        [Table(["student", "grade"],
               [["ann", 80], ["ann", 90], ["bob", 70], ["bob", 75], ["bob", 95]])],
        lambda tables: dplyr.summarise(dplyr.group_by(tables[0], ["student"]), "mean_grade", "mean", "grade"),
        ["group_by", "summarise"],
    )
    suite.add(
        "c2_cart_line_totals",
        "C2",
        "Add a line-total column (quantity times unit price).",
        [Table(["item", "qty", "unit"],
               [["pen", 3, 2], ["pad", 2, 5], ["ink", 4, 7]])],
        lambda tables: dplyr.mutate(
            tables[0], "total", lambda row, group: row["qty"] * row["unit"]
        ),
        ["mutate"],
    )
    suite.add(
        "c2_max_temp_per_city",
        "C2",
        "Maximum recorded temperature per city, for warm readings only.",
        [Table(["city", "temp"],
               [["austin", 35], ["austin", 28], ["dallas", 31], ["dallas", 22], ["waco", 18]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.filter_rows(tables[0], lambda row: row["temp"] > 20), ["city"]),
            "hottest", "max", "temp",
        ),
        ["filter", "group_by", "summarise"],
    )
    suite.add(
        "c2_budget_share_of_total",
        "C2",
        "Fraction of the total budget spent by each department.",
        [Table(["dept", "spend"],
               [["eng", 60], ["sales", 30], ["hr", 10]])],
        lambda tables: dplyr.mutate(
            tables[0], "share", lambda row, group: row["spend"] / sum(group.column_values("spend"))
        ),
        ["mutate"],
    )


def _register_c4(suite: BenchmarkSuite) -> None:
    suite.add(
        "c4_quarters_gather_total",
        "C4",
        "Gather quarterly columns and total revenue per company.",
        [Table(["company", "q1", "q2"],
               [["acme", 10, 14], ["bolt", 7, 9], ["core", 20, 22]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                tidyr.gather(tables[0], "quarter", "revenue", ["q1", "q2"]), ["company"]
            ),
            "total", "sum", "revenue",
        ),
        ["gather", "group_by", "summarise"],
    )
    suite.add(
        "c4_summary_then_spread",
        "C4",
        "Average rating per product and channel, widened by channel.",
        [Table(["product", "channel", "rating"],
               [["tv", "web", 4], ["tv", "store", 5], ["tv", "web", 2],
                ["radio", "web", 3], ["radio", "store", 1], ["radio", "store", 5]])],
        lambda tables: tidyr.spread(
            dplyr.summarise(
                dplyr.group_by(tables[0], ["product", "channel"]), "mean_rating", "mean", "rating"
            ),
            "channel", "mean_rating",
        ),
        ["group_by", "summarise", "spread"],
    )
    suite.add(
        "c4_gather_then_mutate_share",
        "C4",
        "Gather medal columns and compute each row's share of all medals.",
        [Table(["country", "gold", "silver"],
               [["nor", 16, 8], ["ger", 12, 10]])],
        lambda tables: dplyr.mutate(
            tidyr.gather(tables[0], "medal", "count", ["gold", "silver"]),
            "share", lambda row, group: row["count"] / sum(group.column_values("count")),
        ),
        ["gather", "mutate"],
    )
    suite.add(
        "c4_spread_then_difference",
        "C4",
        "Widen before/after measurements and compute the improvement.",
        [Table(["athlete", "phase", "time"],
               [["ann", "after", 58], ["ann", "before", 61],
                ["bob", "after", 64], ["bob", "before", 66]])],
        lambda tables: dplyr.mutate(
            tidyr.spread(tables[0], "phase", "time"),
            "gain", lambda row, group: row["before"] - row["after"],
        ),
        ["spread", "mutate"],
    )
    suite.add(
        "c4_gather_filter_mean",
        "C4",
        "Gather sensor columns, drop zero readings, and average per sensor.",
        [Table(["hour", "s1", "s2"],
               [[8, 0, 5], [9, 4, 7], [10, 6, 0], [11, 2, 3]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                dplyr.filter_rows(
                    tidyr.gather(tables[0], "sensor", "reading", ["s1", "s2"]),
                    lambda row: row["reading"] > 0,
                ),
                ["sensor"],
            ),
            "mean_reading", "mean", "reading",
        ),
        ["gather", "filter", "group_by", "summarise"],
    )
    suite.add(
        "c4_counts_per_key_spread",
        "C4",
        "Count observations per species and site, widened by site.",
        [Table(["species", "site"],
               [["owl", "north"], ["owl", "north"], ["owl", "south"],
                ["fox", "south"], ["fox", "south"], ["fox", "north"]])],
        lambda tables: tidyr.spread(
            dplyr.summarise(dplyr.group_by(tables[0], ["species", "site"]), "n", "n"),
            "site", "n",
        ),
        ["group_by", "summarise", "spread"],
    )
    suite.add(
        "c4_mutate_then_gather",
        "C4",
        "Add a profit column, then gather the money columns into long form.",
        [Table(["shop", "revenue", "cost"],
               [["east", 100, 60], ["west", 80, 50]])],
        lambda tables: tidyr.gather(
            dplyr.mutate(tables[0], "profit", lambda row, group: row["revenue"] - row["cost"]),
            "metric", "value", ["revenue", "cost", "profit"],
        ),
        ["mutate", "gather"],
    )
    suite.add(
        "c4_totals_per_year_from_wide",
        "C4",
        "Gather yearly columns and total donations per year.",
        [Table(["donor", "y2022", "y2023"],
               [["ann", 50, 75], ["bob", 20, 10], ["eve", 100, 120]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                tidyr.gather(tables[0], "year", "usd", ["y2022", "y2023"]), ["year"]
            ),
            "total", "sum", "usd",
        ),
        ["gather", "group_by", "summarise"],
    )
    suite.add(
        "c4_min_per_route_spread",
        "C4",
        "Fastest delivery time per route and carrier, widened by carrier.",
        [Table(["route", "carrier", "hours"],
               [["r1", "ups", 30], ["r1", "dhl", 26], ["r1", "ups", 28],
                ["r2", "dhl", 40], ["r2", "ups", 44], ["r2", "dhl", 38]])],
        lambda tables: tidyr.spread(
            dplyr.summarise(
                dplyr.group_by(tables[0], ["route", "carrier"]), "fastest", "min", "hours"
            ),
            "carrier", "fastest",
        ),
        ["group_by", "summarise", "spread"],
    )
    suite.add(
        "c4_gather_max_per_metric",
        "C4",
        "Gather KPI columns and report the maximum per KPI.",
        [Table(["team", "velocity", "bugs"],
               [["a", 30, 4], ["b", 25, 9], ["c", 40, 2]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                tidyr.gather(tables[0], "kpi", "value", ["velocity", "bugs"]), ["kpi"]
            ),
            "best", "max", "value",
        ),
        ["gather", "group_by", "summarise"],
    )
    suite.add(
        "c4_filter_mutate_ratio",
        "C4",
        "Keep completed projects and compute their cost overrun ratio.",
        [Table(["project", "status", "budget", "actual"],
               [["p1", "done", 100, 130], ["p2", "open", 50, 20], ["p3", "done", 80, 72]])],
        lambda tables: dplyr.mutate(
            dplyr.filter_rows(tables[0], lambda row: row["status"] == "done"),
            "ratio", lambda row, group: row["actual"] / row["budget"],
        ),
        ["filter", "mutate"],
    )
    suite.add(
        "c4_spread_counts_by_weekday",
        "C4",
        "Count incidents per service and weekday, widened by weekday.",
        [Table(["service", "weekday"],
               [["api", "mon"], ["api", "mon"], ["api", "tue"],
                ["db", "tue"], ["db", "tue"], ["db", "mon"]])],
        lambda tables: tidyr.spread(
            dplyr.summarise(dplyr.group_by(tables[0], ["service", "weekday"]), "n", "n"),
            "weekday", "n",
        ),
        ["group_by", "summarise", "spread"],
    )
    suite.add(
        "c4_gather_then_count_large",
        "C4",
        "Gather exam parts and count how many scores exceed 10 per part.",
        [Table(["student", "part1", "part2"],
               [["ann", 12, 9], ["bob", 15, 14], ["eve", 8, 16]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                dplyr.filter_rows(
                    tidyr.gather(tables[0], "part", "score", ["part1", "part2"]),
                    lambda row: row["score"] > 10,
                ),
                ["part"],
            ),
            "n", "n",
        ),
        ["gather", "filter", "group_by", "summarise"],
    )
    suite.add(
        "c4_normalise_by_max",
        "C4",
        "Gather throughput columns and normalise each value by the maximum.",
        [Table(["run", "read_mb", "write_mb"],
               [["r1", 200, 100], ["r2", 400, 150]])],
        lambda tables: dplyr.mutate(
            tidyr.gather(tables[0], "op", "mb", ["read_mb", "write_mb"]),
            "relative", lambda row, group: row["mb"] / max(group.column_values("mb")),
        ),
        ["gather", "mutate"],
    )


def _register_c5(suite: BenchmarkSuite) -> None:
    orders = Table(["order", "customer", "amount"],
                   [[1, "ann", 30], [2, "bob", 45], [3, "ann", 25], [4, "eve", 60]])
    customers = Table(["customer", "city"],
                      [["ann", "austin"], ["bob", "dallas"], ["eve", "waco"]])
    suite.add(
        "c5_orders_join_city",
        "C5",
        "Attach each order to the customer's city.",
        [orders, customers],
        lambda tables: dplyr.inner_join(tables[0], tables[1]),
        ["inner_join"],
    )
    suite.add(
        "c5_spend_by_city",
        "C5",
        "Total spend per city after joining orders with customers.",
        [orders, customers],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(tables[0], tables[1]), ["city"]),
            "total", "sum", "amount",
        ),
        ["inner_join", "group_by", "summarise"],
    )
    suite.add(
        "c5_join_filter_large_orders",
        "C5",
        "Orders above 40 with their customer's city.",
        [orders, customers],
        lambda tables: dplyr.filter_rows(
            dplyr.inner_join(tables[0], tables[1]), lambda row: row["amount"] > 40
        ),
        ["inner_join", "filter"],
    )
    employees = Table(["emp", "dept"],
                      [["kim", "eng"], ["lee", "eng"], ["pat", "sales"]])
    salaries = Table(["emp", "salary"],
                     [["kim", 120], ["lee", 100], ["pat", 90]])
    suite.add(
        "c5_salary_per_department",
        "C5",
        "Total salary cost per department.",
        [employees, salaries],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(tables[0], tables[1]), ["dept"]),
            "payroll", "sum", "salary",
        ),
        ["inner_join", "group_by", "summarise"],
    )
    suite.add(
        "c5_salary_share",
        "C5",
        "Each employee's share of the total payroll (join then mutate).",
        [employees, salaries],
        lambda tables: dplyr.mutate(
            dplyr.inner_join(tables[0], tables[1]),
            "share", lambda row, group: row["salary"] / sum(group.column_values("salary")),
        ),
        ["inner_join", "mutate"],
    )
    products = Table(["sku", "category"],
                     [["s1", "tools"], ["s2", "toys"], ["s3", "tools"]])
    stock = Table(["sku", "warehouse", "units"],
                  [["s1", "east", 10], ["s2", "east", 4], ["s3", "west", 7], ["s1", "west", 2]])
    suite.add(
        "c5_units_per_category",
        "C5",
        "Units in stock per product category.",
        [products, stock],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(tables[0], tables[1]), ["category"]),
            "units", "sum", "units",
        ),
        ["inner_join", "group_by", "summarise"],
    )
    suite.add(
        "c5_join_project_columns",
        "C5",
        "Join stock with categories and keep sku, category and units.",
        [products, stock],
        lambda tables: dplyr.select(
            dplyr.inner_join(tables[0], tables[1]), ["sku", "category", "units"]
        ),
        ["inner_join", "select"],
    )
    visits = Table(["patient", "clinic", "charge"],
                   [["p1", "north", 100], ["p2", "south", 250], ["p1", "north", 80], ["p3", "south", 40]])
    insurance = Table(["patient", "plan"],
                      [["p1", "gold"], ["p2", "silver"], ["p3", "gold"]])
    suite.add(
        "c5_charges_by_plan",
        "C5",
        "Total charges per insurance plan.",
        [visits, insurance],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(tables[0], tables[1]), ["plan"]),
            "charges", "sum", "charge",
        ),
        ["inner_join", "group_by", "summarise"],
    )
    suite.add(
        "c5_count_visits_per_plan",
        "C5",
        "Number of visits per insurance plan.",
        [visits, insurance],
        lambda tables: dplyr.summarise(
            dplyr.group_by(dplyr.inner_join(tables[0], tables[1]), ["plan"]), "n", "n"
        ),
        ["inner_join", "group_by", "summarise"],
    )
    suite.add(
        "c5_gold_plan_visits",
        "C5",
        "Visits by gold-plan patients only.",
        [visits, insurance],
        lambda tables: dplyr.filter_rows(
            dplyr.inner_join(tables[0], tables[1]), lambda row: row["plan"] == "gold"
        ),
        ["inner_join", "filter"],
    )
    suite.add(
        "c5_expensive_visit_count",
        "C5",
        "Count visits charged above 75 per clinic (join brings in the plan, then filter).",
        [visits, insurance],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                dplyr.filter_rows(
                    dplyr.inner_join(tables[0], tables[1]), lambda row: row["charge"] > 75
                ),
                ["clinic"],
            ),
            "n", "n",
        ),
        ["inner_join", "filter", "group_by", "summarise"],
    )


def _register_c6(suite: BenchmarkSuite) -> None:
    suite.add(
        "c6_split_code_then_total",
        "C6",
        "Split region_channel labels and total revenue per region.",
        [Table(["segment", "revenue"],
               [["emea_web", 120], ["emea_store", 60], ["apac_web", 90], ["apac_store", 30]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                tidyr.separate(tables[0], "segment", ["region", "channel"]), ["region"]
            ),
            "total", "sum", "revenue",
        ),
        ["separate", "group_by", "summarise"],
    )
    suite.add(
        "c6_unite_after_ratio",
        "C6",
        "Compute a win ratio and label each team with its league.",
        [Table(["team", "league", "wins", "games"],
               [["reds", "east", 8, 10], ["blues", "west", 5, 10]])],
        lambda tables: tidyr.unite(
            dplyr.mutate(tables[0], "ratio", lambda row, group: row["wins"] / row["games"]),
            "team_league", ["team", "league"],
        ),
        ["mutate", "unite"],
    )


def _register_c7(suite: BenchmarkSuite) -> None:
    positions = Table(["frame", "X1", "X2"],
                      [[1, 0, 0], [2, 10, 15], [3, 15, 10]])
    speeds = Table(["frame", "X1", "X2"],
                   [[1, 0, 0], [2, 14.5, 12.5], [3, 13.9, 14.6]])
    suite.add(
        "c7_vehicle_consolidation",
        "C7",
        "Consolidate vehicle ids and speeds into one long table (paper Example 3, two slots).",
        [positions, speeds],
        lambda tables: dplyr.filter_rows(
            dplyr.inner_join(
                tidyr.gather(tables[0], "pos", "carid", ["X1", "X2"]),
                tidyr.gather(tables[1], "pos", "speed", ["X1", "X2"]),
            ),
            lambda row: row["carid"] != 0,
        ),
        ["gather", "gather", "inner_join", "filter"],
    )


def _register_c8(suite: BenchmarkSuite) -> None:
    suite.add(
        "c8_split_then_count",
        "C8",
        "Split machine_state labels and count log lines per state.",
        [Table(["event", "lines"],
               [["web_up", 4], ["web_down", 2], ["db_up", 6], ["db_down", 1]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(tidyr.separate(tables[0], "event", ["machine", "state"]), ["state"]),
            "total", "sum", "lines",
        ),
        ["separate", "group_by", "summarise"],
    )
    suite.add(
        "c8_gather_split_mean",
        "C8",
        "Gather measurement columns, split the metric label and average per unit.",
        [Table(["site", "co2_ppm", "no2_ppm"],
               [["s1", 410, 30], ["s2", 390, 25]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                tidyr.separate(
                    tidyr.gather(tables[0], "metric", "value", ["co2_ppm", "no2_ppm"]),
                    "metric", ["gas", "unit"],
                ),
                ["gas"],
            ),
            "mean_value", "mean", "value",
        ),
        ["gather", "separate", "group_by", "summarise"],
    )
    suite.add(
        "c8_unite_then_spread_totals",
        "C8",
        "Total hours per person-project pair, widened by month label.",
        [Table(["person", "project", "month", "hours"],
               [["ann", "apollo", "jan", 20], ["ann", "apollo", "feb", 25],
                ["bob", "zeus", "jan", 10], ["bob", "zeus", "feb", 15]])],
        lambda tables: tidyr.spread(
            tidyr.unite(tables[0], "assignment", ["person", "project"]), "month", "hours"
        ),
        ["unite", "spread"],
    )
    suite.add(
        "c8_gather_ratio_of_total",
        "C8",
        "Gather channel columns and compute each channel's share per campaign.",
        [Table(["campaign", "email", "social"],
               [["spring", 120, 80], ["fall", 60, 140]])],
        lambda tables: dplyr.mutate(
            tidyr.gather(tables[0], "channel", "clicks", ["email", "social"]),
            "share", lambda row, group: row["clicks"] / sum(group.column_values("clicks")),
        ),
        ["gather", "mutate"],
    )
    suite.add(
        "c8_separate_filter_total",
        "C8",
        "Split sample ids, keep 2024 samples and total their counts.",
        [Table(["sample", "count"],
               [["2023_a", 5], ["2024_a", 8], ["2024_b", 12], ["2023_b", 3]])],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                dplyr.filter_rows(
                    tidyr.separate(tables[0], "sample", ["year", "batch"]),
                    lambda row: row["year"] == "2024",
                ),
                ["year"],
            ),
            "total", "sum", "count",
        ),
        ["separate", "filter", "group_by", "summarise"],
    )
    suite.add(
        "c8_spread_then_margin",
        "C8",
        "Widen income/expense rows per branch-quarter label and compute the margin.",
        [Table(["branch", "kind", "amount"],
               [["north", "income", 100], ["north", "expense", 70],
                ["south", "income", 50], ["south", "expense", 30]])],
        lambda tables: dplyr.mutate(
            tidyr.spread(tables[0], "kind", "amount"),
            "margin", lambda row, group: row["income"] - row["expense"],
        ),
        ["spread", "mutate"],
    )


def _register_c9(suite: BenchmarkSuite) -> None:
    readings = Table(["station", "jan", "feb"],
                     [["s1", 12, 18], ["s2", 20, 14]])
    locations = Table(["station", "basin"],
                      [["s1", "north"], ["s2", "south"]])
    suite.add(
        "c9_rainfall_by_basin",
        "C9",
        "Gather monthly rainfall, join station locations and total per basin.",
        [readings, locations],
        lambda tables: dplyr.summarise(
            dplyr.group_by(
                dplyr.inner_join(
                    tidyr.gather(tables[0], "month", "mm", ["jan", "feb"]), tables[1]
                ),
                ["basin"],
            ),
            "total", "sum", "mm",
        ),
        ["gather", "inner_join", "group_by", "summarise"],
    )


@lru_cache(maxsize=1)
def r_benchmark_suite() -> BenchmarkSuite:
    """Build (and cache) the full 80-task R benchmark suite."""
    suite = BenchmarkSuite("r-data-preparation")
    suite.category_descriptions.update(CATEGORY_DESCRIPTIONS)
    _register_c1(suite)
    _register_c2(suite)
    register_c3(suite)
    _register_c4(suite)
    _register_c5(suite)
    _register_c6(suite)
    _register_c7(suite)
    _register_c8(suite)
    _register_c9(suite)
    return suite
