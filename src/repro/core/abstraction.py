"""The abstraction function :math:`\\alpha` and symbolic table attributes.

The deduction engine reasons about tables only through a small vector of
integer attributes.  :class:`TableVars` bundles the SMT variables standing for
one (possibly unknown) table; :func:`abstract_table` is the abstraction
function :math:`\\alpha` of Figure 12, which constrains those variables to the
attribute values of a *concrete* table.

Two granularities are supported, matching the paper's evaluation:

* **Spec 1** (Table 2): only ``row`` and ``col``.
* **Spec 2** (Table 3): additionally ``group`` (number of groups),
  ``newCols`` and ``newVals`` (number of column names / values that do not
  already occur in the user-provided input tables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..dataframe.table import Table
from ..engine.cache import CacheStats, LRUCache
from ..smt.terms import Formula, Int, LinExpr, conjoin


class SpecLevel(enum.Enum):
    """Which component specification (and abstraction granularity) to use."""

    SPEC1 = 1
    SPEC2 = 2


@dataclass(frozen=True)
class TableVars:
    """The SMT variables describing one table."""

    name: str

    @property
    def row(self) -> LinExpr:
        """Number of rows (``T.row``)."""
        return Int(f"{self.name}.row")

    @property
    def col(self) -> LinExpr:
        """Number of columns (``T.col``)."""
        return Int(f"{self.name}.col")

    @property
    def group(self) -> LinExpr:
        """Number of groups (``T.group``, Spec 2 only)."""
        return Int(f"{self.name}.group")

    @property
    def new_cols(self) -> LinExpr:
        """Number of column names not present in the example inputs (``T.newCols``)."""
        return Int(f"{self.name}.newCols")

    @property
    def new_vals(self) -> LinExpr:
        """Number of values not present in the example inputs (``T.newVals``)."""
        return Int(f"{self.name}.newVals")

    def equal_to(self, other: "TableVars", level: SpecLevel) -> Formula:
        """Attribute-wise equality between two symbolic tables.

        Used for the :math:`\\varphi_{in}` / :math:`\\varphi_{out}` constraints
        of Algorithm 2 that identify hypothesis holes with input variables and
        the hypothesis root with the synthesized program's return value.
        """
        constraints = [
            self.row.equals(other.row),
            self.col.equals(other.col),
        ]
        if level is SpecLevel.SPEC2:
            constraints.extend(
                [
                    self.group.equals(other.group),
                    self.new_cols.equals(other.new_cols),
                    self.new_vals.equals(other.new_vals),
                ]
            )
        return conjoin(constraints)


@dataclass(frozen=True)
class ExampleBaseline:
    """The value / header universe of the user-provided input tables.

    ``newCols`` and ``newVals`` are measured against this baseline (see the
    appendix of the paper, Example 13).
    """

    headers: frozenset
    values: frozenset

    @staticmethod
    def from_tables(tables: Iterable[Table]) -> "ExampleBaseline":
        """Build the baseline from the example's input tables."""
        headers = frozenset()
        values = frozenset()
        for table in tables:
            headers |= table.header_set()
            values |= table.value_set()
        return ExampleBaseline(headers, values)

    def new_cols(self, table: Table) -> int:
        """``T.newCols``: column names of *table* that appear nowhere in the inputs.

        The comparison is against the inputs' full *value* universe (column
        names and cell contents), not just their headers: a ``spread`` turns
        cell values into column names, and those columns are not "new"
        information.  This keeps the spread/gather specifications of Table 3
        sound; with the header-only definition, ``spread`` applied directly to
        an input table would violate its own specification.
        """
        return len(table.header_set() - self.values)

    def new_vals(self, table: Table) -> int:
        """``T.newVals`` for a concrete table."""
        return len(table.value_set() - self.values)


def table_group_count(table: Table) -> int:
    """``T.group`` for a concrete table (1 for an ungrouped, non-empty table)."""
    return table.n_groups


def table_attribute_vector(
    table: Table, level: SpecLevel, baseline: ExampleBaseline
) -> Tuple[int, int, int, int, int]:
    """The ground ``(row, col, group, newCols, newVals)`` vector of a table.

    This is the attribute vector both tiers of the deduction pipeline consume:
    tier 1 (:mod:`repro.core.propagation`) plugs it straight into compiled
    interval transfers, tier 2 wraps it in SMT variables via
    :func:`abstract_attributes`.  Under Spec 1 the last three attributes never
    reach either tier, so the whole-table scans they require are skipped
    (zeroing them also keeps attribute-keyed caches from splitting on unused
    fields).
    """
    if level is SpecLevel.SPEC1:
        return (table.n_rows, table.n_cols, 0, 0, 0)
    return (
        table.n_rows,
        table.n_cols,
        table_group_count(table),
        baseline.new_cols(table),
        baseline.new_vals(table),
    )


def abstract_table(
    table: Table,
    variables: TableVars,
    level: SpecLevel,
    baseline: ExampleBaseline,
    symbolic_group: bool = False,
) -> Formula:
    """The abstraction :math:`\\alpha(T)` of a concrete table.

    When ``symbolic_group`` is set the ``group`` attribute is only constrained
    to be positive: the user-provided *output* table carries no grouping
    metadata, so (as in the appendix of the paper) its group count is a fresh
    unknown.
    """
    attributes = table_attribute_vector(table, level, baseline)
    return abstract_attributes(attributes, variables, level, symbolic_group)


#: Default bound of one :class:`AbstractionCache` (attribute vectors are tiny
#: tuples, so the memory cost per entry is a few hundred bytes).
ABSTRACTION_CACHE_SIZE = 8192


class AbstractionCache:
    """LRU-bounded memo of abstraction formulas.

    The deduction engine re-abstracts the same (table attributes, variable
    name) pairs for thousands of queries per synthesis run; this cache keys
    the resulting formula fragments by the attribute vector rather than the
    table object, so structurally identical tables produced by different
    candidate programs share one formula.
    """

    __slots__ = ("_formulas",)

    def __init__(
        self,
        maxsize: Optional[int] = ABSTRACTION_CACHE_SIZE,
        stats: Optional[CacheStats] = None,
    ) -> None:
        self._formulas: LRUCache = LRUCache(maxsize=maxsize, stats=stats)

    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters of the formula memo."""
        return self._formulas.stats

    def abstract(
        self,
        attributes: Tuple[int, int, int, int, int],
        variables: TableVars,
        level: SpecLevel,
        symbolic_group: bool = False,
    ) -> Formula:
        """The abstraction formula for a table with the given attribute vector."""
        key = (attributes, variables.name, level, symbolic_group)
        cached = self._formulas.get(key)
        if cached is not None:
            return cached
        formula = abstract_attributes(attributes, variables, level, symbolic_group)
        self._formulas.put(key, formula)
        return formula

    def clear(self) -> None:
        """Drop every memoised formula (counters are left untouched)."""
        self._formulas.clear()


def abstract_attributes(
    attributes: Tuple[int, int, int, int, int],
    variables: TableVars,
    level: SpecLevel,
    symbolic_group: bool = False,
) -> Formula:
    """:func:`abstract_table` on a pre-computed attribute vector."""
    rows, cols, groups, new_cols, new_vals = attributes
    constraints = [variables.row.equals(rows), variables.col.equals(cols)]
    if level is SpecLevel.SPEC2:
        if symbolic_group:
            constraints.append(variables.group >= 1)
            constraints.append(variables.group <= max(rows, 1))
        else:
            constraints.append(variables.group.equals(groups))
        constraints.append(variables.new_cols.equals(new_cols))
        constraints.append(variables.new_vals.equals(new_vals))
    return conjoin(constraints)


def nonnegativity(variables: Sequence[TableVars], level: SpecLevel) -> Formula:
    """Basic sanity constraints every table satisfies (rows, cols, groups >= 0)."""
    constraints = []
    for table_vars in variables:
        constraints.append(table_vars.row >= 0)
        constraints.append(table_vars.col >= 1)
        if level is SpecLevel.SPEC2:
            constraints.append(table_vars.group >= 0)
            constraints.append(table_vars.group <= table_vars.row)
            constraints.append(table_vars.new_cols >= 0)
            constraints.append(table_vars.new_vals >= 0)
            constraints.append(table_vars.new_cols <= table_vars.col)
            constraints.append(table_vars.new_cols <= table_vars.new_vals)
    return conjoin(constraints)
