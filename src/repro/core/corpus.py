"""A built-in corpus of tidyr/dplyr pipelines for the statistical cost model.

Section 8 of the paper trains a 2-gram model (using SRILM) on code snippets
collected from existing R code, where every snippet is the sequence of table
transformers it applies.  The snippets below play that role offline: they are
the idiomatic pipelines that appear over and over in data-preparation answers
on Stack Overflow -- reshape chains (``gather`` -> ``spread``), split-apply-
combine chains (``group_by`` -> ``summarise`` -> ``mutate``), consolidation
chains (``gather`` -> ``inner_join``), and so on.

Each entry is one "sentence"; words are component names.
"""

from typing import List, Tuple

#: Training sentences for the 2-gram model.
TRAINING_CORPUS: Tuple[Tuple[str, ...], ...] = (
    # --- plain reshaping -------------------------------------------------
    ("gather", "spread"),
    ("gather", "spread"),
    ("spread",),
    ("gather",),
    ("gather", "unite", "spread"),
    ("gather", "unite", "spread"),
    ("gather", "separate", "spread"),
    ("separate", "spread"),
    ("unite", "spread"),
    ("gather", "spread", "select"),
    # --- split-apply-combine ---------------------------------------------
    ("group_by", "summarise"),
    ("group_by", "summarise"),
    ("group_by", "summarise"),
    ("group_by", "summarise", "mutate"),
    ("group_by", "summarise", "mutate"),
    ("filter", "group_by", "summarise"),
    ("filter", "group_by", "summarise", "mutate"),
    ("group_by", "summarise", "filter"),
    ("group_by", "summarise", "arrange"),
    ("group_by", "mutate"),
    ("mutate", "group_by", "summarise"),
    # --- selection / projection pipelines --------------------------------
    ("filter", "select"),
    ("select", "filter"),
    ("filter",),
    ("select",),
    ("mutate",),
    ("mutate", "select"),
    ("mutate", "filter"),
    ("filter", "mutate"),
    ("select", "arrange"),
    ("filter", "arrange"),
    # --- consolidation ----------------------------------------------------
    ("inner_join",),
    ("inner_join", "filter"),
    ("inner_join", "select"),
    ("inner_join", "group_by", "summarise"),
    ("gather", "inner_join"),
    ("gather", "gather", "inner_join"),
    ("gather", "inner_join", "filter"),
    ("gather", "inner_join", "filter", "arrange"),
    ("inner_join", "mutate"),
    ("inner_join", "arrange"),
    # --- reshaping + computation ------------------------------------------
    ("gather", "group_by", "summarise"),
    ("gather", "group_by", "summarise", "spread"),
    ("group_by", "summarise", "spread"),
    ("gather", "mutate", "spread"),
    ("mutate", "spread"),
    ("gather", "filter"),
    ("gather", "filter", "spread"),
    ("spread", "mutate"),
    ("spread", "mutate", "select"),
    ("gather", "separate", "group_by", "summarise"),
    # --- string manipulation chains ----------------------------------------
    ("separate",),
    ("unite",),
    ("separate", "select"),
    ("unite", "select"),
    ("separate", "filter"),
    ("unite", "mutate"),
    ("separate", "group_by", "summarise"),
    ("mutate", "unite"),
    ("separate", "spread", "mutate"),
    ("gather", "unite", "spread", "mutate"),
)


def training_sentences() -> List[Tuple[str, ...]]:
    """Return a mutable copy of the training corpus."""
    return [tuple(sentence) for sentence in TRAINING_CORPUS]
