"""Decision procedure for conjunctions of linear integer constraints.

This is the theory solver behind :mod:`repro.smt.solver`.  Given a
conjunction of atoms (``expr <= 0`` / ``expr == 0`` over integer variables)
it decides satisfiability and produces an integer model.

The procedure is layered the way the deduction formulas of the paper are
shaped:

1. **Equality / constant propagation** -- most conjuncts are of the form
   ``x == k`` or ``x == y (+ k)`` (table abstractions and the input-binding
   constraints), so a substitution pass eliminates the bulk of the variables.
   All arithmetic in this phase is plain integer arithmetic.
2. **Interval propagation** -- single- and multi-variable inequalities tighten
   per-variable integer bounds; an empty interval or an inequality whose
   minimum exceeds zero is a conflict.
3. **Rational relaxation** -- small systems that survive propagation are
   handed to the exact simplex solver (:mod:`repro.smt.simplex`) and, if the
   witness is fractional, to a depth-bounded branch-and-bound search.
4. **Conservative SAT** -- larger residual systems, or branch-and-bound
   hitting its depth limit, are reported as satisfiable.  This keeps the
   synthesizer's pruning *sound*: a hypothesis is only discarded on a
   definite UNSAT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Tuple

from .simplex import LinearConstraint, solve_rational
from .terms import Atom

#: Maximum depth of the branch-and-bound search before giving up (and
#: conservatively reporting SAT).
MAX_BRANCH_DEPTH = 40

#: Maximum number of interval-propagation sweeps over multi-variable rows.
MAX_INTERVAL_ROUNDS = 25

#: Largest residual system (number of variables) handed to the exact simplex
#: solver.  Larger systems that survive interval propagation are reported as
#: satisfiable (a sound over-approximation for the deduction engine, which
#: prunes only on UNSAT).
SIMPLEX_VARIABLE_LIMIT = 10


@dataclass
class TheoryResult:
    """Outcome of a theory check."""

    satisfiable: bool
    model: Optional[Dict[str, int]] = None
    #: True when the result is a conservative "assume SAT" answer (produced by
    #: hitting a size or depth limit of the exact backend).
    approximate: bool = False


#: A row is ``(coeffs, const, is_equality)`` representing ``sum + const (<=|==) 0``
#: with integer coefficients.
Row = Tuple[Dict[str, int], int, bool]


@dataclass
class _Problem:
    """Mutable state of the propagation phase."""

    rows: List[Row] = field(default_factory=list)
    #: Substitution: variable -> (integer coeffs over other variables, const).
    substitution: Dict[str, Tuple[Dict[str, int], int]] = field(default_factory=dict)
    lower: Dict[str, int] = field(default_factory=dict)
    upper: Dict[str, int] = field(default_factory=dict)


@lru_cache(maxsize=65536)
def _integer_row_cached(atom: Atom) -> Tuple[Tuple[Tuple[str, int], ...], int, bool]:
    """Scale an atom to integer coefficients (immutable, memoised form).

    Atoms are immutable and heavily shared across queries (the deduction
    engine interns its formula fragments), while the lcm/Fraction arithmetic
    here is the single hottest piece of a theory check -- the unsat-core
    deletion loop alone re-rows the same atoms a dozen times per mined lemma.
    """
    expr = atom.expr
    denominators = [coeff.denominator for coeff in expr.coeffs.values()]
    denominators.append(expr.const.denominator)
    scale = math.lcm(*denominators)
    coeffs = tuple(
        (name, int(coeff * scale)) for name, coeff in expr.coeffs.items()
    )
    return coeffs, int(expr.const * scale), atom.op == "=="


def _integer_row(atom: Atom) -> Row:
    """Scale an atom to integer coefficients."""
    coeffs, const, is_equality = _integer_row_cached(atom)
    # A fresh dict per use: rows flow through substitution/propagation, and
    # the cache must never hand out aliased mutable state.
    return dict(coeffs), const, is_equality


def _apply_substitution(
    coeffs: Dict[str, int],
    const: int,
    substitution: Dict[str, Tuple[Dict[str, int], int]],
) -> Tuple[Dict[str, int], int]:
    result: Dict[str, int] = {}
    for name, coeff in coeffs.items():
        replacement = substitution.get(name)
        if replacement is None:
            result[name] = result.get(name, 0) + coeff
        else:
            sub_coeffs, sub_const = replacement
            for sub_name, sub_coeff in sub_coeffs.items():
                result[sub_name] = result.get(sub_name, 0) + coeff * sub_coeff
            const += coeff * sub_const
    return {name: coeff for name, coeff in result.items() if coeff != 0}, const


def check_conjunction(atoms: Iterable[Atom], exact: bool = True) -> TheoryResult:
    """Decide satisfiability of a conjunction of atoms over the integers.

    With ``exact=False`` the propagation phases run but residual systems are
    *not* handed to simplex/branch-and-bound: anything propagation cannot
    refute is reported as (approximate) SAT.  UNSAT answers remain definite
    either way.  The cheap mode exists for callers that fire many probes and
    only act on UNSAT -- the unsat-core deletion loop above all -- where an
    occasional conservative SAT merely weakens a lemma, while an exact
    simplex run per probe would dominate the whole deduction budget.
    """
    problem = _Problem()
    for atom in atoms:
        problem.rows.append(_integer_row(atom))

    if _propagate(problem):
        return TheoryResult(satisfiable=False)
    if not exact and problem.rows:
        return TheoryResult(
            satisfiable=True, model=_complete_model(problem, {}), approximate=True
        )
    return _solve_residual(problem)


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
def _propagate(problem: _Problem) -> bool:
    """Run equality/constant/bound propagation.  Returns True on conflict."""
    changed = True
    while changed:
        changed = False
        remaining: List[Row] = []
        for coeffs, const, is_equality in problem.rows:
            coeffs, const = _apply_substitution(coeffs, const, problem.substitution)
            if not coeffs:
                if is_equality and const != 0:
                    return True
                if not is_equality and const > 0:
                    return True
                continue
            if is_equality:
                pivot = next((name for name, coeff in coeffs.items() if abs(coeff) == 1), None)
                if pivot is not None:
                    pivot_coeff = coeffs[pivot]
                    sub_coeffs = {
                        name: -coeff * pivot_coeff
                        for name, coeff in coeffs.items()
                        if name != pivot
                    }
                    sub_const = -const * pivot_coeff
                    problem.substitution[pivot] = (sub_coeffs, sub_const)
                    _close_substitution(problem.substitution, pivot)
                    remaining.extend(_reinjected_bounds(problem, pivot))
                    changed = True
                    continue
                if len(coeffs) == 1:
                    ((name, coeff),) = coeffs.items()
                    if const % coeff != 0:
                        return True
                    problem.substitution[name] = ({}, -const // coeff)
                    _close_substitution(problem.substitution, name)
                    remaining.extend(_reinjected_bounds(problem, name))
                    changed = True
                    continue
            if not is_equality and len(coeffs) == 1:
                ((name, coeff),) = coeffs.items()
                # coeff * x + const <= 0
                if coeff > 0:
                    bound = -const // coeff  # floor(-const / coeff)
                    if name not in problem.upper or bound < problem.upper[name]:
                        problem.upper[name] = bound
                        changed = True
                else:
                    # x >= const / (-coeff); use exact ceiling division
                    bound = _ceil_div(const, -coeff)
                    if name not in problem.lower or bound > problem.lower[name]:
                        problem.lower[name] = bound
                        changed = True
                continue
            remaining.append((coeffs, const, is_equality))
        problem.rows = remaining

    if _propagate_intervals(problem):
        return True

    for name in set(problem.lower) & set(problem.upper):
        if problem.lower[name] > problem.upper[name]:
            return True
    return False


def _reinjected_bounds(problem: _Problem, name: str) -> List[Row]:
    """Turn the recorded bounds of a newly-substituted variable back into rows.

    When ``name`` becomes defined by a substitution, any interval bounds
    derived for it earlier would otherwise be lost (the bound dictionaries are
    only compared variable-by-variable); re-expressing them as rows lets the
    next propagation sweep apply the substitution to them.
    """
    rows: List[Row] = []
    if name in problem.upper:
        rows.append(({name: 1}, -int(problem.upper.pop(name)), False))
    if name in problem.lower:
        rows.append(({name: -1}, int(problem.lower.pop(name)), False))
    return rows


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceiling of ``numerator / denominator`` for a positive denominator."""
    return -((-numerator) // denominator)


def _floor_div(numerator: int, denominator: int) -> int:
    """Exact floor of ``numerator / denominator`` for a positive denominator."""
    return numerator // denominator


def _close_substitution(
    substitution: Dict[str, Tuple[Dict[str, int], int]], new_var: str
) -> None:
    """Substitute *new_var* away inside every existing substitution entry."""
    for name, (coeffs, const) in list(substitution.items()):
        if name == new_var or new_var not in coeffs:
            continue
        substitution[name] = _apply_substitution(
            coeffs, const, {new_var: substitution[new_var]}
        )


# ----------------------------------------------------------------------
# Interval propagation
# ----------------------------------------------------------------------
def _term_minimum(name: str, coeff: int, problem: _Problem) -> Optional[int]:
    """Minimum of ``coeff * name`` under the current bounds (None if unbounded)."""
    bound = problem.lower.get(name) if coeff > 0 else problem.upper.get(name)
    return None if bound is None else coeff * bound


def _propagate_intervals(problem: _Problem) -> bool:
    """Interval propagation over multi-variable rows.  Returns True on conflict."""
    for _ in range(MAX_INTERVAL_ROUNDS):
        changed = False
        for coeffs, const, is_equality in problem.rows:
            directions = [(coeffs, const)]
            if is_equality:
                directions.append(({name: -c for name, c in coeffs.items()}, -const))
            for row_coeffs, row_const in directions:
                minima = {
                    name: _term_minimum(name, coeff, problem)
                    for name, coeff in row_coeffs.items()
                }
                if all(value is not None for value in minima.values()):
                    if sum(minima.values()) + row_const > 0:
                        return True
                for target, target_coeff in row_coeffs.items():
                    others_min = 0
                    unbounded = False
                    for name, value in minima.items():
                        if name == target:
                            continue
                        if value is None:
                            unbounded = True
                            break
                        others_min += value
                    if unbounded:
                        continue
                    rest = others_min + row_const
                    # target_coeff * x <= -rest
                    if target_coeff > 0:
                        bound = _floor_div(-rest, target_coeff)
                        if target not in problem.upper or bound < problem.upper[target]:
                            problem.upper[target] = bound
                            changed = True
                    else:
                        bound = _ceil_div(rest, -target_coeff)
                        if target not in problem.lower or bound > problem.lower[target]:
                            problem.lower[target] = bound
                            changed = True
        for name in set(problem.lower) & set(problem.upper):
            if problem.lower[name] > problem.upper[name]:
                return True
        if not changed:
            break
    return False


# ----------------------------------------------------------------------
# Residual solving (simplex + branch and bound)
# ----------------------------------------------------------------------
def _row_entailed(problem: _Problem, coeffs: Dict[str, int], const: int, is_equality: bool) -> bool:
    """True when the row already holds for every assignment within the bounds."""
    if is_equality:
        return False
    maximum = const
    for name, coeff in coeffs.items():
        bound = problem.upper.get(name) if coeff > 0 else problem.lower.get(name)
        if bound is None:
            return False
        maximum += coeff * bound
    return maximum <= 0


def _residual_constraints(problem: _Problem, rows: List[Row]) -> List[LinearConstraint]:
    constraints: List[LinearConstraint] = []
    names = {name for coeffs, _, _ in rows for name in coeffs}
    for coeffs, const, is_equality in rows:
        constraints.append(
            LinearConstraint(
                coeffs=tuple(sorted((name, Fraction(coeff)) for name, coeff in coeffs.items())),
                rel="==" if is_equality else "<=",
                rhs=Fraction(-const),
            )
        )
    for name in names:
        if name in problem.lower:
            constraints.append(
                LinearConstraint(((name, Fraction(-1)),), "<=", Fraction(-problem.lower[name]))
            )
        if name in problem.upper:
            constraints.append(
                LinearConstraint(((name, Fraction(1)),), "<=", Fraction(problem.upper[name]))
            )
    return constraints


def _solve_residual(problem: _Problem) -> TheoryResult:
    live_rows = [
        row for row in problem.rows if not _row_entailed(problem, *row)
    ]
    if not live_rows:
        return TheoryResult(satisfiable=True, model=_complete_model(problem, {}))

    residual_variables = {name for coeffs, _, _ in live_rows for name in coeffs}
    if len(residual_variables) > SIMPLEX_VARIABLE_LIMIT:
        # Interval propagation found no conflict but the system is too large
        # for the exact backend: conservatively report SAT.
        return TheoryResult(
            satisfiable=True, model=_complete_model(problem, {}), approximate=True
        )

    constraints = _residual_constraints(problem, live_rows)
    result = _branch_and_bound(constraints, MAX_BRANCH_DEPTH)
    if result is None:
        return TheoryResult(satisfiable=False)
    assignment, approximate = result
    model = _complete_model(problem, {name: value for name, value in assignment.items()})
    return TheoryResult(satisfiable=True, model=model, approximate=approximate)


def _branch_and_bound(
    constraints: List[LinearConstraint], depth: int
) -> Optional[Tuple[Dict[str, Fraction], bool]]:
    """Find an integer solution to *constraints*.

    Returns ``(assignment, approximate)`` or ``None`` when infeasible.  The
    ``approximate`` flag is set when the depth limit was reached and the
    (possibly fractional) rational witness was accepted.
    """
    assignment = solve_rational(constraints)
    if assignment is None:
        return None
    fractional = [name for name, value in assignment.items() if value.denominator != 1]
    if not fractional:
        return assignment, False
    if depth <= 0:
        return assignment, True
    name = fractional[0]
    value = assignment[name]
    floor_value = Fraction(math.floor(value))
    ceil_value = Fraction(math.ceil(value))
    below = constraints + [LinearConstraint(((name, Fraction(1)),), "<=", floor_value)]
    result = _branch_and_bound(below, depth - 1)
    if result is not None:
        return result
    above = constraints + [LinearConstraint(((name, Fraction(-1)),), "<=", -ceil_value)]
    return _branch_and_bound(above, depth - 1)


def _complete_model(problem: _Problem, assignment: Dict[str, Fraction]) -> Dict[str, int]:
    """Extend a residual assignment to every variable, honouring bounds."""
    model: Dict[str, Fraction] = {name: Fraction(value) for name, value in assignment.items()}

    for name in set(problem.lower) | set(problem.upper):
        if name in model:
            continue
        if name in problem.lower:
            model[name] = Fraction(problem.lower[name])
        else:
            model[name] = Fraction(problem.upper[name])

    def value_of(name: str, in_progress: frozenset) -> Fraction:
        if name in model:
            return model[name]
        if name in problem.substitution and name not in in_progress:
            coeffs, const = problem.substitution[name]
            total = Fraction(const)
            for other, coeff in coeffs.items():
                total += coeff * value_of(other, in_progress | {name})
            model[name] = total
            return total
        model[name] = Fraction(0)
        return model[name]

    for name in list(problem.substitution):
        value_of(name, frozenset())

    result: Dict[str, int] = {}
    for name, value in model.items():
        result[name] = int(value) if value.denominator == 1 else int(math.floor(value))
    return result
