"""Sketch completion (Section 7, Figure 14 of the paper).

``fill_sketch`` takes a sketch (a hypothesis whose table holes are all bound
to input variables) and enumerates complete programs.  The completion is
*bottom-up*: the table arguments of a component are completed (and therefore
concretely evaluated) before its first-order arguments are enumerated, so the
universe of column names and constants for each hole is the concrete table
produced by partial evaluation.  After every single hole is filled the
deduction engine re-checks the partially filled sketch, which is where most
of the pruning reported in the paper happens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from ..dataframe.table import Table
from .deduction import DeductionEngine
from .hypothesis import (
    Apply,
    EvaluationFailure,
    Hole,
    Hypothesis,
    fill_value_hole,
    is_complete,
    partial_evaluate,
    unfilled_value_holes,
)
from .inhabitation import enumerate_arguments


class CompletionTimeout(Exception):
    """Raised when the per-task deadline expires during sketch completion."""


class CompletionBudgetExceeded(Exception):
    """Raised when one sketch has used up its completion budget.

    The budget bounds how many candidate hole fillings a single sketch may
    try, so that one unpromising sketch with a huge argument space cannot
    monopolise the search (the paper's implementation side-steps the same
    issue by running one search thread per program size).
    """


@dataclass
class CompletionStats:
    """Counters describing the sketch completion search."""

    partial_programs: int = 0
    pruned_partial: int = 0
    complete_programs: int = 0
    #: Of :attr:`pruned_partial`, how many the tier-1 interval prescreen
    #: decided (the completer's per-hole fills are the bulk deduction
    #: traffic, so this is where most of the prescreen's saving lands).
    pruned_by_prescreen: int = 0

    def merge(self, other: "CompletionStats") -> None:
        """Accumulate another stats object into this one."""
        self.partial_programs += other.partial_programs
        self.pruned_partial += other.pruned_partial
        self.complete_programs += other.complete_programs
        self.pruned_by_prescreen += other.pruned_by_prescreen


@dataclass
class SketchCompleter:
    """Implements the FILLSKETCH procedure for one synthesis problem."""

    engine: DeductionEngine
    deadline: Optional[float] = None
    budget: Optional[int] = None
    stats: CompletionStats = field(default_factory=CompletionStats)

    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise CompletionTimeout()

    def _charge_budget(self) -> None:
        if self.budget is None:
            return
        self._spent += 1
        if self._spent > self.budget:
            raise CompletionBudgetExceeded()

    # ------------------------------------------------------------------
    def fill_sketch(self, sketch: Hypothesis) -> Iterator[Hypothesis]:
        """Enumerate complete programs refining *sketch* (rule 4 of Figure 14)."""
        self._spent = 0
        yield from self._complete_subtree(sketch, self._node_order(sketch))

    def _node_order(self, sketch: Hypothesis) -> List[int]:
        """Post-order list of application node ids (bottom-up completion order)."""
        order: List[int] = []

        def walk(node: Hypothesis) -> None:
            if isinstance(node, Apply):
                for child in node.table_children:
                    walk(child)
                order.append(node.node_id)

        walk(sketch)
        return order

    def _complete_subtree(self, sketch: Hypothesis, order: Sequence[int]) -> Iterator[Hypothesis]:
        if not order:
            if is_complete(sketch):
                self.stats.complete_programs += 1
                yield sketch
            return
        node_id, rest = order[0], order[1:]
        for filled in self._fill_node(sketch, node_id):
            yield from self._complete_subtree(filled, rest)

    # ------------------------------------------------------------------
    def _find_node(self, sketch: Hypothesis, node_id: int) -> Apply:
        for node in _iter_applications(sketch):
            if node.node_id == node_id:
                return node
        raise KeyError(f"node {node_id} not found in sketch")

    def _fill_node(self, sketch: Hypothesis, node_id: int) -> Iterator[Hypothesis]:
        """Fill the first-order holes of one application node (rules 1 and 3)."""
        node = self._find_node(sketch, node_id)
        holes = [hole for hole in node.value_children if not hole.is_bound]
        if not holes:
            # Components without first-order parameters (e.g. inner_join)
            # still become evaluable once their table children are complete,
            # so rule 3's deduction check applies here too: the node's
            # concrete abstraction may already contradict the example.
            self._charge_budget()
            self.stats.partial_programs += 1
            if not self._deduce_partial(sketch):
                return
            yield sketch
            return
        context_table = self._context_table(sketch, node)
        if context_table is None:
            # The table children failed to evaluate; no completion can succeed.
            return
        yield from self._fill_holes(sketch, node, holes, context_table)

    def _context_table(self, sketch: Hypothesis, node: Apply) -> Optional[Table]:
        """The concrete table the node's first-order holes are enumerated against.

        For single-input components this is the (already completed and
        evaluated) table argument; components with several table arguments
        and first-order holes would use the concatenation of their columns
        (``T1 x ... x Tn`` in the paper) -- the built-in library has none.
        """
        try:
            evaluated = partial_evaluate(
                sketch, self.engine.inputs,
                memo=self.engine.evaluation_memo,
                exec_cache=self.engine.execution_cache,
            )
        except EvaluationFailure:
            return None
        tables = []
        for child in node.table_children:
            table = evaluated.get(child.node_id)
            if table is None:
                return None
            tables.append(table)
        if len(tables) == 1:
            return tables[0]
        return _concatenate_schemas(tables)

    def _fill_holes(
        self,
        sketch: Hypothesis,
        node: Apply,
        holes: Sequence[Hole],
        context_table: Table,
    ) -> Iterator[Hypothesis]:
        self._check_deadline()
        if not holes:
            yield sketch
            return
        hole, rest = holes[0], holes[1:]
        param = self._param_of(node, hole)
        # When this fill produces a fully complete program, the synthesizer is
        # about to evaluate and CHECK it anyway, which subsumes (and is cheaper
        # than) another deduction query; only partially-filled sketches are
        # worth a deduction call.
        completes_program = not rest and len(unfilled_value_holes(sketch)) == 1
        for argument in enumerate_arguments(node.component, param, context_table):
            self._check_deadline()
            self._charge_budget()
            candidate = fill_value_hole(sketch, hole, argument)
            self.stats.partial_programs += 1
            if not completes_program and not self._deduce_partial(candidate):
                continue
            yield from self._fill_holes(candidate, node, rest, context_table)

    def _deduce_partial(self, candidate: Hypothesis) -> bool:
        """Rule 3's deduction check for one partially filled sketch.

        ``learn=False``: per-hole fills come in bulk and mostly differ only
        in evaluated-table abstractions; they consult the lemma store (and
        the tier-1 prescreen) but are not worth a mining replay each.  The
        prescreen counter delta attributes each prune to the tier that
        decided it.
        """
        decided_before = self.engine.stats.prescreen_decided
        if self.engine.deduce(candidate, learn=False):
            return True
        self.stats.pruned_partial += 1
        if self.engine.stats.prescreen_decided > decided_before:
            self.stats.pruned_by_prescreen += 1
        return False

    def _param_of(self, node: Apply, hole: Hole):
        for index, child in enumerate(node.value_children):
            if child.node_id == hole.node_id:
                return node.component.value_params[index]
        raise KeyError(f"hole {hole.node_id} is not a parameter of node {node.node_id}")


def _iter_applications(node: Hypothesis) -> Iterator[Apply]:
    if isinstance(node, Apply):
        yield node
        for child in node.table_children:
            yield from _iter_applications(child)


def _concatenate_schemas(tables: Sequence[Table]) -> Table:
    """The schema product ``T1 x ... x Tn`` used by rule 3 of Figure 14.

    Only the header and a small sample of values matter for inhabitation, so
    the tables are concatenated column-wise, padding shorter tables with
    missing values and renaming duplicate columns.
    """
    columns: List[str] = []
    column_values: List[List] = []
    height = max(table.n_rows for table in tables)
    for table_index, table in enumerate(tables):
        for name in table.columns:
            unique_name = name if name not in columns else f"{name}.{table_index}"
            values = list(table.column_values(name))
            values += [None] * (height - len(values))
            columns.append(unique_name)
            column_values.append(values)
    rows = list(zip(*column_values)) if column_values else []
    return Table(columns, rows)
