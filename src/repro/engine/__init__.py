"""Parallel execution and memoization subsystem.

Three layers live here:

* :mod:`repro.engine.cache` -- the bounded LRU memo tables (with hit/miss
  accounting) backing deduction verdicts, abstraction formulas, and SMT
  satisfiability results.
* :mod:`repro.engine.context` -- :class:`TaskContext`, the per-task bundle
  of swappable process-wide state (intern pool, execution counters, formula
  cache) that keeps interleaved kernels byte-identical to dedicated runs.
* :mod:`repro.engine.parallel` -- scheduling drivers: a
  :class:`KernelInterleaver` that steps many search kernels round-robin in
  one process, a :class:`ParallelRunner` that fans benchmark x
  configuration pairs over a ``multiprocessing`` pool (each worker
  interleaving its batch), :func:`synthesize_batch` for serving many
  examples concurrently, and :func:`synthesize_portfolio` for racing
  several configurations on one example.

The parallel and context layers are imported lazily: :mod:`repro.core` and
:mod:`repro.smt.solver` import the cache primitives from this package, while
:mod:`repro.engine.parallel` imports the synthesizer and
:mod:`repro.engine.context` imports the solver, so an eager import here
would be circular.
"""

from .cache import CacheStats, ExecutionCache, LRUCache

_PARALLEL_EXPORTS = frozenset(
    {
        "KernelInterleaver",
        "ParallelRunner",
        "PortfolioResult",
        "default_job_count",
        "interleave_benchmarks",
        "synthesize_batch",
        "synthesize_portfolio",
    }
)

__all__ = [
    "CacheStats",
    "DistributedScheduler",
    "ExecutionCache",
    "LRUCache",
    "TaskContext",
    *sorted(_PARALLEL_EXPORTS),
]


def __getattr__(name):
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    if name == "DistributedScheduler":
        # Lazy like the parallel exports: the distributed scheduler imports
        # the synthesizer, which imports this package's cache primitives.
        from .distributed import DistributedScheduler

        return DistributedScheduler
    if name == "TaskContext":
        # Lazy for the same reason as the parallel exports: the context
        # module imports the SMT solver, which itself imports this package.
        from .context import TaskContext

        return TaskContext
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
